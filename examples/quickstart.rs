//! Quickstart: the paper's §2 customer-loss example, end to end.
//!
//! Builds the `means` parameter table, defines the uncertain `Losses` table
//! via the Normal VG function, runs the plain MCDB Monte Carlo estimate of
//! the total-loss distribution, then runs MCDB-R tail sampling for the
//! `DOMAIN totalLoss >= QUANTILE(0.99)` clause and reports the value at risk
//! and expected shortfall.
//!
//! Run with: `cargo run --release --example quickstart`

use mcdbr::core::{GibbsLooper, TailSamplingConfig};
use mcdbr::mcdb::McdbEngine;
use mcdbr::query::parse_risk_query;
use mcdbr::risk::TailSummary;
use mcdbr::workloads::{customer_losses_catalog, customer_losses_query};

fn main() {
    // 1000 customers with mean losses between 1 and 5 (variance 1 each).
    let catalog = customer_losses_catalog(1000, (1.0, 5.0), 42).expect("catalog");
    let query = customer_losses_query(None);

    // The §2 query text parses to the same specification the plan encodes.
    let spec = parse_risk_query(
        "SELECT SUM(val) AS totalLoss FROM Losses \
         WITH RESULTDISTRIBUTION MONTECARLO(100) \
         DOMAIN totalLoss >= QUANTILE(0.99) \
         FREQUENCYTABLE totalLoss",
    )
    .expect("parse");
    let p = spec
        .domain
        .as_ref()
        .expect("domain clause")
        .tail_probability();

    // Plain MCDB: the full result distribution from 1000 Monte Carlo reps.
    let mut engine = McdbEngine::new();
    let results = engine.run(&query, &catalog, 1000, 7).expect("mcdb run");
    let dist = &results[0].1;
    println!("MCDB estimate of the total-loss distribution:");
    println!(
        "  mean = {:.1}, std dev = {:.1}",
        dist.mean(),
        dist.std_dev()
    );
    let (lo, hi) = dist.mean_confidence_interval(0.95).expect("ci");
    println!("  95% CI for the mean: ({lo:.1}, {hi:.1})");

    // MCDB-R: sample the tail beyond the 0.99-quantile directly.
    let config = TailSamplingConfig::new(p, spec.monte_carlo_samples, 600).with_master_seed(7);
    let tail = GibbsLooper::new(query, config)
        .run(&catalog)
        .expect("tail sampling");
    let summary = TailSummary::from_tail_samples(&tail.tail_samples).expect("summary");
    println!("\nMCDB-R tail sampling (p = {p}):");
    println!(
        "  estimated 0.99-quantile (VaR): {:.1}",
        tail.quantile_estimate
    );
    println!(
        "  expected shortfall:            {:.1}",
        summary.expected_shortfall
    );
    println!("  tail samples collected:        {}", summary.samples);
    println!("  plan executions:               {}", tail.plan_executions);
    println!(
        "  Gibbs acceptance rate:         {:.3}",
        tail.gibbs.acceptance_rate()
    );
}
