//! The §5 salary-inversion query: total amount by which employees out-earn
//! their managers, over an uncertain salary table, with the multi-stream
//! predicate (`emp2.sal > emp1.sal`) pulled up into the GibbsLooper.
//!
//! Run with: `cargo run --release --example salary_inversion`

use mcdbr::core::{GibbsLooper, TailSamplingConfig};
use mcdbr::mcdb::McdbEngine;
use mcdbr::workloads::{salary_inversion_catalog, salary_inversion_query};

fn main() {
    let catalog = salary_inversion_catalog(200, 99).expect("catalog");
    let query = salary_inversion_query(90.0, 25.0, 16.0);

    let mut engine = McdbEngine::new();
    let results = engine.run(&query, &catalog, 500, 5).expect("mcdb");
    let dist = &results[0].1;
    println!("Salary inversion distribution (500 Monte Carlo repetitions):");
    println!(
        "  mean = {:.1}, sd = {:.1}, max = {:.1}",
        dist.mean(),
        dist.std_dev(),
        dist.max()
    );

    let config = TailSamplingConfig::new(0.01, 50, 500).with_master_seed(5);
    let tail = GibbsLooper::new(query, config).run(&catalog).expect("tail");
    println!("\nMCDB-R: the worst 1% of salary-inversion scenarios");
    println!("  0.99-quantile estimate: {:.1}", tail.quantile_estimate);
    println!(
        "  mean tail inversion:    {:.1}",
        tail.tail_samples.iter().sum::<f64>() / tail.tail_samples.len() as f64
    );
    println!(
        "  Gibbs acceptance rate:  {:.3}",
        tail.gibbs.acceptance_rate()
    );
}
