//! The Appendix D TPC-H-like benchmark query at laptop scale, with the
//! analytic oracle the paper uses to validate accuracy.
//!
//! Run with: `cargo run --release --example tpch_tail [test|laptop]`

use mcdbr::core::{GibbsLooper, TailSamplingConfig};
use mcdbr::risk::TailCdfComparison;
use mcdbr::workloads::{TpchConfig, TpchWorkload};

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "test".into());
    let config = match scale.as_str() {
        "laptop" => TpchConfig::laptop_scale(),
        "paper" => TpchConfig::paper_scale(),
        _ => TpchConfig::test_scale(),
    };
    let w = TpchWorkload::generate(config).expect("workload");
    let p = 0.25f64.powi(5);
    println!(
        "Workload: {} orders, {} joining lineitems; analytic result ~ Normal({:.4e}, {:.4e}^2)",
        w.config.num_orders,
        w.config.num_lineitems,
        w.oracle.mean,
        w.oracle.sd()
    );

    let cfg = TailSamplingConfig::new(p, 100, 500)
        .with_m(5)
        .with_block_size(1000)
        .with_master_seed(17);
    let result = GibbsLooper::new(w.total_loss_query(), cfg)
        .run(&w.catalog)
        .expect("tail");
    let cmp = TailCdfComparison::new(&w.oracle, p, &result.tail_samples).expect("compare");
    println!("MCDB-R (m = 5, p^(1/m) = 0.25, N = 500, l = 100):");
    println!("  estimated 0.999-quantile: {:.6e}", cmp.estimated_quantile);
    println!("  analytic  0.999-quantile: {:.6e}", cmp.true_quantile);
    println!(
        "  relative error:           {:.4}%",
        100.0 * cmp.quantile_relative_error()
    );
    println!("  KS distance to the true tail CDF: {:.4}", cmp.ks_distance);
    println!(
        "  per-iteration cutoffs: {:?}",
        result.cutoffs.iter().map(|c| c.round()).collect::<Vec<_>>()
    );
    println!(
        "  plan executions: {} (replenishments: {})",
        result.plan_executions, result.replenishments
    );
}
