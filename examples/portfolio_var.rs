//! Portfolio value-at-risk: the financial-asset scenario of the paper's
//! introduction (future asset values via Euler-discretized SDEs).
//!
//! Run with: `cargo run --release --example portfolio_var`

use mcdbr::core::{GibbsLooper, TailSamplingConfig};
use mcdbr::mcdb::McdbEngine;
use mcdbr::risk::{expected_shortfall, value_at_risk};
use mcdbr::workloads::{portfolio_catalog, portfolio_loss_query};

fn main() {
    let catalog = portfolio_catalog(100, 1.0, 2024).expect("catalog");
    let query = portfolio_loss_query(32);

    // Naive estimate of the loss distribution (fine for the body).
    let mut engine = McdbEngine::new();
    let results = engine.run(&query, &catalog, 800, 11).expect("mcdb");
    let samples = results[0].1.samples().to_vec();
    let var95 = value_at_risk(&samples, 0.05).expect("VaR");
    println!("Monte Carlo over the full distribution (800 repetitions):");
    println!(
        "  expected P&L (negative = gain): {:.0}",
        results[0].1.mean()
    );
    println!("  95% VaR:                        {var95:.0}");
    println!(
        "  95% expected shortfall:         {:.0}",
        expected_shortfall(&samples, var95).unwrap()
    );

    // MCDB-R for the deep tail: the 0.999-quantile needs tail sampling.
    let config = TailSamplingConfig::new(0.001, 100, 1000).with_master_seed(11);
    let tail = GibbsLooper::new(query, config).run(&catalog).expect("tail");
    println!("\nMCDB-R tail sampling at p = 0.001:");
    println!("  99.9% VaR estimate:     {:.0}", tail.quantile_estimate);
    println!(
        "  99.9% expected shortfall: {:.0}",
        tail.tail_samples.iter().sum::<f64>() / tail.tail_samples.len() as f64
    );
    println!(
        "  bootstrapping cutoffs:  {:?}",
        tail.cutoffs.iter().map(|c| c.round()).collect::<Vec<_>>()
    );
}
