//! # MCDB-R — Risk Analysis in the Database
//!
//! Facade crate for the MCDB-R reproduction (Arumugam, Jampani, Perez, Xu,
//! Jermaine, Haas: *MCDB-R: Risk Analysis in the Database*, PVLDB 3(1), 2010).
//!
//! The implementation is split across focused workspace crates; this crate
//! re-exports them under stable module names so downstream users (and the
//! examples under `examples/`) can depend on a single package:
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`storage`] | values, schemas, tuples, tables, catalog |
//! | [`prng`] | deterministic position-addressable random streams |
//! | [`vg`] | VG (variable-generation) functions: Normal, Gamma, Poisson, ... |
//! | [`faults`] | deterministic fault injection (`MCDBR_FAULTS` plans) and seeded retry backoff |
//! | [`exec`] | tuple-bundle query plans and operators (Seed, Instantiate, Split, joins, aggregation) |
//! | [`dispatch`] | multi-process shard dispatch: wire protocol, `mcdbr-worker` binary, `ProcessBackend` |
//! | [`mcdb`] | the MCDB baseline: naive Monte Carlo over bundles + result-distribution statistics |
//! | [`core`] | the MCDB-R contribution: Gibbs sampler, Gibbs cloner, TS-seeds, GibbsLooper, parameter selection |
//! | [`risk`] | risk measures: VaR, expected shortfall, empirical/analytic CDFs, frequency tables |
//! | [`query`] | the SQL-ish dialect of §2 compiled to plans |
//! | [`workloads`] | synthetic workload generators (customer losses, TPC-H-like join, portfolio, logistics) |
//! | [`server`] | the resident concurrent query service: `mcdbr-server` binary, fair scheduler, wire client, load generator |
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and experiment index.

pub use mcdbr_core as core;
pub use mcdbr_dispatch as dispatch;
pub use mcdbr_exec as exec;
pub use mcdbr_faults as faults;
pub use mcdbr_mcdb as mcdb;
pub use mcdbr_prng as prng;
pub use mcdbr_query as query;
pub use mcdbr_risk as risk;
pub use mcdbr_server as server;
pub use mcdbr_storage as storage;
pub use mcdbr_vg as vg;
pub use mcdbr_workloads as workloads;
