//! Criterion bench for experiment E6: the Appendix C parameter-selection
//! machinery (optimal m*, w(N), budget inversion) — cheap analytics that the
//! engine calls before every tail-sampling run.

use criterion::{criterion_group, criterion_main, Criterion};
use mcdbr_core::params::{budget_for_msre, optimal_m, w_of_n};

fn bench_params(c: &mut Criterion) {
    let mut group = c.benchmark_group("params_selection");
    group.bench_function("optimal_m_n1000_p001", |b| {
        b.iter(|| optimal_m(1000, 0.001))
    });
    group.bench_function("w_of_n_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &n in &[100usize, 500, 1000, 5000, 10_000] {
                acc += w_of_n(n, 0.001);
            }
            acc
        })
    });
    group.bench_function("budget_for_msre_5pct", |b| {
        b.iter(|| budget_for_msre(0.001, 0.05))
    });
    group.finish();
}

criterion_group!(benches, bench_params);
criterion_main!(benches);
