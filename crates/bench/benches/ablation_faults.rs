//! Fault-tolerance ablation: what does surviving a misbehaving worker
//! cost, and does the degradation ladder actually preserve results?
//!
//! The sweep runs the §2 filtered customer-losses workload through a
//! 3-worker `ProcessBackend` under one deterministic fault plan per row
//! (`mcdbr_faults` grammar, worker 0 targeted so the blast radius is one
//! slot):
//!
//! * `clean` — no faults; the steady-state baseline, timed under
//!   criterion.
//! * `stall` — worker 0 stalls every task reply past the read deadline:
//!   exercises deadline → respawn → retry → circuit breaker → local
//!   degradation.
//! * `drop` / `partial` — worker 0 swallows or truncates reply frames:
//!   crash-class wire errors riding the same ladder.
//! * `slow` — worker 0 adds fixed latency per task: no failures, pure
//!   straggler cost.
//!
//! Every faulted run must still produce the bit-identical bundle count of
//! the in-process baseline — that is the headline claim (graceful
//! degradation never changes results, it only costs time) — and each row
//! records wall time plus the recovery counters (`deadline_timeouts`,
//! `worker_respawns`, `task_retries`, `circuit_trips`) into
//! `BENCH_ablation_faults.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use mcdbr_dispatch::ProcessBackend;
use mcdbr_exec::{ExecBackend, ExecSession, Expr, InProcessBackend, PlanNode};
use mcdbr_workloads::{customer_losses_catalog, customer_losses_query};

const BLOCK: usize = 100;
const BLOCKS: usize = 4;
const MASTER_SEED: u64 = 47;
const WORKERS: usize = 3;
/// Short enough that stalled/dropped replies are reclassified quickly,
/// long enough that a loaded CI machine never times out a healthy worker.
const DEADLINE: Duration = Duration::from_millis(2_000);

/// `(plan key, fault spec)` rows for the sweep; worker 0 is always the
/// faulty one, with probability 1 so every decision fires.
const FAULT_ROWS: [(&str, &str); 4] = [
    ("stall", "seed=7,worker=0,stall=1:30000"),
    ("drop", "seed=7,worker=0,drop=1"),
    ("partial", "seed=7,worker=0,partial=1"),
    ("slow", "seed=7,worker=0,slow=1:10"),
];

fn run_blocks(
    plan: &PlanNode,
    catalog: &mcdbr_storage::Catalog,
    backend: Arc<dyn ExecBackend>,
) -> usize {
    let mut session = ExecSession::prepare(plan, catalog, MASTER_SEED)
        .unwrap()
        .with_backend(backend);
    let mut total_bundles = 0usize;
    for i in 0..BLOCKS {
        let set = session
            .instantiate_block(catalog, (i * BLOCK) as u64, BLOCK)
            .unwrap();
        total_bundles += set.len();
    }
    total_bundles
}

fn bench_fault_recovery(c: &mut Criterion) {
    let catalog = customer_losses_catalog(1_500, (1.0, 5.0), 11).unwrap();
    let plan = customer_losses_query(None)
        .plan
        .filter(Expr::col("cid").lt(Expr::lit(120i64)));

    let baseline = run_blocks(&plan, &catalog, Arc::new(InProcessBackend::new()));

    // `RUNS` successive query-shaped runs per fault kind on ONE backend,
    // outside criterion measurement (a stalled worker costs deadline-sized
    // waits by design; criterion-looping that would be all sleep).  Reusing
    // the backend across runs is the point: run 1 pays the full ladder,
    // the cooldown runs degrade cheaply, and the half-open probe pays
    // again — so the p99 across runs prices the breaker's worst case while
    // the p50 prices steady-state degradation.
    const RUNS: usize = 6;
    for (kind, spec) in FAULT_ROWS {
        let backend = Arc::new(
            ProcessBackend::new(WORKERS)
                .with_fault_spec(spec)
                .unwrap()
                .with_deadline(DEADLINE),
        );
        let mut walls_ms = Vec::with_capacity(RUNS);
        let mut survived = 0usize;
        for _ in 0..RUNS {
            let start = Instant::now();
            let bundles = run_blocks(&plan, &catalog, backend.clone());
            walls_ms.push(start.elapsed().as_secs_f64() * 1e3);
            assert_eq!(
                bundles, baseline,
                "fault `{kind}` changed the result — degradation must be invisible"
            );
            survived += 1;
        }
        walls_ms.sort_by(|a, b| a.total_cmp(b));
        let stats = backend.shard_stats();
        let id = format!("ablation_faults/{kind}");
        record_metric(&id, "queries_survived", survived as f64);
        record_metric(&id, "queries_run", RUNS as f64);
        record_metric(&id, "p50_ms", walls_ms[RUNS / 2]);
        record_metric(&id, "p99_ms", *walls_ms.last().unwrap());
        record_metric(&id, "deadline_timeouts", stats.deadline_timeouts as f64);
        record_metric(&id, "worker_respawns", stats.worker_respawns as f64);
        record_metric(&id, "task_retries", stats.task_retries as f64);
        record_metric(&id, "circuit_trips", stats.circuit_trips as f64);
        record_metric(&id, "tasks_dispatched", stats.tasks_dispatched as f64);
        if mcdbr_faults::env_injector().is_none() {
            match kind {
                // Stall/drop/partial must have exercised the ladder.
                "stall" | "drop" | "partial" => {
                    assert!(stats.worker_respawns > 0, "`{kind}` never hit the ladder");
                    assert!(stats.task_retries > 0, "`{kind}` never retried");
                }
                // A straggler is not a failure: latency only.
                _ => assert_eq!(stats.worker_respawns, 0, "`{kind}` should not respawn"),
            }
        }
    }

    // The clean row is the only one measured under criterion: the number
    // the faulted walls compare against.
    let clean = Arc::new(ProcessBackend::new(WORKERS).with_deadline(DEADLINE));
    let clean_bundles = run_blocks(&plan, &catalog, clean.clone());
    assert_eq!(clean_bundles, baseline, "clean process run changed output");
    if mcdbr_faults::env_injector().is_none() {
        assert_eq!(clean.shard_stats().worker_respawns, 0);
    }
    let mut group = c.benchmark_group("ablation_faults");
    group.sample_size(10);
    group.bench_function("clean", |b| {
        b.iter(|| run_blocks(&plan, &catalog, clean.clone()))
    });
    group.finish();
}

criterion_group!(benches, bench_fault_recovery);
criterion_main!(benches);
