//! Criterion bench for the replenishment ablation (Appendix D cost
//! structure): when a Gibbs run exhausts its stream blocks, how much does a
//! replenishment cost?
//!
//! * `naive_reexec/<k>` — the retired strategy: re-run the full query plan
//!   (scans, join, constant predicates, stream materialization) once per
//!   block, `k` blocks total.  One plan execution *per block*.
//! * `cached_prefix/<k>` — the `ExecSession` strategy: run the deterministic
//!   skeleton once, then materialize `k` blocks of stream values against the
//!   cached prefix.  One plan execution *total*.
//!
//! The wall-time gap between the two rows at the same `k` is exactly the
//! deterministic work (scan + join + predicate) that MCDB-R's §9 discipline
//! amortizes; plan-execution counts are asserted inside the bench so the
//! numbers reported cannot drift from the claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcdbr_bench::test_tpch;
use mcdbr_exec::{ExecOptions, ExecSession, Executor, Expr, PlanNode};
use mcdbr_workloads::{customer_losses_catalog, customer_losses_query};

const BLOCK: usize = 100;
const MASTER_SEED: u64 = 21;

/// Run `blocks` consecutive block materializations through the retired
/// re-execute-the-plan path, returning total bundles (kept live so the work
/// cannot be optimized away).
fn naive_blocks(plan: &PlanNode, catalog: &mcdbr_storage::Catalog, blocks: usize) -> usize {
    let mut executor = Executor::new();
    let mut total_bundles = 0usize;
    for i in 0..blocks {
        let opts = ExecOptions::gibbs_block(MASTER_SEED, BLOCK, (i * BLOCK) as u64);
        let set = executor.execute(plan, catalog, &opts).unwrap();
        total_bundles += set.len();
    }
    assert_eq!(executor.plans_executed(), blocks);
    total_bundles
}

/// The same work through a two-phase session: deterministic skeleton once,
/// then stream-only block materializations.
fn session_blocks(plan: &PlanNode, catalog: &mcdbr_storage::Catalog, blocks: usize) -> usize {
    let mut session = ExecSession::prepare(plan, catalog, MASTER_SEED).unwrap();
    let mut total_bundles = 0usize;
    for i in 0..blocks {
        let set = session
            .instantiate_block(catalog, (i * BLOCK) as u64, BLOCK)
            .unwrap();
        total_bundles += set.len();
    }
    assert_eq!(session.plan_executions(), 1);
    assert_eq!(session.blocks_materialized(), blocks);
    total_bundles
}

/// The Appendix D join workload: deterministic work is the lineitem scan +
/// hash join the prefix amortizes.
fn bench_tpch_join(c: &mut Criterion) {
    let w = test_tpch();
    let plan = w.total_loss_query().plan;
    let mut group = c.benchmark_group("ablation_replenish_join");
    group.sample_size(10);
    for &blocks in &[1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("naive_reexec", blocks),
            &blocks,
            |b, &blocks| b.iter(|| naive_blocks(&plan, &w.catalog, blocks)),
        );
        group.bench_with_input(
            BenchmarkId::new("cached_prefix", blocks),
            &blocks,
            |b, &blocks| b.iter(|| session_blocks(&plan, &w.catalog, blocks)),
        );
    }
    group.finish();
}

/// The §2 selective-filter workload (`WHERE CID < limit`): the retired path
/// re-instantiates every customer's stream each block and then filters; the
/// cached prefix filtered during phase 1, so each block generates values for
/// the 5% of streams that survive.
fn bench_filtered_losses(c: &mut Criterion) {
    let n_customers = 2_000i64;
    let limit = n_customers / 20;
    let catalog = customer_losses_catalog(n_customers as usize, (1.0, 5.0), 11).unwrap();
    let plan = customer_losses_query(None)
        .plan
        .filter(Expr::col("cid").lt(Expr::lit(limit)));
    let mut group = c.benchmark_group("ablation_replenish_filtered");
    group.sample_size(10);
    for &blocks in &[1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("naive_reexec", blocks),
            &blocks,
            |b, &blocks| b.iter(|| naive_blocks(&plan, &catalog, blocks)),
        );
        group.bench_with_input(
            BenchmarkId::new("cached_prefix", blocks),
            &blocks,
            |b, &blocks| b.iter(|| session_blocks(&plan, &catalog, blocks)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tpch_join, bench_filtered_losses);
criterion_main!(benches);
