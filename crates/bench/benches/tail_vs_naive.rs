//! Criterion bench for experiments E1/E3: one MCDB-R tail-sampling pass vs
//! one batch of naive MCDB repetitions on the (test-scale) Appendix D
//! workload.  The per-iteration times here are the raw material for the
//! paper's ~11-minutes-vs-~18-hours comparison: multiply the naive
//! per-repetition cost by l/p repetitions to recover the headline ratio.

use criterion::{criterion_group, criterion_main, Criterion};
use mcdbr_bench::{run_tail_sampling, test_tpch};
use mcdbr_core::TailSamplingConfig;
use mcdbr_mcdb::McdbEngine;

fn bench_tail_vs_naive(c: &mut Criterion) {
    let w = test_tpch();
    let query = w.total_loss_query();
    let mut group = c.benchmark_group("tail_vs_naive");
    group.sample_size(10);

    group.bench_function("mcdbr_tail_sampling_n100", |b| {
        b.iter(|| {
            let cfg = TailSamplingConfig::new(0.01, 20, 100)
                .with_m(2)
                .with_block_size(200)
                .with_master_seed(3);
            run_tail_sampling(&query, &w.catalog, cfg).unwrap()
        })
    });

    group.bench_function("naive_mcdb_100_repetitions", |b| {
        b.iter(|| {
            let mut engine = McdbEngine::new();
            engine.run_samples(&query, &w.catalog, 100, 3).unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_tail_vs_naive);
criterion_main!(benches);
