//! Criterion bench for paged table storage: what does a full scan cost as
//! the buffer pool's frame budget sweeps from thrashing-small to
//! everything-resident?
//!
//! A table sealed into many small pages is scanned end to end through a
//! private [`BufferPool`] per row:
//!
//! * `budget=2` — pathological: nearly every page access misses, decodes,
//!   and evicts another frame (the cold-storage floor).
//! * intermediate budgets — the working-set sweep.
//! * `budget=unbounded` — every page decoded once, then served from
//!   resident frames (the in-memory ceiling).
//!
//! Scan results are asserted bit-identical across every budget outside the
//! timed region — the pool trades memory for decode work, never
//! correctness — and each row's miss/eviction counters are recorded into
//! `BENCH_ablation_storage.json` via [`record_metric`].

use criterion::{criterion_group, criterion_main, record_metric, BenchmarkId, Criterion};
use mcdbr_storage::{BufferPool, Field, Schema, Table, Tuple, Value};

const ROWS: usize = 20_000;
/// Small enough that the table spans hundreds of pages.
const PAGE_BUDGET: usize = 1024;
const FRAME_BUDGETS: [usize; 4] = [2, 8, 64, usize::MAX];

fn build_table() -> Table {
    let schema = Schema::new(vec![
        Field::int64("id"),
        Field::float64("x"),
        Field::utf8("tag"),
    ]);
    let rows: Vec<Tuple> = (0..ROWS)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(i as i64),
                Value::Float64(i as f64 * 0.25),
                Value::str(format!("tag-{}", i % 97)),
            ])
        })
        .collect();
    Table::with_page_budget(schema, rows, PAGE_BUDGET).unwrap()
}

/// Scan the whole table through `pool`, folding a checksum so the work
/// cannot be optimized away.
fn scan(table: &Table, pool: &BufferPool) -> u64 {
    let mut acc = 0u64;
    for row in table.iter_with(pool) {
        if let Value::Int64(v) = row.value(0) {
            acc = acc.wrapping_add(*v as u64);
        }
        if let Value::Float64(v) = row.value(1) {
            acc ^= v.to_bits();
        }
    }
    acc
}

fn bench_scan_vs_budget(c: &mut Criterion) {
    let table = build_table();
    assert!(
        table.pages().len() > FRAME_BUDGETS[2],
        "table must span more pages than the largest bounded budget"
    );

    // Bit-identity across budgets, asserted outside measurement: the
    // checksum folds every int and raw float bit in scan order.
    let reference = scan(&table, &BufferPool::new(usize::MAX));
    for &budget in &FRAME_BUDGETS {
        let pool = BufferPool::new(budget);
        assert_eq!(
            scan(&table, &pool),
            reference,
            "budget {budget} changed scan results"
        );
    }

    let mut group = c.benchmark_group("ablation_storage_scan");
    group.throughput(criterion::Throughput::Elements(ROWS as u64));
    for &budget in &FRAME_BUDGETS {
        let label = if budget == usize::MAX {
            "unbounded".to_string()
        } else {
            budget.to_string()
        };
        // A fresh pool per iteration: each measured scan pays the full
        // miss/decode/evict cycle its budget implies, not a warm cache
        // from the previous iteration.
        group.bench_with_input(BenchmarkId::new("budget", &label), &budget, |b, &budget| {
            b.iter(|| scan(&table, &BufferPool::new(budget)))
        });

        // Counter row outside the timed region: how much decode work and
        // eviction churn this budget causes for one full scan.
        let pool = BufferPool::new(budget);
        let _ = scan(&table, &pool);
        let stats = pool.stats();
        let id = format!("ablation_storage_scan/budget={label}");
        record_metric(&id, "pages", table.pages().len() as f64);
        record_metric(&id, "pages_read", stats.pages_read as f64);
        record_metric(&id, "pool_hits", stats.pool_hits as f64);
        record_metric(&id, "pool_evictions", stats.pool_evictions as f64);
    }
    group.finish();
}

criterion_group!(benches, bench_scan_vs_budget);
criterion_main!(benches);
