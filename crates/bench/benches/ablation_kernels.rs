//! Criterion bench for the vectorized phase-2 kernels.
//!
//! Three sweeps, each pitting the vectorized path against the retained
//! scalar path it must match bit for bit (the determinism suite proves the
//! equality; this bench prices it):
//!
//! * `sampler/*` — batched VG block generation (`generate_block_into`:
//!   two-pass uniforms-then-transform for the normal samplers, interned
//!   subtractive scan / alias table for the discrete ones) vs the
//!   per-position `generate` loop the default trait method runs.
//! * `selective_filter/*` and `join/*` — whole-block materialization with
//!   the kernel mode flipped: `vectorized` compiles predicates to packed
//!   masks + selection vectors and computed columns to `f64` lanes;
//!   `scalar` forces the row-at-a-time loop.  An allocation census per
//!   block (counting global allocator, outside the timer) accompanies the
//!   wall-clock numbers, since "filters stop materializing row copies" is
//!   the structural claim.
//! * `aggregate/*` — selection-vector, column-at-a-time per-repetition
//!   aggregation vs the scalar bundles-inner loop, with a final predicate.
//!
//! Every result lands in `BENCH_ablation_kernels.json` (values/sec plus
//! `allocs_per_block` metrics) via the criterion stand-in's report.
//!
//! Run with `cargo bench --bench ablation_kernels`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcdbr_bench::test_tpch;
use mcdbr_exec::aggregate::evaluate_aggregate_threads;
use mcdbr_exec::plan::scalar_random_table;
use mcdbr_exec::{
    set_kernel_mode, AggregateSpec, BlockBufferPool, DeterministicPrefix, ExecBackend, ExecSession,
    Expr, KernelMode, PlanNode,
};
use mcdbr_prng::{seed_for, RandomStream, SeedId};
use mcdbr_storage::{Catalog, ColumnBlock, Value};
use mcdbr_vg::{AliasDiscreteVg, BoxMullerNormalVg, DiscreteVg, NormalVg, VgFunction};
use mcdbr_workloads::{customer_losses_catalog, customer_losses_query};

/// A pass-through allocator that counts every allocation, so the bench can
/// report allocations-per-block for each kernel mode.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Heap allocations performed by one run of `f`.
fn count_allocs(mut f: impl FnMut()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// The scalar sampler reference: the `VgFunction::generate_block_into`
/// default body — one per-position `generate` call, rows pushed boxed.
fn scalar_sampler_block(
    vg: &dyn VgFunction,
    params: &[Value],
    seed: SeedId,
    n: usize,
    out: &mut ColumnBlock,
) {
    out.clear();
    let stream = RandomStream::new(seed);
    for i in 0..n {
        let mut gen = stream.generator_at(i as u64);
        let rows = vg.generate(params, &mut gen).unwrap();
        out.push_position(&rows).unwrap();
    }
}

fn bench_samplers(c: &mut Criterion) {
    let n = 4096usize;
    let normal_params = [Value::Float64(3.0), Value::Float64(4.0)];
    let weights: Vec<Value> = (1..=8).map(|w| Value::Float64(w as f64)).collect();
    let categories: Vec<Value> = (0..8).map(|k| Value::Float64(k as f64 * 10.0)).collect();
    let cases: Vec<(&str, Box<dyn VgFunction>, Vec<Value>)> = vec![
        (
            "normal_inverse_cdf",
            Box::new(NormalVg),
            normal_params.to_vec(),
        ),
        (
            "normal_box_muller",
            Box::new(BoxMullerNormalVg),
            normal_params.to_vec(),
        ),
        (
            "discrete_scan",
            Box::new(DiscreteVg::new(categories.clone())),
            weights.clone(),
        ),
        (
            "discrete_alias",
            Box::new(AliasDiscreteVg::new(categories)),
            weights,
        ),
    ];
    let mut group = c.benchmark_group("sampler");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n as u64));
    for (label, vg, params) in &cases {
        let seed = seed_for(11, 1, 0);
        let mut block = ColumnBlock::default();
        group.bench_with_input(
            BenchmarkId::new(format!("{label}/scalar"), n),
            &n,
            |b, &n| b.iter(|| scalar_sampler_block(vg.as_ref(), params, seed, n, &mut block)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{label}/batched"), n),
            &n,
            |b, &n| {
                b.iter(|| {
                    vg.generate_block_into(params, seed, 0, n, &mut block)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

struct Workload {
    label: &'static str,
    prefix: DeterministicPrefix,
    values_per_block: u64,
    /// The `MCDBR_BACKEND`-resolved execution backend, primed for dispatch.
    /// Defaults to in-process (the headline numbers); `MCDBR_BACKEND=process`
    /// reroutes every materialization through the worker fleet so CI smoke
    /// runs exercise the kernels there too.  Note the kernel-mode flag and
    /// the allocation census are process-local, so the scalar-vs-vectorized
    /// split is only meaningful on the in-process backend.
    backend: Arc<dyn ExecBackend>,
}

fn prepared(label: &'static str, plan: &PlanNode, catalog: &Catalog, block: usize) -> Workload {
    let session = ExecSession::prepare(plan, catalog, 7).expect("cacheable plan");
    let prefix = session.prefix().expect("cacheable plan").clone();
    let values_per_block = (prefix.num_active_streams() * block) as u64;
    let backend = mcdbr_dispatch::default_backend();
    backend
        .prepare_dispatch(plan, catalog, &prefix)
        .expect("dispatch priming");
    Workload {
        label,
        prefix,
        values_per_block,
        backend,
    }
}

/// Bench whole-block materialization under both kernel modes, with an
/// allocation census per mode.
fn bench_modes(c: &mut Criterion, w: &Workload, block: usize) {
    let pool = BlockBufferPool::new();
    let backend = &w.backend;
    // Warm fully: buffer capacities stabilize only after the recycled cell
    // storage has made one full round trip (block -> Arc -> block).
    for _ in 0..3 {
        let _ = backend
            .instantiate_block(&w.prefix, &pool, 1, 0, block)
            .unwrap();
    }
    let mut mode_allocs = [0u64; 2];
    for (slot, (mode, mode_label)) in [
        (KernelMode::Auto, "vectorized"),
        (KernelMode::ForceScalar, "scalar"),
    ]
    .into_iter()
    .enumerate()
    {
        set_kernel_mode(mode);
        mode_allocs[slot] = count_allocs(|| {
            criterion::black_box(
                backend
                    .instantiate_block(&w.prefix, &pool, 1, 0, block)
                    .unwrap(),
            );
        });
        criterion::record_metric(
            format!("{}/{mode_label}/{block}", w.label),
            "allocs_per_block",
            mode_allocs[slot] as f64,
        );
    }
    set_kernel_mode(KernelMode::Auto);
    println!(
        "{}/allocs_per_block/{block}: vectorized={} scalar={} ({:.1}x fewer)",
        w.label,
        mode_allocs[0],
        mode_allocs[1],
        mode_allocs[1] as f64 / mode_allocs[0].max(1) as f64
    );

    let mut group = c.benchmark_group(w.label);
    group.sample_size(20);
    group.throughput(Throughput::Elements(w.values_per_block));
    for (mode, mode_label) in [
        (KernelMode::Auto, "vectorized"),
        (KernelMode::ForceScalar, "scalar"),
    ] {
        group.bench_with_input(BenchmarkId::new(mode_label, block), &block, |b, &block| {
            set_kernel_mode(mode);
            b.iter(|| {
                backend
                    .instantiate_block(&w.prefix, &pool, 1, 0, block)
                    .unwrap()
            });
            set_kernel_mode(KernelMode::Auto);
        });
    }
    group.finish();
}

/// The §2 selective-filter workload of `ablation_columnar`, extended with a
/// phase-2 predicate over the random loss value — the shape where the
/// vectorized path replaces per-row predicate evaluation and row-copy
/// filtering with a packed mask and a selection vector.
fn bench_selective_filter(c: &mut Criterion) {
    let n_customers = 2_000i64;
    let catalog = customer_losses_catalog(n_customers as usize, (1.0, 5.0), 11).unwrap();
    let plan = customer_losses_query(None)
        .plan
        .filter(Expr::col("cid").lt(Expr::lit(n_customers / 10)))
        .filter(Expr::col("val").gt(Expr::lit(4.0)));
    let block = 256usize;
    let w = prepared("selective_filter", &plan, &catalog, block);
    bench_modes(c, &w, block);
}

/// The §2 selective-filter workload itself (deterministic `cid` filter, no
/// phase-2 predicate — the `ablation_columnar` acceptance workload) under
/// both normal samplers.  Whole-block materialization here is
/// generation-bound, so the batched sampler *is* the end-to-end story: the
/// inverse-CDF leg prices the bit-frozen default, the Box-Muller leg prices
/// the opt-in batched variant (`BoxMullerNormalVg`, a distinct VG
/// configuration with its own value stream).
fn bench_filter_samplers(c: &mut Criterion) {
    let n_customers = 2_000i64;
    let catalog = customer_losses_catalog(n_customers as usize, (1.0, 5.0), 11).unwrap();
    let block = 256usize;
    let samplers: [(&str, std::sync::Arc<dyn VgFunction>); 2] = [
        ("inverse_cdf", Arc::new(NormalVg)),
        ("box_muller", Arc::new(BoxMullerNormalVg)),
    ];
    let mut group = c.benchmark_group("filter_sampler");
    group.sample_size(20);
    for (label, vg) in samplers {
        let plan = mcdbr_exec::PlanNode::random_table(scalar_random_table(
            "Losses",
            "means",
            vg,
            vec![Expr::col("m"), Expr::lit(1.0)],
            &["cid"],
            "val",
            1,
        ))
        .filter(Expr::col("cid").lt(Expr::lit(n_customers / 10)));
        let w = prepared("filter_sampler", &plan, &catalog, block);
        let pool = BlockBufferPool::new();
        let backend = &w.backend;
        // Warm fully (see `bench_modes` on the cell-storage round trip).
        for _ in 0..3 {
            let _ = backend
                .instantiate_block(&w.prefix, &pool, 1, 0, block)
                .unwrap();
        }
        let allocs = count_allocs(|| {
            criterion::black_box(
                backend
                    .instantiate_block(&w.prefix, &pool, 1, 0, block)
                    .unwrap(),
            );
        });
        println!("filter_sampler/{label}/allocs_per_block/{block}: {allocs}");
        criterion::record_metric(
            format!("filter_sampler/{label}/{block}"),
            "allocs_per_block",
            allocs as f64,
        );
        group.throughput(Throughput::Elements(w.values_per_block));
        group.bench_with_input(BenchmarkId::new(label, block), &block, |b, &block| {
            b.iter(|| {
                backend
                    .instantiate_block(&w.prefix, &pool, 1, 0, block)
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// The Appendix D join workload under both kernel modes.
fn bench_join(c: &mut Criterion) {
    let w_tpch = test_tpch();
    let plan = w_tpch.total_loss_query().plan;
    let block = 256usize;
    let w = prepared("join", &plan, &w_tpch.catalog, block);
    bench_modes(c, &w, block);
}

/// Selection-vector aggregation (bundles-outer, `SelVec::slice_in_range`)
/// vs the scalar reps-outer/bundles-inner loop, with a final predicate.
fn bench_aggregate(c: &mut Criterion) {
    let catalog = customer_losses_catalog(400, (1.0, 5.0), 11).unwrap();
    let q = customer_losses_query(None);
    let reps = 2048usize;
    let set = ExecSession::prepare(&q.plan, &catalog, 7)
        .unwrap()
        .instantiate_block(&catalog, 0, reps)
        .unwrap();
    let agg = AggregateSpec::sum(Expr::col("val"), "total");
    let pred = Expr::col("val").gt(Expr::lit(3.5));
    let mut group = c.benchmark_group("aggregate");
    group.sample_size(20);
    group.throughput(Throughput::Elements((set.bundles.len() * reps) as u64));
    for (mode, mode_label) in [
        (KernelMode::Auto, "selvec"),
        (KernelMode::ForceScalar, "scalar"),
    ] {
        group.bench_with_input(BenchmarkId::new(mode_label, reps), &reps, |b, _| {
            set_kernel_mode(mode);
            b.iter(|| evaluate_aggregate_threads(&set, &agg, &[], Some(&pred), 1).unwrap());
            set_kernel_mode(KernelMode::Auto);
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_samplers,
    bench_selective_filter,
    bench_filter_samplers,
    bench_join,
    bench_aggregate
);
criterion_main!(benches);
