//! Criterion bench for the multi-process dispatch backend: what does
//! phase-2 block materialization cost when shard tasks cross a process
//! boundary, as the worker count sweeps?
//!
//! Each measured iteration materializes `BLOCKS` consecutive blocks through
//! one `ExecSession`:
//!
//! * `in_process` — the baseline thread-pool backend.
//! * `sharded/<k>` — `ShardedBackend` with `k` in-process shards (the
//!   zero-serialization upper bound for `k`-way partitioning).
//! * `workers/<k>` — `ProcessBackend` with `k` persistent `mcdbr-worker`
//!   processes: plans ship once (cold), every later task is a ~60-byte
//!   header against the workers' warm session caches, partial bundles
//!   stream back as columnar frames.
//!
//! Workers are spawned once per backend and reused across the measured
//! blocks, so the sweep prices the steady-state wire cost (serialize
//! task, deserialize partials), not process startup.  Results are
//! bit-identical across every row (asserted outside measurement via
//! bundle checksums).  Two workloads, mirroring `ablation_sharding`: the
//! Appendix D join and the §2 selective filter.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, record_metric, BenchmarkId, Criterion};
use mcdbr_bench::test_tpch;
use mcdbr_dispatch::ProcessBackend;
use mcdbr_exec::{ExecBackend, ExecSession, Expr, InProcessBackend, PlanNode, ShardedBackend};
use mcdbr_workloads::{customer_losses_catalog, customer_losses_query};

const BLOCK: usize = 100;
const BLOCKS: usize = 8;
const MASTER_SEED: u64 = 47;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Materialize `BLOCKS` consecutive blocks on `backend`, returning total
/// bundles (kept live so the work cannot be optimized away).
fn run_blocks(
    plan: &PlanNode,
    catalog: &mcdbr_storage::Catalog,
    backend: Arc<dyn ExecBackend>,
) -> usize {
    let mut session = ExecSession::prepare(plan, catalog, MASTER_SEED)
        .unwrap()
        .with_backend(backend);
    let mut total_bundles = 0usize;
    for i in 0..BLOCKS {
        let set = session
            .instantiate_block(catalog, (i * BLOCK) as u64, BLOCK)
            .unwrap();
        total_bundles += set.len();
    }
    assert_eq!(session.plan_executions(), 1);
    total_bundles
}

fn sweep(c: &mut Criterion, group_name: &str, plan: &PlanNode, catalog: &mcdbr_storage::Catalog) {
    // Cross-check once, outside measurement: every worker count produces
    // the in-process bundle count, tasks really crossed the wire, and the
    // warm path engaged after the first block.
    let baseline = run_blocks(plan, catalog, Arc::new(InProcessBackend::new()));
    for &workers in &WORKER_COUNTS {
        let backend = Arc::new(ProcessBackend::new(workers));
        assert_eq!(
            run_blocks(plan, catalog, backend.clone()),
            baseline,
            "{workers} workers changed the output"
        );
        // Exact counter expectations only hold without a global chaos plan
        // (`MCDBR_FAULTS` makes respawns and degraded blocks legitimate).
        if mcdbr_faults::env_injector().is_none() {
            let stats = backend.shard_stats();
            assert!(stats.tasks_dispatched >= BLOCKS);
            assert!(stats.worker_warm_hits > 0, "warm path must engage");
            assert_eq!(stats.worker_respawns, 0);
        }
    }

    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.bench_function("in_process", |b| {
        b.iter(|| run_blocks(plan, catalog, Arc::new(InProcessBackend::new())))
    });
    for &workers in &WORKER_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("sharded", workers),
            &workers,
            |b, &workers| {
                b.iter(|| run_blocks(plan, catalog, Arc::new(ShardedBackend::new(workers))))
            },
        );
    }
    for &workers in &WORKER_COUNTS {
        // One pool per row, spawned before measurement: the bench prices
        // the steady-state wire round trip, not process startup.
        let backend = Arc::new(ProcessBackend::new(workers));
        let _ = run_blocks(plan, catalog, backend.clone());
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, _workers| b.iter(|| run_blocks(plan, catalog, backend.clone())),
        );
    }
    group.finish();
}

/// The Appendix D join workload: few uncertain streams, a large
/// deterministic side folded into the skeleton.
fn bench_tpch_join(c: &mut Criterion) {
    let w = test_tpch();
    let plan = w.total_loss_query().plan;
    sweep(c, "ablation_dispatch_join", &plan, &w.catalog);
}

/// The §2 selective-filter workload (`WHERE CID < limit`): many active
/// streams partitioning cleanly across workers.
fn bench_filtered_losses(c: &mut Criterion) {
    let n_customers = 2_000i64;
    let limit = n_customers / 20;
    let catalog = customer_losses_catalog(n_customers as usize, (1.0, 5.0), 11).unwrap();
    let plan = customer_losses_query(None)
        .plan
        .filter(Expr::col("cid").lt(Expr::lit(limit)));
    sweep(c, "ablation_dispatch_filtered", &plan, &catalog);
}

/// Content-addressed plan shipping: the first execution against a cold
/// worker pool ships the Plan frame plus every referenced table's pages
/// (`TableData`); repeated executions of the same plan on the warm pool
/// ship only hash headers and task frames.  The bench records both sides
/// and asserts the headline claim — repeated dispatch sends at least 10x
/// fewer bytes than the first execution.
fn bench_content_addressed_shipping(c: &mut Criterion) {
    let catalog = customer_losses_catalog(2_000, (1.0, 5.0), 11).unwrap();
    let plan = customer_losses_query(None)
        .plan
        .filter(Expr::col("cid").lt(Expr::lit(100i64)));

    let backend = Arc::new(ProcessBackend::new(2));
    let cold_base = backend.shard_stats();
    let baseline = run_blocks(&plan, &catalog, backend.clone());
    let cold = backend.shard_stats().since(cold_base);

    let warm_base = backend.shard_stats();
    assert_eq!(
        run_blocks(&plan, &catalog, backend.clone()),
        baseline,
        "warm execution changed the output"
    );
    let warm = backend.shard_stats().since(warm_base);

    // Chaos plans (`MCDBR_FAULTS`) legitimately perturb wire-byte counts
    // (dropped frames, respawn-driven plan re-sends), so the exact 10x
    // claim is only asserted on clean runs.
    if mcdbr_faults::env_injector().is_none() {
        assert!(cold.wire_bytes_sent > 0 && warm.wire_bytes_sent > 0);
        assert!(
            cold.wire_bytes_sent >= 10 * warm.wire_bytes_sent,
            "content-addressed shipping must cut repeated-plan wire bytes >=10x \
             (cold {} vs warm {})",
            cold.wire_bytes_sent,
            warm.wire_bytes_sent
        );
    }

    let id = "ablation_dispatch_shipping/workers=2";
    record_metric(id, "cold_wire_bytes_sent", cold.wire_bytes_sent as f64);
    record_metric(id, "warm_wire_bytes_sent", warm.wire_bytes_sent as f64);
    record_metric(
        id,
        "cold_over_warm_sent",
        cold.wire_bytes_sent as f64 / warm.wire_bytes_sent as f64,
    );

    // Time the warm path so the reduction has a latency column next to it.
    let mut group = c.benchmark_group("ablation_dispatch_shipping");
    group.sample_size(10);
    group.bench_function("warm_repeat", |b| {
        b.iter(|| run_blocks(&plan, &catalog, backend.clone()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tpch_join,
    bench_filtered_losses,
    bench_content_addressed_shipping
);
criterion_main!(benches);
