//! Criterion bench for the block-size ablation (DESIGN.md §4): the §5
//! trade-off between carrying large stream blocks through the plan and
//! re-running the plan when a block is exhausted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcdbr_bench::{run_tail_sampling, test_tpch};
use mcdbr_core::TailSamplingConfig;

fn bench_block_size(c: &mut Criterion) {
    let w = test_tpch();
    let query = w.total_loss_query();
    let mut group = c.benchmark_group("ablation_block_size");
    group.sample_size(10);
    for &block in &[64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(block), &block, |b, &block| {
            b.iter(|| {
                let cfg = TailSamplingConfig::new(0.01, 20, 100)
                    .with_m(2)
                    .with_block_size(block)
                    .with_master_seed(5);
                run_tail_sampling(&query, &w.catalog, cfg).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_block_size);
criterion_main!(benches);
