//! Criterion bench for columnar phase-2 block materialization: what do the
//! typed, pooled `ColumnBlock` buffers buy over the retired row path?
//!
//! Both strategies materialize the *same* blocks against the *same* cached
//! [`DeterministicPrefix`] — the determinism suite proves the outputs
//! bit-identical — so the entire gap is representation and allocation:
//!
//! * `row_path/<n>` — the pre-columnar reference (`instantiate_block_rows`,
//!   kept verbatim in `mcdbr-exec`): one boxed `Vec<Value>` per VG output
//!   row per stream position, rebuilt from scratch every block.
//! * `columnar/<n>` — the shipping path: batched VG generation straight
//!   into pooled typed buffers, boxed values built only at the `BundleSet`
//!   boundary, buffers recycled across blocks.
//!
//! On top of wall-clock (with values/sec and MB/sec throughput), the bench
//! counts *heap allocations* per materialized block via a counting global
//! allocator, since fewer allocations is the mechanism behind the speedup —
//! the `allocs/block` lines print before the timing runs.
//!
//! Run with `cargo bench --bench ablation_columnar`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcdbr_bench::test_tpch;
use std::sync::Arc;

use mcdbr_exec::{
    instantiate_block_rows, BlockBufferPool, DeterministicPrefix, ExecBackend, ExecSession, Expr,
    PlanNode,
};
use mcdbr_storage::Catalog;
use mcdbr_workloads::{customer_losses_catalog, customer_losses_query};

/// A pass-through allocator that counts every allocation, so the bench can
/// report allocations-per-block for each strategy.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Heap allocations performed by one run of `f`.
fn count_allocs(mut f: impl FnMut()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

struct Workload {
    label: &'static str,
    prefix: DeterministicPrefix,
    /// Values per block (active streams x block size) for throughput.
    values_per_block: u64,
    /// The `MCDBR_BACKEND`-resolved columnar backend, primed for dispatch.
    /// In-process by default (the headline numbers); `MCDBR_BACKEND=process`
    /// routes the columnar leg through the worker fleet so CI smoke runs
    /// exercise that path too (the allocation census is process-local, so
    /// its numbers are only meaningful in-process).
    backend: Arc<dyn ExecBackend>,
}

fn prepared(label: &'static str, plan: &PlanNode, catalog: &Catalog, block: usize) -> Workload {
    let session = ExecSession::prepare(plan, catalog, 7).expect("cacheable plan");
    let prefix = session.prefix().expect("cacheable plan").clone();
    let values_per_block = (prefix.num_active_streams() * block) as u64;
    let backend = mcdbr_dispatch::default_backend();
    backend
        .prepare_dispatch(plan, catalog, &prefix)
        .expect("dispatch priming");
    Workload {
        label,
        prefix,
        values_per_block,
        backend,
    }
}

fn bench_workload(c: &mut Criterion, w: &Workload, block: usize) {
    // Allocation census first (not under the timer): the columnar path's
    // advantage is structural, so report it directly.  The pooled path is
    // measured warm — one priming block — matching how replenishment rounds
    // and repeated queries actually run.
    let pool = BlockBufferPool::new();
    let backend = &w.backend;
    // Warm fully: buffer capacities stabilize only after the recycled cell
    // storage has made one full round trip (block -> Arc -> block).
    for _ in 0..3 {
        let _ = backend
            .instantiate_block(&w.prefix, &pool, 1, 0, block)
            .unwrap();
    }
    let row_allocs = count_allocs(|| {
        criterion::black_box(instantiate_block_rows(&w.prefix, 1, 0, block).unwrap());
    });
    let col_allocs = count_allocs(|| {
        criterion::black_box(
            backend
                .instantiate_block(&w.prefix, &pool, 1, 0, block)
                .unwrap(),
        );
    });
    println!(
        "{}/allocs_per_block/{block}: row_path={row_allocs} columnar={col_allocs} ({:.1}x fewer)",
        w.label,
        row_allocs as f64 / col_allocs.max(1) as f64
    );
    criterion::record_metric(
        format!("{}/row_path/{block}", w.label),
        "allocs_per_block",
        row_allocs as f64,
    );
    criterion::record_metric(
        format!("{}/columnar/{block}", w.label),
        "allocs_per_block",
        col_allocs as f64,
    );

    let mut group = c.benchmark_group(w.label);
    group.sample_size(20);
    group.throughput(Throughput::Elements(w.values_per_block));
    group.bench_with_input(BenchmarkId::new("row_path", block), &block, |b, &block| {
        b.iter(|| instantiate_block_rows(&w.prefix, 1, 0, block).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("columnar", block), &block, |b, &block| {
        b.iter(|| {
            backend
                .instantiate_block(&w.prefix, &pool, 1, 0, block)
                .unwrap()
        })
    });
    group.finish();
}

/// The §2 selective-filter workload: many customers, a deterministic filter
/// keeping a slice of them, one Normal stream per survivor — the block
/// materialization cost is pure per-position value generation.
fn bench_filtered_losses(c: &mut Criterion) {
    let n_customers = 2_000i64;
    let catalog = customer_losses_catalog(n_customers as usize, (1.0, 5.0), 11).unwrap();
    let plan = customer_losses_query(None)
        .plan
        .filter(Expr::col("cid").lt(Expr::lit(n_customers / 10)));
    let block = 256usize;
    let w = prepared("ablation_columnar_filtered", &plan, &catalog, block);
    bench_workload(c, &w, block);
}

/// The Appendix D join workload: uncertain order amounts joined to a
/// deterministic lineitem side — blocks mix stream generation with residue
/// replay over joined bundles.
fn bench_tpch_join(c: &mut Criterion) {
    let w_tpch = test_tpch();
    let plan = w_tpch.total_loss_query().plan;
    let block = 256usize;
    let w = prepared("ablation_columnar_join", &plan, &w_tpch.catalog, block);
    bench_workload(c, &w, block);
}

criterion_group!(benches, bench_filtered_losses, bench_tpch_join);
criterion_main!(benches);
