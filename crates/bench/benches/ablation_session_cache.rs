//! Criterion bench for the plan-keyed session cache: what does a *repeated*
//! query cost once the deterministic skeleton is cached?
//!
//! Each measured iteration runs `k` complete queries over the same
//! `(plan, catalog)` pair, every query under a **fresh master seed** (the
//! repeated-dashboard / multi-scenario pattern: same risk query, new
//! randomness each refresh).  Two strategies:
//!
//! * `uncached_prepare/<k>` — the retired strategy: every query pays its own
//!   `ExecSession::prepare`, re-running scans, joins, constant predicates,
//!   and VG probes.  `k` skeleton passes total.
//! * `session_cache/<k>` — queries go through one `SessionCache`: the first
//!   pays the skeleton pass, the remaining `k - 1` only re-derive stream
//!   seeds (`seed_for` per stream) and materialize their block.  One
//!   skeleton pass total.
//!
//! The wall-time gap at the same `k` is the deterministic work the cache
//! amortizes across seeds — the step beyond `ablation_replenish`, which
//! amortizes it across *blocks of one seed*.  Hit/miss counts are asserted
//! inside the bench so the reported numbers cannot drift from the claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcdbr_bench::test_tpch;
use mcdbr_exec::{ExecSession, Expr, PlanNode, SessionCache};
use mcdbr_workloads::{customer_losses_catalog, customer_losses_query};

const BLOCK: usize = 100;

/// Run `queries` complete sessions, each under a fresh master seed, paying a
/// full `prepare` per query.  Returns total bundles (kept live so the work
/// cannot be optimized away).
fn uncached_queries(plan: &PlanNode, catalog: &mcdbr_storage::Catalog, queries: usize) -> usize {
    let mut total_bundles = 0usize;
    for seed in 0..queries as u64 {
        let mut session = ExecSession::prepare(plan, catalog, 1000 + seed).unwrap();
        assert_eq!(session.plan_executions(), 1);
        let set = session.instantiate_block(catalog, 0, BLOCK).unwrap();
        total_bundles += set.len();
    }
    total_bundles
}

/// The same `queries` sessions through one plan-keyed cache: the skeleton
/// pass runs once, every later session only re-binds stream seeds.
fn cached_queries(plan: &PlanNode, catalog: &mcdbr_storage::Catalog, queries: usize) -> usize {
    let cache = SessionCache::new();
    let mut total_bundles = 0usize;
    for seed in 0..queries as u64 {
        let mut session = cache.session(plan, catalog, 1000 + seed).unwrap();
        let set = session.instantiate_block(catalog, 0, BLOCK).unwrap();
        total_bundles += set.len();
    }
    assert_eq!(cache.skeleton_misses(), 1);
    assert_eq!(cache.skeleton_hits(), queries - 1);
    total_bundles
}

/// The Appendix D join workload: the skeleton pass the cache amortizes is
/// the lineitem scan + hash join.
fn bench_tpch_join(c: &mut Criterion) {
    let w = test_tpch();
    let plan = w.total_loss_query().plan;
    let mut group = c.benchmark_group("ablation_session_cache_join");
    group.sample_size(10);
    for &queries in &[2usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::new("uncached_prepare", queries),
            &queries,
            |b, &queries| b.iter(|| uncached_queries(&plan, &w.catalog, queries)),
        );
        group.bench_with_input(
            BenchmarkId::new("session_cache", queries),
            &queries,
            |b, &queries| b.iter(|| cached_queries(&plan, &w.catalog, queries)),
        );
    }
    group.finish();
}

/// The §2 selective-filter workload: the skeleton pass evaluates the
/// deterministic `WHERE CID < limit` over every customer and probes every VG
/// — all of it skipped on a hit, while phase 2 only materializes the 0.5%
/// of streams that survive the filter.
fn bench_filtered_losses(c: &mut Criterion) {
    let n_customers = 4_000i64;
    let limit = n_customers / 200;
    let catalog = customer_losses_catalog(n_customers as usize, (1.0, 5.0), 11).unwrap();
    let plan = customer_losses_query(None)
        .plan
        .filter(Expr::col("cid").lt(Expr::lit(limit)));
    let mut group = c.benchmark_group("ablation_session_cache_filtered");
    group.sample_size(10);
    for &queries in &[2usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::new("uncached_prepare", queries),
            &queries,
            |b, &queries| b.iter(|| uncached_queries(&plan, &catalog, queries)),
        );
        group.bench_with_input(
            BenchmarkId::new("session_cache", queries),
            &queries,
            |b, &queries| b.iter(|| cached_queries(&plan, &catalog, queries)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tpch_join, bench_filtered_losses);
criterion_main!(benches);
