//! Criterion bench for the sharded execution backend: what does phase-2
//! block materialization cost as the shard count sweeps?
//!
//! Each measured iteration materializes `BLOCKS` consecutive blocks through
//! one `ExecSession`:
//!
//! * `in_process` — the baseline thread-pool backend (`InProcessBackend`).
//! * `shards/<k>` — a `ShardedBackend` targeting `k` shards per block; the
//!   planner splits the skeleton's active streams into `k` `StreamKey`
//!   ranges, every shard binds its own prefix and materializes its bundles,
//!   and partials merge in canonical key order.
//!
//! Results are bit-identical across all rows (asserted inside the bench via
//! the shard counters and a bundle-count checksum); the wall-time sweep
//! shows what shard granularity costs or buys on each workload.  Two
//! workloads, mirroring `ablation_replenish`: the Appendix D join (few
//! streams, deterministic join side regenerated per owning shard) and the
//! §2 selective filter (many active streams, embarrassingly partitionable).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcdbr_bench::test_tpch;
use mcdbr_exec::{ExecBackend, ExecSession, Expr, InProcessBackend, PlanNode, ShardedBackend};
use mcdbr_workloads::{customer_losses_catalog, customer_losses_query};

const BLOCK: usize = 100;
const BLOCKS: usize = 8;
const MASTER_SEED: u64 = 33;

/// Materialize `BLOCKS` consecutive blocks on `backend`, returning total
/// bundles (kept live so the work cannot be optimized away).
fn run_blocks(
    plan: &PlanNode,
    catalog: &mcdbr_storage::Catalog,
    backend: Arc<dyn ExecBackend>,
) -> usize {
    let mut session = ExecSession::prepare(plan, catalog, MASTER_SEED)
        .unwrap()
        .with_backend(backend);
    let mut total_bundles = 0usize;
    for i in 0..BLOCKS {
        let set = session
            .instantiate_block(catalog, (i * BLOCK) as u64, BLOCK)
            .unwrap();
        total_bundles += set.len();
    }
    assert_eq!(session.plan_executions(), 1);
    total_bundles
}

fn sweep(c: &mut Criterion, group_name: &str, plan: &PlanNode, catalog: &mcdbr_storage::Catalog) {
    // Cross-check once, outside measurement: every shard count produces the
    // same bundle count as the in-process baseline, and the sharded rows
    // really sharded.
    let baseline = run_blocks(plan, catalog, Arc::new(InProcessBackend::new()));
    for &shards in &[1usize, 2, 4, 8] {
        let backend = Arc::new(ShardedBackend::new(shards));
        assert_eq!(
            run_blocks(plan, catalog, backend.clone()),
            baseline,
            "shard count {shards} changed the output"
        );
        assert!(backend.shard_stats().shards_spawned >= BLOCKS);
    }

    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.bench_function("in_process", |b| {
        b.iter(|| run_blocks(plan, catalog, Arc::new(InProcessBackend::new())))
    });
    for &shards in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| run_blocks(plan, catalog, Arc::new(ShardedBackend::new(shards))))
        });
    }
    group.finish();
}

/// The Appendix D join workload: few uncertain streams, a large
/// deterministic side folded into the skeleton.
fn bench_tpch_join(c: &mut Criterion) {
    let w = test_tpch();
    let plan = w.total_loss_query().plan;
    sweep(c, "ablation_sharding_join", &plan, &w.catalog);
}

/// The §2 selective-filter workload (`WHERE CID < limit`): the surviving
/// streams partition cleanly across shards with no cross-shard bundles.
fn bench_filtered_losses(c: &mut Criterion) {
    let n_customers = 2_000i64;
    let limit = n_customers / 20;
    let catalog = customer_losses_catalog(n_customers as usize, (1.0, 5.0), 11).unwrap();
    let plan = customer_losses_query(None)
        .plan
        .filter(Expr::col("cid").lt(Expr::lit(limit)));
    sweep(c, "ablation_sharding_filtered", &plan, &catalog);
}

criterion_group!(benches, bench_tpch_join, bench_filtered_losses);
criterion_main!(benches);
