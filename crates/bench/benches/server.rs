//! End-to-end `mcdbr-server` load: concurrent clients over real TCP
//! sockets against one resident server sharing a session cache and
//! buffer pool.
//!
//! For each client count the bench times a full load run (every client
//! completing its query budget) and records the load generator's own
//! measurements — p50/p99 per-query latency, aggregate queries/sec, and
//! shared-cache skeleton hits — into `BENCH_server.json` via
//! [`record_metric`].  The shared-cache win is asserted outside the
//! timed region: after the warm-up query builds the skeleton, every
//! subsequent query must ride it.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use mcdbr_exec::InProcessBackend;
use mcdbr_server::run_load;
use mcdbr_server::service::{Server, ServerConfig};
use mcdbr_workloads::{customer_losses_catalog, customer_losses_query};

const CLIENT_COUNTS: [usize; 2] = [2, 8];
const QUERIES_PER_CLIENT: usize = 8;
const REPS: usize = 64;

fn bench_server_load(c: &mut Criterion) {
    let catalog = customer_losses_catalog(64, (2.0, 6.0), 11).unwrap();
    let query = customer_losses_query(Some(40));

    let mut group = c.benchmark_group("server");
    group.sample_size(10);
    for clients in CLIENT_COUNTS {
        let handle = Server::start(
            catalog.clone(),
            Arc::new(InProcessBackend::new()),
            ServerConfig {
                // Admit every client: this bench measures scheduling and
                // cache sharing, not admission-control backoff.
                max_inflight: CLIENT_COUNTS[1].max(clients) * 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr();

        // Prime the shared skeleton cache so the timed runs measure the
        // resident steady state, not one cold plan build.
        run_load(addr, &query, 1, 1, REPS).unwrap();

        group.bench_function(format!("clients={clients}"), |b| {
            b.iter(|| run_load(addr, &query, clients, QUERIES_PER_CLIENT, REPS).unwrap())
        });

        // One more run outside the timing loop supplies the recorded
        // numbers and proves the shared-cache win end to end.
        let report = run_load(addr, &query, clients, QUERIES_PER_CLIENT, REPS).unwrap();
        assert_eq!(report.queries, clients * QUERIES_PER_CLIENT);
        assert_eq!(
            report.skeleton_hits, report.queries,
            "every query after warm-up must ride the shared skeleton"
        );
        let id = format!("server/clients={clients}");
        record_metric(&id, "p50_ms", report.p50_ms);
        record_metric(&id, "p99_ms", report.p99_ms);
        record_metric(&id, "qps", report.qps);
        record_metric(&id, "skeleton_hits", report.skeleton_hits as f64);
        // Client-side wire traffic, averaged per query — the measure of
        // how chatty the server protocol is under steady-state load.
        let per_query = |bytes: u64| bytes as f64 / report.queries as f64;
        record_metric(
            &id,
            "wire_bytes_sent_per_query",
            per_query(report.wire_bytes_sent),
        );
        record_metric(
            &id,
            "wire_bytes_received_per_query",
            per_query(report.wire_bytes_received),
        );

        let stats = handle.shutdown();
        assert_eq!(stats.inflight, 0, "drained server may not leak slots");
        assert_eq!(
            stats.busy_rejections, 0,
            "loadgen retries mask no Busy here"
        );
    }
    group.finish();
}

criterion_group!(benches, bench_server_load);
criterion_main!(benches);
