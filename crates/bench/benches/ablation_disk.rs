//! Criterion bench for the on-disk pager: what does a full scan cost when
//! sealed pages live in a heap file instead of memory, as the buffer
//! pool's frame budget sweeps from thrashing-small to everything-resident?
//!
//! A >500-page table is scanned end to end in a 2×4 matrix:
//!
//! * tier ∈ {`memory`, `disk`} — the same table before and after
//!   [`Table::spill_with`] moves every sealed page into a checksummed heap
//!   file (`disk` rows re-read and re-validate pages on every pool miss).
//! * budget ∈ {2, 8, 64, unbounded} — the frame budget of a private
//!   [`BufferPool`], bounding how many decoded pages stay resident.
//!
//! Scan results are asserted bit-identical across all eight cells outside
//! the timed region — the disk tier and the budget trade latency for
//! memory, never correctness — and per-cell disk/pool counters land in
//! `BENCH_disk.json` via [`record_metric`].

use criterion::{criterion_group, criterion_main, record_metric, BenchmarkId, Criterion};
use mcdbr_storage::{BufferPool, Field, Pager, Schema, Table, Tuple, Value};

const ROWS: usize = 20_000;
/// Small enough that the table spans hundreds of pages.
const PAGE_BUDGET: usize = 1024;
const FRAME_BUDGETS: [usize; 4] = [2, 8, 64, usize::MAX];

fn build_table() -> Table {
    let schema = Schema::new(vec![
        Field::int64("id"),
        Field::float64("x"),
        Field::utf8("tag"),
    ]);
    let rows: Vec<Tuple> = (0..ROWS)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(i as i64),
                Value::Float64(i as f64 * 0.25),
                Value::str(format!("tag-{}", i % 97)),
            ])
        })
        .collect();
    Table::with_page_budget(schema, rows, PAGE_BUDGET).unwrap()
}

/// Scan the whole table through `pool`, folding a checksum so the work
/// cannot be optimized away.
fn scan(table: &Table, pool: &BufferPool) -> u64 {
    let mut acc = 0u64;
    for row in table.iter_with(pool) {
        if let Value::Int64(v) = row.value(0) {
            acc = acc.wrapping_add(*v as u64);
        }
        if let Value::Float64(v) = row.value(1) {
            acc ^= v.to_bits();
        }
    }
    acc
}

fn bench_disk_vs_memory(c: &mut Criterion) {
    let memory = build_table();
    let pages = memory.pages().len();
    assert!(pages > 500, "table must span >500 pages, got {pages}");

    let root = std::env::temp_dir().join(format!("mcdbr-ablation-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let pager = Pager::new(&root).unwrap();
    let mut disk = memory.clone();
    let moved = disk.spill_with(&pager).unwrap();
    assert!(moved > 0, "spill must move sealed pages to the heap file");
    assert_eq!(
        disk.resident_sealed_bytes(),
        0,
        "every sealed page must leave memory"
    );
    assert_eq!(
        disk.content_hash(),
        memory.content_hash(),
        "spilling must not change table identity"
    );

    // Bit-identity across the whole matrix, asserted outside measurement:
    // the checksum folds every int and raw float bit in scan order.
    let reference = scan(&memory, &BufferPool::new(usize::MAX));
    for (tier, table) in [("memory", &memory), ("disk", &disk)] {
        for &budget in &FRAME_BUDGETS {
            assert_eq!(
                scan(table, &BufferPool::new(budget)),
                reference,
                "{tier} tier, budget {budget} changed scan results"
            );
        }
    }

    let mut group = c.benchmark_group("ablation_disk_scan");
    group.throughput(criterion::Throughput::Elements(ROWS as u64));
    for (tier, table) in [("memory", &memory), ("disk", &disk)] {
        for &budget in &FRAME_BUDGETS {
            let label = if budget == usize::MAX {
                format!("{tier}/unbounded")
            } else {
                format!("{tier}/{budget}")
            };
            // A fresh pool per iteration: each measured scan pays the full
            // miss/decode/evict (and, on the disk tier, read + checksum)
            // cycle its budget implies, not a warm cache from the previous
            // iteration.
            group.bench_with_input(BenchmarkId::new("budget", &label), &budget, |b, &budget| {
                b.iter(|| scan(table, &BufferPool::new(budget)))
            });

            // Counter row outside the timed region: disk reads and pool
            // churn for one full scan of this cell.
            let disk_before = pager.stats();
            let pool = BufferPool::new(budget);
            let _ = scan(table, &pool);
            let stats = pool.stats();
            let window = pager.stats().since(&disk_before);
            let id = format!("ablation_disk_scan/budget={label}");
            record_metric(&id, "pages", pages as f64);
            record_metric(&id, "pages_read", stats.pages_read as f64);
            record_metric(&id, "pool_hits", stats.pool_hits as f64);
            record_metric(&id, "pool_evictions", stats.pool_evictions as f64);
            record_metric(&id, "disk_reads", window.disk_reads as f64);
            record_metric(&id, "disk_read_ns", window.disk_read_ns as f64);
        }
    }
    group.finish();

    drop(disk);
    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(benches, bench_disk_vs_memory);
criterion_main!(benches);
