//! Experiment E4: the §1 motivating numbers for naive Monte Carlo.
//!
//! Prints, for the paper's Normal(10M, (1M)²) total-loss example, the
//! expected repetitions per tail hit at 15M, the repetitions needed to
//! estimate the tail area to ±1% at 95% confidence, and the repetitions
//! needed to locate the 0.999-quantile to a 1% relative standard error.

use mcdbr_bench::row;
use mcdbr_mcdb::NaiveCostModel;

fn main() {
    let model = NaiveCostModel::paper_example();
    println!("E4: cost of naive Monte Carlo in the tail (paper §1)");
    println!("{}", row(&["quantity".into(), "paper".into(), "computed".into()]));
    println!(
        "{}",
        row(&[
            "reps per 15M hit".into(),
            "3.5 million".into(),
            format!("{:.3e}", model.expected_reps_per_tail_hit(15.0e6)),
        ])
    );
    println!(
        "{}",
        row(&[
            "reps for area +/-1%".into(),
            "130 billion".into(),
            format!("{:.3e}", model.reps_for_tail_probability(15.0e6, 0.01, 0.95)),
        ])
    );
    println!(
        "{}",
        row(&[
            "reps for 0.999-q".into(),
            "10 million".into(),
            format!("{:.3e}", model.reps_for_quantile(0.001, 0.01)),
        ])
    );
    println!(
        "{}",
        row(&[
            "0.999 quantile".into(),
            "(13.09M)".into(),
            format!("{:.4e}", model.quantile(0.001)),
        ])
    );
}
