//! Experiment E4: the §1 motivating numbers for naive Monte Carlo.
//!
//! Prints, for the paper's Normal(10M, (1M)²) total-loss example, the
//! expected repetitions per tail hit at 15M, the repetitions needed to
//! estimate the tail area to ±1% at 95% confidence, and the repetitions
//! needed to locate the 0.999-quantile to a 1% relative standard error —
//! then runs a measured naive tail hunt and reports the execution session's
//! own counters, so the once-per-query / once-per-block cost structure is
//! observed rather than recomputed.

use mcdbr_bench::row;
use mcdbr_mcdb::{McdbEngine, NaiveCostModel};
use mcdbr_workloads::{customer_losses_catalog, customer_losses_query};

fn main() {
    let model = NaiveCostModel::paper_example();
    println!("E4: cost of naive Monte Carlo in the tail (paper §1)");
    println!(
        "{}",
        row(&["quantity".into(), "paper".into(), "computed".into()])
    );
    println!(
        "{}",
        row(&[
            "reps per 15M hit".into(),
            "3.5 million".into(),
            format!("{:.3e}", model.expected_reps_per_tail_hit(15.0e6)),
        ])
    );
    println!(
        "{}",
        row(&[
            "reps for area +/-1%".into(),
            "130 billion".into(),
            format!(
                "{:.3e}",
                model.reps_for_tail_probability(15.0e6, 0.01, 0.95)
            ),
        ])
    );
    println!(
        "{}",
        row(&[
            "reps for 0.999-q".into(),
            "10 million".into(),
            format!("{:.3e}", model.reps_for_quantile(0.001, 0.01)),
        ])
    );
    println!(
        "{}",
        row(&[
            "0.999 quantile".into(),
            "(13.09M)".into(),
            format!("{:.4e}", model.quantile(0.001)),
        ])
    );

    // Measured cost structure of a naive tail hunt: the hunt generates many
    // repetition blocks, but the execution session runs deterministic plan
    // work exactly once.  These are the session's own counters.
    let catalog = customer_losses_catalog(50, (1.0, 5.0), 4).expect("catalog");
    let query = customer_losses_query(None);
    let mut engine = McdbEngine::new();
    let report = engine
        .naive_tail_sample(&query, &catalog, 0.02, 40, 500, 250, 50_000, 77)
        .expect("naive tail hunt");
    println!("\nmeasured naive hunt (p = 0.02, l = 40, 50 customers):");
    println!(
        "{}",
        row(&[
            "repetitions generated".into(),
            "~l/p".into(),
            report.repetitions.to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "blocks materialized".into(),
            "1 + batches".into(),
            report.blocks_materialized.to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "plan executions".into(),
            "1 (session)".into(),
            report.plan_executions.to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "columnar bytes materialized".into(),
            "-".into(),
            format!(
                "{:.3} MiB",
                report.bytes_materialized as f64 / (1 << 20) as f64
            )
        ])
    );
    println!(
        "{}",
        row(&[
            "pooled buffer reuses".into(),
            "streams x (blocks - 1)".into(),
            report.buffer_reuses.to_string()
        ])
    );
}
