//! Experiments E5 + E6: the Appendix C parameter-selection theory.
//!
//! Prints (a) the §3.3 staging example (p = 0.001, m = 4 ⇒ per-stage
//! 0.82-quantiles), (b) the optimal m* and MSRE as a function of the budget
//! N (the w(N) curve), and (c) an ablation sweep of m around m* at fixed N.

use mcdbr_bench::row;
use mcdbr_core::params::{budget_for_msre, msre_even, optimal_m, staged_parameters_with_m, w_of_n};

fn main() {
    let p = 0.001;
    println!("E5: staged quantile levels for p = {p}, m = 4 (paper §3.3)");
    let params = staged_parameters_with_m(1000, p, 4);
    for (i, level) in params.intermediate_quantile_levels().iter().enumerate() {
        println!("  stage {}: estimate the {:.4}-quantile", i + 1, level);
    }

    println!("\nE6a: w(N) — MSRE of the optimized sampler vs budget N (p = {p})");
    println!(
        "{}",
        row(&[
            "N".into(),
            "m*".into(),
            "w(N) (MSRE)".into(),
            "rel. std err".into()
        ])
    );
    for &n in &[100usize, 250, 500, 1000, 2500, 5000, 10_000] {
        let m = optimal_m(n, p);
        let w = w_of_n(n, p);
        println!(
            "{}",
            row(&[
                n.to_string(),
                m.to_string(),
                format!("{w:.4}"),
                format!("{:.3}", w.sqrt())
            ])
        );
    }
    let target = 0.05;
    println!(
        "  budget for MSRE <= {target}: N = {}",
        budget_for_msre(p, target)
    );

    println!("\nE6b: ablation — MSRE vs m at fixed N = 1000 (paper Theorem 1 optimum marked *)");
    println!("{}", row(&["m".into(), "p^(1/m)".into(), "MSRE".into()]));
    let m_star = optimal_m(1000, p);
    for m in 1..=10usize {
        let tag = if m == m_star { "*" } else { "" };
        println!(
            "{}",
            row(&[
                format!("{m}{tag}"),
                format!("{:.4}", p.powf(1.0 / m as f64)),
                format!("{:.4}", msre_even(1000, p, m)),
            ])
        );
    }
    println!(
        "\nAppendix D uses m = 5, p^(1/m) = 0.25, i.e. p = {:.6}",
        0.25f64.powi(5)
    );
}
