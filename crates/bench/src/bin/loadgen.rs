//! `loadgen` — drive a running `mcdbr-server` with concurrent clients
//! and print latency percentiles and throughput.
//!
//! ```text
//! loadgen --addr HOST:PORT [--clients N] [--queries N] [--reps N]
//!         [--retry-base-ms MS] [--retry-attempts N] [--shutdown]
//! ```
//!
//! Each client runs `--queries` demo queries (the same customer-losses
//! query `mcdbr-server` serves) with distinct master seeds, so the
//! workload exercises the shared skeleton cache without repeating
//! results.  `Busy` rejections are retried under a capped-exponential,
//! seeded-jitter backoff: `--retry-base-ms` sets the first delay and
//! `--retry-attempts` bounds the retries (omit it to retry forever).
//! `--shutdown` sends the server a `Shutdown` frame after the run,
//! draining it — handy for CI smoke scripts.

use std::process::ExitCode;

use mcdbr_faults::BackoffPolicy;
use mcdbr_server::client::ServerClient;
use mcdbr_server::demo;
use mcdbr_server::run_load_with;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--clients N] [--queries N] [--reps N] \
         [--retry-base-ms MS] [--retry-attempts N] [--shutdown]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut clients = 4usize;
    let mut queries = 16usize;
    let mut reps = 64usize;
    let mut retry = BackoffPolicy::default();
    let mut shutdown = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage_missing(flag));
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--clients" => clients = parse_count(&value("--clients"), "--clients"),
            "--queries" => queries = parse_count(&value("--queries"), "--queries"),
            "--reps" => reps = parse_count(&value("--reps"), "--reps"),
            "--retry-base-ms" => {
                retry.base_ms = parse_count(&value("--retry-base-ms"), "--retry-base-ms") as u64;
            }
            "--retry-attempts" => {
                retry.max_attempts =
                    Some(parse_count(&value("--retry-attempts"), "--retry-attempts") as u32);
            }
            "--shutdown" => shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("loadgen: unknown argument `{other}`");
                usage();
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("loadgen: --addr is required");
        usage();
    };

    let query = demo::demo_query();
    eprintln!("loadgen: {clients} clients x {queries} queries x {reps} reps against {addr}");
    let report = match run_load_with(addr.clone(), &query, clients, queries, reps, retry) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("loadgen: load run failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "queries={} p50_ms={:.3} p99_ms={:.3} qps={:.1} skeleton_hits={} \
         wire_bytes_sent={} wire_bytes_received={}",
        report.queries,
        report.p50_ms,
        report.p99_ms,
        report.qps,
        report.skeleton_hits,
        report.wire_bytes_sent,
        report.wire_bytes_received
    );

    if shutdown {
        match ServerClient::connect(addr.as_str()).and_then(|c| c.shutdown()) {
            Ok(()) => eprintln!("loadgen: shutdown requested"),
            Err(err) => {
                eprintln!("loadgen: shutdown request failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage_missing(flag: &str) -> ! {
    eprintln!("loadgen: {flag} requires a value");
    usage();
}

fn parse_count(value: &str, flag: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("loadgen: {flag} must be a positive integer, got `{value}`");
            usage();
        }
    }
}
