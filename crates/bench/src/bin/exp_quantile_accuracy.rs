//! Experiment E2: quantile-estimation accuracy (Appendix D).
//!
//! 20 runs of MCDB-R on the Appendix D workload; reports the mean quantile
//! estimate, the empirical standard error, and the true quantile — the
//! numbers the paper reports as 5.0728e5 / 265 / 5.0738e5 at full scale.

use mcdbr_bench::{appendix_d_config, row, run_tail_sampling};
use mcdbr_workloads::{TpchConfig, TpchWorkload};

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "test".into());
    let (config, runs, budget) = match scale.as_str() {
        "paper" => (TpchConfig::paper_scale(), 20, 1000),
        "laptop" => (TpchConfig::laptop_scale(), 20, 1000),
        _ => (TpchConfig::test_scale(), 8, 400),
    };
    let w = TpchWorkload::generate(config).expect("workload");
    let p = 0.25f64.powi(5);
    let true_q = w.oracle.quantile(1.0 - p);
    let mut estimates = Vec::new();
    for run in 0..runs {
        let cfg = appendix_d_config(budget, 5_000 + run as u64);
        let result = run_tail_sampling(&w.total_loss_query(), &w.catalog, cfg).expect("run");
        estimates.push(result.quantile_estimate);
    }
    let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
    let std_err = (estimates
        .iter()
        .map(|e| (e - mean) * (e - mean))
        .sum::<f64>()
        / estimates.len() as f64)
        .sqrt();
    println!("E2: quantile accuracy over {runs} runs (N = {budget}, p = {p:.6})");
    println!(
        "{}",
        row(&[
            "quantity".into(),
            "paper (full scale)".into(),
            "measured".into()
        ])
    );
    println!(
        "{}",
        row(&[
            "mean estimate".into(),
            "5.0728e5".into(),
            format!("{mean:.5e}")
        ])
    );
    println!(
        "{}",
        row(&[
            "true quantile".into(),
            "5.0738e5".into(),
            format!("{true_q:.5e}")
        ])
    );
    println!(
        "{}",
        row(&[
            "empirical std err".into(),
            "265".into(),
            format!("{std_err:.3e}")
        ])
    );
    println!(
        "{}",
        row(&[
            "middle-99% width".into(),
            "~2503".into(),
            format!("{:.3e}", w.oracle.central_interval_width(0.01)),
        ])
    );
    println!(
        "{}",
        row(&[
            "std err / width".into(),
            "~10%".into(),
            format!(
                "{:.1}%",
                100.0 * std_err / w.oracle.central_interval_width(0.01)
            ),
        ])
    );
}
