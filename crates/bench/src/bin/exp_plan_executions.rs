//! Experiment E8: plan executions — tuple-bundle looper vs naive Gibbs loop.
//!
//! §4.3's cost argument: a naive Gibbs-loop implementation re-runs the whole
//! query once per candidate value per seed per DB version per iteration
//! (the paper's example: 100 versions x 1e6 seeds x 10 iterations x 10
//! rejections = 1e10 plan executions), whereas the tuple-bundle GibbsLooper
//! runs the plan once plus one run per replenishment.  This experiment counts
//! both on a measured instance and also prints the paper's own arithmetic.

use std::sync::Arc;

use mcdbr_bench::row;
use mcdbr_core::{GibbsLooper, TailSamplingConfig};
use mcdbr_exec::SessionCache;
use mcdbr_workloads::{TpchConfig, TpchWorkload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (backend_label, backend, _rest) = mcdbr_bench::backend_from_args(&args);
    let w = TpchWorkload::generate(TpchConfig::test_scale()).expect("workload");
    let cfg = TailSamplingConfig::new(0.01, 50, 400)
        .with_m(3)
        .with_block_size(600)
        .with_master_seed(13);
    let cache = Arc::new(SessionCache::new());
    let looper = GibbsLooper::new(w.total_loss_query(), cfg.clone())
        .with_cache(Arc::clone(&cache))
        .with_backend(Arc::clone(&backend));
    let result = looper.run(&w.catalog).expect("tail run");

    // A repeated run under a fresh master seed: the plan-keyed session cache
    // hands back the deterministic skeleton, so phase 1 never re-runs — and
    // on a process backend the workers' own caches stay warm too.
    let repeat = GibbsLooper::new(w.total_loss_query(), cfg.with_master_seed(14))
        .with_cache(Arc::clone(&cache))
        .with_backend(Arc::clone(&backend))
        .run(&w.catalog)
        .expect("repeat tail run");

    let n_versions = result.parameters.n_per_step as f64;
    let n_seeds = w.config.num_orders as f64;
    let iterations = result.parameters.m as f64;
    let candidates_per_update =
        (result.gibbs.candidates() as f64 / result.gibbs.accepted.max(1) as f64).max(1.0);
    let naive_plan_runs = n_versions * n_seeds * iterations * candidates_per_update;

    println!(
        "E8: query-plan executions (measured instance: {} seeds, n = {}, m = {}, backend = {})",
        n_seeds, n_versions, iterations, backend_label
    );
    println!("{}", row(&["strategy".into(), "plan executions".into()]));
    println!(
        "{}",
        row(&[
            "GibbsLooper (tuple bundles)".into(),
            result.plan_executions.to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "  (stream blocks materialized)".into(),
            result.blocks_materialized.to_string(),
        ])
    );
    println!(
        "{}",
        row(&[
            "repeat run, fresh seed (cache hit)".into(),
            repeat.plan_executions.to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "  (skeleton hits / misses)".into(),
            format!("{} / {}", cache.skeleton_hits(), cache.skeleton_misses()),
        ])
    );
    println!(
        "{}",
        row(&[
            "  (shards spawned, both runs)".into(),
            (result.shards_spawned + repeat.shards_spawned).to_string(),
        ])
    );
    println!(
        "{}",
        row(&[
            "  (shard merge time)".into(),
            format!(
                "{:.3} ms",
                (result.shard_merge_ns + repeat.shard_merge_ns) as f64 / 1e6
            ),
        ])
    );
    println!(
        "{}",
        row(&[
            "  (cross-shard regens)".into(),
            (result.cross_shard_regens + repeat.cross_shard_regens).to_string(),
        ])
    );
    println!(
        "{}",
        row(&[
            "  (columnar bytes materialized)".into(),
            format!(
                "{:.3} MiB",
                (result.bytes_materialized + repeat.bytes_materialized) as f64 / (1 << 20) as f64
            ),
        ])
    );
    println!(
        "{}",
        row(&[
            "  (pooled buffer reuses)".into(),
            (result.buffer_reuses + repeat.buffer_reuses).to_string(),
        ])
    );
    println!(
        "{}",
        row(&[
            "  (workers spawned / respawned)".into(),
            format!(
                "{} / {}",
                result.workers_spawned + repeat.workers_spawned,
                result.worker_respawns + repeat.worker_respawns
            ),
        ])
    );
    println!(
        "{}",
        row(&[
            "  (tasks dispatched to workers)".into(),
            (result.tasks_dispatched + repeat.tasks_dispatched).to_string(),
        ])
    );
    println!(
        "{}",
        row(&[
            "  (wire bytes sent / received)".into(),
            format!(
                "{:.3} / {:.3} MiB",
                (result.wire_bytes_sent + repeat.wire_bytes_sent) as f64 / (1 << 20) as f64,
                (result.wire_bytes_received + repeat.wire_bytes_received) as f64 / (1 << 20) as f64
            ),
        ])
    );
    println!(
        "{}",
        row(&[
            "naive Gibbs loop (computed)".into(),
            format!("{naive_plan_runs:.3e}")
        ])
    );
    println!(
        "{}",
        row(&[
            "ratio".into(),
            format!("{:.3e}x", naive_plan_runs / result.plan_executions as f64)
        ])
    );
    println!("\nPaper's own arithmetic (§4.3): 100 versions x 1e6 seeds x 10 iterations x 10 rejections = 1e10 plan executions vs 1 (+ replenishments) for the tuple-bundle looper.");
}
