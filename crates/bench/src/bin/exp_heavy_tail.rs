//! Experiment E7 (Appendix B): when will MCDB-R work best?
//!
//! Measures the Gibbs rejection sampler's acceptance rate for SUM queries
//! over light-tailed (Normal, Uniform) and heavy-tailed (Lognormal, Pareto)
//! i.i.d. attributes, at matched tail probabilities.  The paper's claim is
//! that subexponential marginals make a single huge component responsible
//! for the exceedance, so replacing it collapses the sum and rejection rates
//! blow up.

use mcdbr_bench::row;
use mcdbr_core::params::staged_parameters_with_m;
use mcdbr_core::{IndependentSumModel, ScalarCloner};
use mcdbr_prng::Pcg64;
use mcdbr_vg::Distribution;

fn main() {
    let r = 50;
    let p = 0.01;
    let params = staged_parameters_with_m(800, p, 3);
    println!(
        "E7: Gibbs acceptance vs marginal tail weight (SUM of {r} i.i.d. attributes, p = {p})"
    );
    println!(
        "{}",
        row(&[
            "marginal".into(),
            "acceptance".into(),
            "rejections/update".into(),
            "exhausted".into()
        ])
    );
    let cases: Vec<(&str, Distribution)> = vec![
        ("Normal(1,1)", Distribution::Normal { mean: 1.0, sd: 1.0 }),
        ("Uniform(0,2)", Distribution::Uniform { lo: 0.0, hi: 2.0 }),
        (
            "Lognormal(0,1)",
            Distribution::Lognormal {
                mu: 0.0,
                sigma: 1.0,
            },
        ),
        (
            "Pareto(1,1.3)",
            Distribution::Pareto {
                scale: 1.0,
                shape: 1.3,
            },
        ),
    ];
    let mut gen = Pcg64::new(2026);
    for (name, marginal) in cases {
        let cloner = ScalarCloner {
            model: IndependentSumModel::iid(marginal, r),
            k: 1,
            max_candidates: 5_000,
        };
        let report = cloner.run(&params, 100, &mut gen);
        let updates = report.gibbs.accepted.max(1);
        println!(
            "{}",
            row(&[
                name.into(),
                format!("{:.3}", report.gibbs.acceptance_rate()),
                format!("{:.2}", report.gibbs.rejected as f64 / updates as f64),
                report.gibbs.exhausted.to_string(),
            ])
        );
    }
    println!("\nLight tails accept quickly; heavy (subexponential) tails reject or exhaust (paper App. B).");
}
