//! Experiment E3: MCDB-R vs naive MCDB wall-clock (Appendix D headline).
//!
//! Measures (a) per-iteration wall-clock of the GibbsLooper including the
//! replenishment re-run, (b) the per-repetition cost of naive MCDB on the
//! same workload, and (c) the extrapolated cost of collecting l = 100 tail
//! samples beyond the 0.999-quantile naively (repetitions needed = l / p).
//! The paper reports ~11 minutes vs ~18 hours at full scale; the shape to
//! reproduce is the orders-of-magnitude ratio.

use std::sync::Arc;
use std::time::Instant;

use mcdbr_bench::{appendix_d_config, backend_from_args, row, run_tail_sampling_on};
use mcdbr_mcdb::McdbEngine;
use mcdbr_workloads::{TpchConfig, TpchWorkload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The flag replaced the old env-only backend selection; the scale is
    // the first argument the flag did not consume.
    let (backend_label, backend, rest) = backend_from_args(&args);
    let scale = rest.first().cloned().unwrap_or_else(|| "test".into());
    let (config, budget) = match scale.as_str() {
        "paper" => (TpchConfig::paper_scale(), 500),
        "laptop" => (TpchConfig::laptop_scale(), 500),
        _ => (TpchConfig::test_scale(), 300),
    };
    let w = TpchWorkload::generate(config).expect("workload");
    let p = 0.25f64.powi(5);
    let l = 100.0;

    // MCDB-R tail sampling.
    let start = Instant::now();
    let cfg = appendix_d_config(budget, 77);
    let result = run_tail_sampling_on(&w.total_loss_query(), &w.catalog, cfg, Arc::clone(&backend))
        .expect("tail run");
    let mcdbr_secs = start.elapsed().as_secs_f64();

    // Naive MCDB: measure the per-repetition cost with a modest batch.  The
    // engine's shard counters are windowed from its own construction, so the
    // looper's shards (same backend instance) don't leak into the naive
    // rows.
    let mut engine = McdbEngine::new().with_backend(Arc::clone(&backend));
    let calib_reps = 200;
    let start = Instant::now();
    engine
        .run_samples(&w.total_loss_query(), &w.catalog, calib_reps, 7)
        .expect("naive batch");
    let per_rep = start.elapsed().as_secs_f64() / calib_reps as f64;
    let naive_plan_execs = engine.plans_executed();
    let naive_blocks = engine.blocks_materialized();
    // Repetitions needed to see l tail samples at probability p, plus the
    // calibration needed to locate the quantile in the first place.
    let reps_needed = l / p + 1.0 / (p * 0.01f64.powi(2)) * 0.0; // dominant term: l / p
    let naive_secs = per_rep * reps_needed;

    println!(
        "E3: MCDB-R vs naive MCDB ({} orders, {} lineitems, p = {p:.6}, l = 100, backend = {})",
        w.config.num_orders, w.config.num_lineitems, backend_label
    );
    println!(
        "{}",
        row(&[
            "quantity".into(),
            "paper (full scale)".into(),
            "measured".into()
        ])
    );
    println!(
        "{}",
        row(&[
            "MCDB-R total".into(),
            "~11 minutes".into(),
            format!("{mcdbr_secs:.2} s")
        ])
    );
    println!(
        "{}",
        row(&[
            "MCDB-R plan executions".into(),
            "1 (skeleton once)".into(),
            result.plan_executions.to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "MCDB-R blocks materialized".into(),
            "2 (1 + replenish)".into(),
            result.blocks_materialized.to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "MCDB-R replenishments".into(),
            "1".into(),
            result.replenishments.to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "MCDB-R skeleton hits/misses".into(),
            "0 / 1 (cold cache)".into(),
            format!("{} / {}", result.skeleton_hits, result.skeleton_misses)
        ])
    );
    println!(
        "{}",
        row(&[
            "MCDB-R shards spawned".into(),
            "0 unless MCDBR_SHARDS".into(),
            result.shards_spawned.to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "MCDB-R shard merge time".into(),
            "-".into(),
            format!("{:.3} ms", result.shard_merge_ns as f64 / 1e6)
        ])
    );
    println!(
        "{}",
        row(&[
            "MCDB-R cross-shard regens".into(),
            "0 (join is single-tag)".into(),
            result.cross_shard_regens.to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "MCDB-R columnar bytes".into(),
            "-".into(),
            format!(
                "{:.3} MiB",
                result.bytes_materialized as f64 / (1 << 20) as f64
            )
        ])
    );
    println!(
        "{}",
        row(&[
            "MCDB-R buffer reuses".into(),
            "streams x replenishments".into(),
            result.buffer_reuses.to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "MCDB-R workers spawned/respawned".into(),
            "0 unless --backend process".into(),
            format!("{} / {}", result.workers_spawned, result.worker_respawns)
        ])
    );
    println!(
        "{}",
        row(&[
            "MCDB-R tasks dispatched".into(),
            "0 unless --backend process".into(),
            result.tasks_dispatched.to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "MCDB-R wire sent/received".into(),
            "-".into(),
            format!(
                "{:.3} / {:.3} MiB",
                result.wire_bytes_sent as f64 / (1 << 20) as f64,
                result.wire_bytes_received as f64 / (1 << 20) as f64
            )
        ])
    );
    println!(
        "{}",
        row(&[
            "naive plan executions".into(),
            "1".into(),
            naive_plan_execs.to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "naive skeleton hits/misses".into(),
            "0 / 1 (cold cache)".into(),
            format!("{} / {}", engine.skeleton_hits(), engine.skeleton_misses())
        ])
    );
    println!(
        "{}",
        row(&[
            "naive blocks materialized".into(),
            "1".into(),
            naive_blocks.to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "naive shards spawned".into(),
            "0 unless MCDBR_SHARDS".into(),
            engine.shards_spawned().to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "naive tasks dispatched".into(),
            "0 unless --backend process".into(),
            engine.tasks_dispatched().to_string()
        ])
    );
    println!(
        "{}",
        row(&[
            "naive columnar bytes".into(),
            "-".into(),
            format!(
                "{:.3} MiB",
                engine.bytes_materialized() as f64 / (1 << 20) as f64
            )
        ])
    );
    println!(
        "{}",
        row(&[
            "naive cost / repetition".into(),
            "-".into(),
            format!("{:.4} s", per_rep)
        ])
    );
    println!(
        "{}",
        row(&[
            "naive repetitions needed".into(),
            "~3.4e6 (l/p)".into(),
            format!("{reps_needed:.3e}")
        ])
    );
    println!(
        "{}",
        row(&[
            "naive extrapolated total".into(),
            "~18 hours".into(),
            format!("{:.1} s (= {:.1} h)", naive_secs, naive_secs / 3600.0)
        ])
    );
    println!(
        "{}",
        row(&[
            "speedup (naive / MCDB-R)".into(),
            "~98x".into(),
            format!("{:.0}x", naive_secs / mcdbr_secs)
        ])
    );
    println!(
        "{}",
        row(&[
            "Gibbs acceptance".into(),
            "-".into(),
            format!("{:.3}", result.gibbs.acceptance_rate()),
        ])
    );
}
