//! Experiment E9: the §4.2 / Figure 1 worked example.
//!
//! Three customers with mean losses 3.0, 4.0 and 5.0; p = 1/32, n = 4, m = 5
//! bootstrapping iterations, producing four DB instances in the top 3.125% of
//! the total-loss distribution.  The exact stream values differ from the
//! figure (different PRNG), but the trace structure — per-iteration cutoffs
//! increasing, final samples above the last cutoff — is the figure's content.

use mcdbr_bench::row;
use mcdbr_core::{GibbsLooper, TailSamplingConfig};
use mcdbr_storage::{Field, Schema, TableBuilder, Value};
use mcdbr_vg::math::std_normal_quantile;
use mcdbr_workloads::{customer_losses_catalog, customer_losses_query};

fn main() {
    // The exact §4.2 parameter table (means 3, 4, 5).
    let mut catalog = customer_losses_catalog(0, (0.0, 1.0), 0).unwrap();
    let means = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
        .row([Value::Int64(1), Value::Float64(3.0)])
        .row([Value::Int64(2), Value::Float64(4.0)])
        .row([Value::Int64(3), Value::Float64(5.0)])
        .build()
        .unwrap();
    catalog.register_or_replace("means", means);

    let config = TailSamplingConfig::new(1.0 / 32.0, 4, 20)
        .with_m(5)
        .with_block_size(64)
        .with_master_seed(42);
    let result = GibbsLooper::new(customer_losses_query(None), config)
        .run(&catalog)
        .unwrap();

    println!("E9: Figure 1 walkthrough (3 customers, p = 1/32, n = 4, m = 5)");
    println!(
        "{}",
        row(&[
            "iteration".into(),
            "cutoff".into(),
            "target quantile".into()
        ])
    );
    for (i, c) in result.cutoffs.iter().enumerate() {
        let level = 1.0 - (1.0f64 / 32.0).powf((i + 1) as f64 / 5.0);
        println!(
            "{}",
            row(&[
                (i + 1).to_string(),
                format!("{c:.3}"),
                format!("{level:.4}")
            ])
        );
    }
    println!("final tail samples: {:?}", result.tail_samples);
    let analytic = 12.0 + 3f64.sqrt() * std_normal_quantile(1.0 - 1.0 / 32.0);
    println!("analytic 1 - 1/32 quantile of the total loss: {analytic:.3}");
    println!(
        "estimated quantile: {:.3}   plan executions: {}   acceptance rate: {:.3}",
        result.quantile_estimate,
        result.plan_executions,
        result.gibbs.acceptance_rate()
    );
}
