//! Experiment E1 (Figure 5): empirical tail CDFs vs the analytic CDF.
//!
//! Runs MCDB-R `RUNS` times on the Appendix D workload (inverse-gamma
//! hyper-priors, skewed join fanout) with m = 5, p^(1/m) = 0.25, N, l = 100,
//! and prints each run's empirical tail CDF as CSV together with the analytic
//! conditional tail CDF computed from the workload's closed form.
//!
//! Scale is controlled by the first CLI argument: `test` (default, seconds),
//! `laptop` (minutes), or `paper` (the full 100k x 1M instance).

use mcdbr_bench::{appendix_d_config, run_tail_sampling};
use mcdbr_risk::TailCdfComparison;
use mcdbr_workloads::{TpchConfig, TpchWorkload};

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "test".into());
    let (config, runs, budget) = match scale.as_str() {
        "paper" => (TpchConfig::paper_scale(), 20, 1000),
        "laptop" => (TpchConfig::laptop_scale(), 20, 1000),
        _ => (TpchConfig::test_scale(), 5, 300),
    };
    let w = TpchWorkload::generate(config).expect("workload");
    let p = 0.25f64.powi(5);
    let true_q = w.oracle.quantile(1.0 - p);
    println!(
        "# E1 / Figure 5: {} orders, {} lineitems, p = {p:.6}",
        w.config.num_orders, w.config.num_lineitems
    );
    println!(
        "# analytic result distribution: mean {:.4e}, sd {:.4e}",
        w.oracle.mean,
        w.oracle.sd()
    );
    println!("# analytic (1-p)-quantile: {true_q:.6e}");
    println!("run,estimated_quantile,ks_distance,rel_error");
    let mut estimates = Vec::new();
    let mut csv_curves = String::new();
    for run in 0..runs {
        let cfg = appendix_d_config(budget, 9_000 + run as u64);
        let result = run_tail_sampling(&w.total_loss_query(), &w.catalog, cfg).expect("tail run");
        let cmp = TailCdfComparison::new(&w.oracle, p, &result.tail_samples).expect("compare");
        println!(
            "{run},{:.6e},{:.4},{:.5}",
            cmp.estimated_quantile,
            cmp.ks_distance,
            cmp.quantile_relative_error()
        );
        estimates.push(cmp.estimated_quantile);
        for (x, f) in cmp.empirical.points() {
            csv_curves.push_str(&format!("{run},{x:.6e},{f:.4}\n"));
        }
    }
    let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
    let std_err = (estimates
        .iter()
        .map(|e| (e - mean) * (e - mean))
        .sum::<f64>()
        / estimates.len() as f64)
        .sqrt();
    println!("# mean quantile estimate: {mean:.6e} (paper: 5.0728e5 at paper scale)");
    println!("# true quantile:          {true_q:.6e} (paper: 5.0738e5 at paper scale)");
    println!("# empirical std err:      {std_err:.3e} (paper: 265 at paper scale)");
    println!(
        "# middle-99% width:       {:.3e} (paper: ~2503 at paper scale)",
        w.oracle.central_interval_width(0.01)
    );
    println!("# tail CDF curves (run,x,F) follow:");
    print!("{csv_curves}");
}
