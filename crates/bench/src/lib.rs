//! Shared harness code for the MCDB-R experiment binaries and benches.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! experiment (see `DESIGN.md` §3 and `EXPERIMENTS.md`).  The binaries under
//! `src/bin/` regenerate them; this library holds the pieces they share so
//! the criterion benches and the experiment binaries measure exactly the same
//! code paths.

use std::sync::Arc;

use mcdbr_core::{GibbsLooper, TailSampleResult, TailSamplingConfig};
use mcdbr_exec::ExecBackend;
use mcdbr_mcdb::MonteCarloQuery;
use mcdbr_storage::{Catalog, Result};
use mcdbr_workloads::{TpchConfig, TpchWorkload};

/// The Appendix D looper parameterization (`m = 5`, `p^{1/m} = 0.25`,
/// `l = 100`) for a given budget `N` and master seed.
pub fn appendix_d_config(total_samples: usize, master_seed: u64) -> TailSamplingConfig {
    TailSamplingConfig::new(0.25f64.powi(5), 100, total_samples)
        .with_m(5)
        .with_block_size(1000)
        .with_master_seed(master_seed)
}

/// Run one MCDB-R tail-sampling pass over a workload.
pub fn run_tail_sampling(
    query: &MonteCarloQuery,
    catalog: &Catalog,
    config: TailSamplingConfig,
) -> Result<TailSampleResult> {
    GibbsLooper::new(query.clone(), config).run(catalog)
}

/// Run one MCDB-R tail-sampling pass on an explicit execution backend.
pub fn run_tail_sampling_on(
    query: &MonteCarloQuery,
    catalog: &Catalog,
    config: TailSamplingConfig,
    backend: Arc<dyn ExecBackend>,
) -> Result<TailSampleResult> {
    GibbsLooper::new(query.clone(), config)
        .with_backend(backend)
        .run(catalog)
}

/// Resolve the experiment binaries' `--backend {inprocess,sharded,process}`
/// flag (either `--backend name` or `--backend=name`) into a concrete
/// execution backend, replacing the old env-only selection.  Without the
/// flag, the environment default applies (`MCDBR_BACKEND` /
/// `MCDBR_SHARDS`, resolved through the dispatch crate so `process`
/// works).  `sharded` sizes by `MCDBR_SHARDS` (else `MCDBR_WORKERS`, else
/// 2); `process` sizes by `MCDBR_WORKERS`.
///
/// Returns `(label, backend, rest)` where `rest` holds the arguments the
/// flag did not consume (positional arguments like `exp_timing`'s scale),
/// so every experiment binary shares one parser; an unknown name exits
/// with usage help.
#[allow(clippy::type_complexity)]
pub fn backend_from_args(args: &[String]) -> (String, Arc<dyn ExecBackend>, Vec<String>) {
    let mut choice: Option<String> = None;
    let mut rest = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--backend" {
            choice = iter.next().cloned();
        } else if let Some(name) = arg.strip_prefix("--backend=") {
            choice = Some(name.to_string());
        } else {
            rest.push(arg.clone());
        }
    }
    let (label, backend): (String, Arc<dyn ExecBackend>) = match choice.as_deref() {
        None => {
            let backend = mcdbr_dispatch::default_backend();
            (format!("{} (env default)", backend.name()), backend)
        }
        Some("inprocess") | Some("in-process") => (
            "in-process".into(),
            Arc::new(mcdbr_exec::InProcessBackend::new()),
        ),
        Some("sharded") => {
            let shards = match mcdbr_exec::backend::default_shards() {
                n if n >= 2 => n,
                _ => mcdbr_exec::default_workers().max(2),
            };
            (
                format!("sharded ({shards} shards)"),
                Arc::new(mcdbr_exec::ShardedBackend::new(shards)),
            )
        }
        Some("process") => {
            let workers = mcdbr_exec::default_workers();
            (
                format!("process ({workers} workers)"),
                Arc::new(mcdbr_dispatch::ProcessBackend::new(workers)),
            )
        }
        Some(other) => {
            eprintln!("unknown --backend {other}; expected one of inprocess, sharded, process");
            std::process::exit(2);
        }
    };
    (label, backend, rest)
}

/// Generate the laptop-scale Appendix D workload (structure-preserving
/// downscale of the paper's 100 000 × 1 000 000 join; see DESIGN.md).
pub fn laptop_tpch() -> TpchWorkload {
    TpchWorkload::generate(TpchConfig::laptop_scale()).expect("workload generation")
}

/// Generate the tiny test-scale Appendix D workload (used by benches that
/// only need the code path, not the volume).
pub fn test_tpch() -> TpchWorkload {
    TpchWorkload::generate(TpchConfig::test_scale()).expect("workload generation")
}

/// Format a table row of `columns` with a fixed width, for the experiment
/// binaries' stdout reports.
pub fn row(columns: &[String]) -> String {
    columns
        .iter()
        .map(|c| format!("{c:>18}"))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_d_config_matches_the_paper() {
        let config = appendix_d_config(500, 1);
        let params = config.staged();
        assert_eq!(params.m, 5);
        assert!((params.p_per_step - 0.25).abs() < 1e-12);
        assert_eq!(config.l, 100);
    }

    #[test]
    fn tail_sampling_runs_on_the_test_workload() {
        let w = test_tpch();
        let config = TailSamplingConfig::new(0.05, 10, 100)
            .with_m(2)
            .with_block_size(200)
            .with_master_seed(3);
        let result = run_tail_sampling(&w.total_loss_query(), &w.catalog, config).unwrap();
        assert_eq!(result.tail_samples.len(), 10);
        // The tail must lie above the workload's analytic mean.
        assert!(result.quantile_estimate > w.oracle.mean);
    }

    #[test]
    fn row_formatting_is_fixed_width() {
        let r = row(&["a".into(), "bb".into()]);
        assert!(r.contains("a") && r.contains("bb"));
        assert!(r.len() >= 36);
    }
}
