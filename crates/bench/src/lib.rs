//! Shared harness code for the MCDB-R experiment binaries and benches.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! experiment (see `DESIGN.md` §3 and `EXPERIMENTS.md`).  The binaries under
//! `src/bin/` regenerate them; this library holds the pieces they share so
//! the criterion benches and the experiment binaries measure exactly the same
//! code paths.

use mcdbr_core::{GibbsLooper, TailSampleResult, TailSamplingConfig};
use mcdbr_mcdb::MonteCarloQuery;
use mcdbr_storage::{Catalog, Result};
use mcdbr_workloads::{TpchConfig, TpchWorkload};

/// The Appendix D looper parameterization (`m = 5`, `p^{1/m} = 0.25`,
/// `l = 100`) for a given budget `N` and master seed.
pub fn appendix_d_config(total_samples: usize, master_seed: u64) -> TailSamplingConfig {
    TailSamplingConfig::new(0.25f64.powi(5), 100, total_samples)
        .with_m(5)
        .with_block_size(1000)
        .with_master_seed(master_seed)
}

/// Run one MCDB-R tail-sampling pass over a workload.
pub fn run_tail_sampling(
    query: &MonteCarloQuery,
    catalog: &Catalog,
    config: TailSamplingConfig,
) -> Result<TailSampleResult> {
    GibbsLooper::new(query.clone(), config).run(catalog)
}

/// Generate the laptop-scale Appendix D workload (structure-preserving
/// downscale of the paper's 100 000 × 1 000 000 join; see DESIGN.md).
pub fn laptop_tpch() -> TpchWorkload {
    TpchWorkload::generate(TpchConfig::laptop_scale()).expect("workload generation")
}

/// Generate the tiny test-scale Appendix D workload (used by benches that
/// only need the code path, not the volume).
pub fn test_tpch() -> TpchWorkload {
    TpchWorkload::generate(TpchConfig::test_scale()).expect("workload generation")
}

/// Format a table row of `columns` with a fixed width, for the experiment
/// binaries' stdout reports.
pub fn row(columns: &[String]) -> String {
    columns
        .iter()
        .map(|c| format!("{c:>18}"))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_d_config_matches_the_paper() {
        let config = appendix_d_config(500, 1);
        let params = config.staged();
        assert_eq!(params.m, 5);
        assert!((params.p_per_step - 0.25).abs() < 1e-12);
        assert_eq!(config.l, 100);
    }

    #[test]
    fn tail_sampling_runs_on_the_test_workload() {
        let w = test_tpch();
        let config = TailSamplingConfig::new(0.05, 10, 100)
            .with_m(2)
            .with_block_size(200)
            .with_master_seed(3);
        let result = run_tail_sampling(&w.total_loss_query(), &w.catalog, config).unwrap();
        assert_eq!(result.tail_samples.len(), 10);
        // The tail must lie above the workload's analytic mean.
        assert!(result.quantile_estimate > w.oracle.mean);
    }

    #[test]
    fn row_formatting_is_fixed_width() {
        let r = row(&["a".into(), "bb".into()]);
        assert!(r.contains("a") && r.contains("bb"));
        assert!(r.len() >= 36);
    }
}
