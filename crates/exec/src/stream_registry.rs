//! The stream registry: from seed id to "how to generate this stream".
//!
//! Paper §4.1: every uncertain value (or correlated block of values) in the
//! database is backed by a stream of random data, identified by the PRNG seed
//! that produces it.  The registry records, for each seed, the VG function
//! and the parameter row that turn raw stream positions into data values.
//! Anything holding a registry can therefore (re)generate the value at *any*
//! stream position on demand — which is exactly what
//!
//! * naive MCDB needs to instantiate repetitions `0..n`,
//! * the Gibbs rejection sampler needs to "go to the stream whenever it needs
//!   a loss value" (§4.1), and
//! * the replenishment pass needs to regenerate already-assigned values and
//!   extend blocks without re-deriving parameters (§9).

use std::collections::BTreeMap;
use std::sync::Arc;

use mcdbr_prng::{RandomStream, SeedId, StreamKey};
use mcdbr_storage::{Error, Result, Tuple, Value};
use mcdbr_vg::VgFunction;

/// How to generate one stream: a VG function plus its bound parameter row.
///
/// Both fields are reference-counted so that cloning a source — which
/// happens once per stream every time a cached skeleton is bound to a new
/// master seed — shares rather than copies the parameter row.
#[derive(Debug, Clone)]
pub struct StreamSource {
    /// The VG function invoked at every stream position.
    pub vg: Arc<dyn VgFunction>,
    /// The parameter row bound from the parameter table (paper §2).
    pub params: Arc<[Value]>,
}

impl StreamSource {
    /// Generate the full VG output table at stream position `pos`.
    pub fn generate_at(&self, seed: SeedId, pos: u64) -> Result<Vec<Tuple>> {
        let mut gen = RandomStream::new(seed).generator_at(pos);
        self.vg.generate(&self.params, &mut gen)
    }
}

/// Registry of all streams referenced by a plan execution.
///
/// The seed → source map lives behind an `Arc` with copy-on-write mutation:
/// a registry is built once (executor / skeleton binding, where the `Arc` is
/// unique so `Arc::make_mut` never copies) and then cloned onto every
/// [`crate::bundle::BundleSet`] a session emits — for a plan with thousands
/// of streams, that clone used to allocate a tree node per handful of
/// entries *per materialized block*; now it is a refcount bump.
#[derive(Debug, Clone, Default)]
pub struct StreamRegistry {
    sources: Arc<BTreeMap<SeedId, StreamSource>>,
}

impl StreamRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        StreamRegistry::default()
    }

    /// Register a stream.  Registering the same seed twice is fine as long
    /// as callers keep seeds unique per uncertain tuple (the executor derives
    /// them with [`mcdbr_prng::seed_for`], which guarantees that).
    pub fn register(
        &mut self,
        seed: SeedId,
        vg: Arc<dyn VgFunction>,
        params: impl Into<Arc<[Value]>>,
    ) {
        Arc::make_mut(&mut self.sources).insert(
            seed,
            StreamSource {
                vg,
                params: params.into(),
            },
        );
    }

    /// Look up a stream source.
    pub fn source(&self, seed: SeedId) -> Result<&StreamSource> {
        self.sources
            .get(&seed)
            .ok_or_else(|| Error::Invalid(format!("unknown stream seed {seed}")))
    }

    /// Whether a seed is registered.
    pub fn contains(&self, seed: SeedId) -> bool {
        self.sources.contains_key(&seed)
    }

    /// Generate the full VG output table for `seed` at stream position `pos`.
    pub fn generate_at(&self, seed: SeedId, pos: u64) -> Result<Vec<Tuple>> {
        self.source(seed)?.generate_at(seed, pos)
    }

    /// Generate the scalar value `(vg_row, vg_col)` of the VG output for
    /// `seed` at stream position `pos`.
    pub fn value_at(&self, seed: SeedId, pos: u64, vg_row: usize, vg_col: usize) -> Result<Value> {
        let rows = self.generate_at(seed, pos)?;
        let row = rows.get(vg_row).ok_or_else(|| {
            Error::Invalid(format!(
                "stream {seed}: VG output has {} rows, wanted row {vg_row}",
                rows.len()
            ))
        })?;
        if vg_col >= row.arity() {
            return Err(Error::Invalid(format!(
                "stream {seed}: VG output has {} columns, wanted column {vg_col}",
                row.arity()
            )));
        }
        Ok(row.value(vg_col).clone())
    }

    /// Merge another registry into this one (used when a plan has several
    /// uncertain tables / Seed operators).
    pub fn merge(&mut self, other: StreamRegistry) {
        if self.is_empty() {
            // Common shape: merging into a fresh registry shares the map.
            self.sources = other.sources;
            return;
        }
        let theirs = Arc::try_unwrap(other.sources).unwrap_or_else(|arc| (*arc).clone());
        Arc::make_mut(&mut self.sources).extend(theirs);
    }

    /// All registered seeds, in increasing order (the order GibbsLooper
    /// iterates TS-seed handles in; paper §7).
    pub fn seeds(&self) -> impl Iterator<Item = SeedId> + '_ {
        self.sources.keys().copied()
    }

    /// Number of registered streams.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True if no streams are registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

/// The seed-independent counterpart of [`StreamRegistry`]: from stream *key*
/// (`(table_tag, row)` lineage, [`mcdbr_prng::StreamKey`]) to generation
/// recipe.
///
/// A plan's deterministic skeleton registers streams by key, not by concrete
/// PRNG seed, because the recipe — VG function plus bound parameter row — is
/// a function of the plan and the catalog only.  Binding the registry to a
/// master seed ([`SkeletonRegistry::bind`]) derives every concrete
/// [`SeedId`] via [`mcdbr_prng::seed_for`] without touching the catalog,
/// which is what lets one cached skeleton serve sessions for any number of
/// master seeds.
#[derive(Debug, Clone, Default)]
pub struct SkeletonRegistry {
    sources: BTreeMap<StreamKey, StreamSource>,
}

impl SkeletonRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        SkeletonRegistry::default()
    }

    /// Register a stream by key.  Registering the same key twice (a plan
    /// reusing one uncertain table, e.g. a self-join) keeps the latest
    /// recipe; by construction both registrations carry identical recipes.
    pub fn register(
        &mut self,
        key: StreamKey,
        vg: Arc<dyn VgFunction>,
        params: impl Into<Arc<[Value]>>,
    ) {
        self.sources.insert(
            key,
            StreamSource {
                vg,
                params: params.into(),
            },
        );
    }

    /// Look up a stream's generation recipe.
    pub fn source(&self, key: StreamKey) -> Result<&StreamSource> {
        self.sources
            .get(&key)
            .ok_or_else(|| Error::Invalid(format!("unknown stream key {key}")))
    }

    /// All registered keys, in increasing `(table_tag, row)` order.
    pub fn keys(&self) -> impl Iterator<Item = StreamKey> + '_ {
        self.sources.keys().copied()
    }

    /// Number of registered streams.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True if no streams are registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Bind every key to its concrete seed under `master_seed`, producing the
    /// seed-addressed [`StreamRegistry`] carried by every emitted
    /// [`crate::bundle::BundleSet`].  (Individual seeds are pure functions of
    /// `(master_seed, key)` — [`StreamKey::bind`] — so no key → seed map is
    /// needed.)
    ///
    /// This is the whole per-seed cost of re-using a cached plan skeleton: a
    /// [`mcdbr_prng::seed_for`] mix plus two reference-count bumps per stream
    /// (sources share their VG and parameter row) — no catalog reads, no VG
    /// probes, no parameter copies.
    pub fn bind(&self, master_seed: u64) -> StreamRegistry {
        let mut registry = StreamRegistry::new();
        for (key, source) in &self.sources {
            registry.register(
                key.bind(master_seed),
                source.vg.clone(),
                source.params.clone(),
            );
        }
        registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_vg::{MultiNormalVg, NormalVg};

    fn normal_params(mean: f64) -> Vec<Value> {
        vec![Value::Float64(mean), Value::Float64(1.0)]
    }

    #[test]
    fn register_and_generate() {
        let mut reg = StreamRegistry::new();
        reg.register(7, Arc::new(NormalVg), normal_params(3.0));
        assert!(reg.contains(7));
        assert!(!reg.contains(8));
        assert_eq!(reg.len(), 1);
        let v = reg.value_at(7, 0, 0, 0).unwrap();
        assert!(v.as_f64().unwrap().is_finite());
        assert!(reg.value_at(8, 0, 0, 0).is_err());
    }

    #[test]
    fn generation_is_deterministic_and_position_addressable() {
        let mut reg = StreamRegistry::new();
        reg.register(42, Arc::new(NormalVg), normal_params(5.0));
        let a = reg.value_at(42, 3, 0, 0).unwrap();
        let b = reg.value_at(42, 3, 0, 0).unwrap();
        let c = reg.value_at(42, 4, 0, 0).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn out_of_range_rows_and_cols_error() {
        let mut reg = StreamRegistry::new();
        reg.register(1, Arc::new(NormalVg), normal_params(0.0));
        assert!(reg.value_at(1, 0, 1, 0).is_err());
        assert!(reg.value_at(1, 0, 0, 5).is_err());
    }

    #[test]
    fn multi_row_vg_outputs_are_addressable() {
        let mut reg = StreamRegistry::new();
        reg.register(
            9,
            Arc::new(MultiNormalVg::new(3, 0.5)),
            vec![Value::Float64(0.0), Value::Float64(1.0)],
        );
        let rows = reg.generate_at(9, 0).unwrap();
        assert_eq!(rows.len(), 3);
        // Row index is in column 0; the value in column 1.
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.value(0).as_i64().unwrap(), i as i64);
            assert_eq!(reg.value_at(9, 0, i, 1).unwrap(), row.value(1).clone());
        }
    }

    #[test]
    fn skeleton_registry_binding_matches_seed_derivation() {
        let mut skel = SkeletonRegistry::new();
        skel.register(StreamKey::new(1, 0), Arc::new(NormalVg), normal_params(3.0));
        skel.register(StreamKey::new(1, 1), Arc::new(NormalVg), normal_params(4.0));
        assert_eq!(skel.len(), 2);
        assert!(!skel.is_empty());
        assert!(skel.source(StreamKey::new(2, 0)).is_err());

        let registry = skel.bind(42);
        assert_eq!(registry.len(), 2);
        for key in skel.keys() {
            let seed = key.bind(42);
            assert!(registry.contains(seed));
            // The bound registry generates exactly what the recipe says.
            assert_eq!(
                registry.generate_at(seed, 7).unwrap(),
                skel.source(key).unwrap().generate_at(seed, 7).unwrap()
            );
        }
        // A different master gives disjoint seeds for the same keys.
        let other = skel.bind(43);
        assert_eq!(other.len(), 2);
        assert!(skel.keys().all(|k| !registry.contains(k.bind(43))));
        assert!(skel.keys().all(|k| !other.contains(k.bind(42))));
    }

    #[test]
    fn merge_combines_sources() {
        let mut a = StreamRegistry::new();
        a.register(1, Arc::new(NormalVg), normal_params(1.0));
        let mut b = StreamRegistry::new();
        b.register(2, Arc::new(NormalVg), normal_params(2.0));
        a.merge(b);
        assert_eq!(a.seeds().collect::<Vec<_>>(), vec![1, 2]);
        assert!(!a.is_empty());
    }
}
