//! Per-repetition aggregation over a [`BundleSet`].
//!
//! An MCDB query result is not a single number but one number per generated
//! DB instance (paper §1).  This module evaluates an aggregation query over a
//! bundle set once per Monte Carlo repetition, producing the vector of
//! query-result samples that the `mcdbr-mcdb` result-distribution machinery
//! (and, at smaller granularity, the Gibbs Looper) consumes.
//!
//! Grouping follows paper Appendix A footnote 4: "Grouping is handled by, in
//! effect, treating a GROUP BY query over g groups as g separate,
//! simultaneous queries" — group keys must therefore be deterministic
//! (constant) attributes.

use mcdbr_storage::{Error, Mask, Result, Schema, SelVec, Value};

use crate::bundle::{BundleSet, BundleValue};
use crate::expr::Expr;
use crate::kernels::{self, Lane, NumVals};
use crate::par;

/// Aggregate functions supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of the aggregand (0.0 over an empty group instance).
    Sum,
    /// Count of contributing tuples.
    Count,
    /// Average of the aggregand (NaN over an empty group instance).
    Avg,
    /// Minimum of the aggregand (NaN over an empty group instance).
    Min,
    /// Maximum of the aggregand (NaN over an empty group instance).
    Max,
}

/// An aggregate to compute: `func(expr) AS alias`.
#[derive(Debug, Clone)]
pub struct AggregateSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregand, e.g. `val` or `sal2 - sal1`.
    pub expr: Expr,
    /// Output name, e.g. `totalLoss`.
    pub alias: String,
}

impl AggregateSpec {
    /// `SUM(expr) AS alias`
    pub fn sum(expr: Expr, alias: impl Into<String>) -> Self {
        AggregateSpec {
            func: AggFunc::Sum,
            expr,
            alias: alias.into(),
        }
    }

    /// `COUNT(*) AS alias`
    pub fn count(alias: impl Into<String>) -> Self {
        AggregateSpec {
            func: AggFunc::Count,
            expr: Expr::lit(1i64),
            alias: alias.into(),
        }
    }

    /// `AVG(expr) AS alias`
    pub fn avg(expr: Expr, alias: impl Into<String>) -> Self {
        AggregateSpec {
            func: AggFunc::Avg,
            expr,
            alias: alias.into(),
        }
    }

    /// `MIN(expr) AS alias`
    pub fn min(expr: Expr, alias: impl Into<String>) -> Self {
        AggregateSpec {
            func: AggFunc::Min,
            expr,
            alias: alias.into(),
        }
    }

    /// `MAX(expr) AS alias`
    pub fn max(expr: Expr, alias: impl Into<String>) -> Self {
        AggregateSpec {
            func: AggFunc::Max,
            expr,
            alias: alias.into(),
        }
    }
}

/// Query-result samples: for each group, one aggregate value per repetition.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResultSamples {
    /// Names of the grouping columns (empty for an ungrouped query).
    pub group_columns: Vec<String>,
    /// `(group key, per-repetition aggregate values)` pairs, in first-seen
    /// group order.  Ungrouped queries have exactly one entry with an empty
    /// key.
    pub groups: Vec<(Vec<Value>, Vec<f64>)>,
}

impl QueryResultSamples {
    /// The per-repetition samples of an ungrouped query.
    pub fn single(&self) -> Result<&[f64]> {
        if self.groups.len() == 1 {
            Ok(&self.groups[0].1)
        } else {
            Err(Error::InvalidOperation(format!(
                "expected a single group, found {}",
                self.groups.len()
            )))
        }
    }

    /// The samples for a specific group key.
    pub fn group(&self, key: &[Value]) -> Option<&[f64]> {
        self.groups
            .iter()
            .find(|(k, _)| k.len() == key.len() && k.iter().zip(key).all(|(a, b)| a.sql_eq(b)))
            .map(|(_, v)| v.as_slice())
    }
}

/// Evaluate `agg` over `set`, once per repetition.
///
/// `final_predicate` is an optional extra selection applied per repetition
/// before a tuple contributes to the aggregate — this mirrors the selection
/// predicate that MCDB-R pulls up into the GibbsLooper (paper Appendix A,
/// input 3), and lets the naive-MCDB baseline execute exactly the same query
/// specification.
pub fn evaluate_aggregate(
    set: &BundleSet,
    agg: &AggregateSpec,
    group_by: &[String],
    final_predicate: Option<&Expr>,
) -> Result<QueryResultSamples> {
    evaluate_aggregate_threads(set, agg, group_by, final_predicate, par::default_threads())
}

/// [`evaluate_aggregate`] with an explicit worker-thread count.  Repetitions
/// are independent, and bundle order within a repetition is preserved, so
/// the result is bit-identical for every thread count.
pub fn evaluate_aggregate_threads(
    set: &BundleSet,
    agg: &AggregateSpec,
    group_by: &[String],
    final_predicate: Option<&Expr>,
    threads: usize,
) -> Result<QueryResultSamples> {
    let layout = GroupLayout::discover(set, group_by)?;
    let per_rep = accumulate_all(set, &layout, agg, final_predicate, threads)?;
    Ok(layout.finish(per_rep, agg.func, group_by))
}

/// Every repetition's accumulators, fanned out across `threads`.  The
/// vectorized plan partitions repetitions into balanced contiguous ranges
/// and sweeps bundles column-at-a-time within each; the scalar fallback
/// fans out per repetition.  Within a repetition bundles are visited in set
/// order either way, so floating-point accumulation order (and hence every
/// bit of the result) is independent of the thread count and of which path
/// ran.
fn accumulate_all(
    set: &BundleSet,
    layout: &GroupLayout,
    agg: &AggregateSpec,
    final_predicate: Option<&Expr>,
    threads: usize,
) -> Result<Vec<Vec<Accum>>> {
    if let Some(plan) = compile_plan(set, layout, agg, final_predicate) {
        let mut ranges: Vec<std::ops::Range<usize>> = Vec::new();
        let mut lo = 0usize;
        for len in mcdbr_prng::balanced_chunks(set.num_reps, threads.max(1)) {
            ranges.push(lo..lo + len);
            lo += len;
        }
        let chunks: Vec<Vec<Vec<Accum>>> = par::try_par_map_threads(&ranges, threads, |range| {
            Ok(accumulate_range(&plan, range.start, range.end))
        })?;
        return Ok(chunks.into_iter().flatten().collect());
    }
    let reps: Vec<usize> = (0..set.num_reps).collect();
    par::try_par_map_threads(&reps, threads, |&rep| {
        accumulate_rep(set, layout, agg, final_predicate, rep)
    })
}

/// The sharded-partials variant behind
/// [`crate::shard::ShardedBackend::aggregate`]: repetitions are partitioned
/// into at most `shards` contiguous ranges, each range becomes one aggregate
/// partial (computed concurrently, up to `threads` at a time), and partials
/// merge back in repetition order.
///
/// Shards partition **repetitions**, not bundles, because the accumulation
/// order over bundles *within* a repetition is the floating-point
/// bit-identity contract: a repetition's fold must happen wholly inside one
/// shard.  Since every repetition is computed by exactly one partial and
/// partials concatenate in order, the result is bit-identical to
/// [`evaluate_aggregate_threads`] for every shard count.
///
/// Returns `(samples, partials spawned, merge nanoseconds)` so the backend
/// can account its sharding activity.
pub(crate) fn evaluate_aggregate_partials(
    set: &BundleSet,
    agg: &AggregateSpec,
    group_by: &[String],
    final_predicate: Option<&Expr>,
    shards: usize,
    threads: usize,
) -> Result<(QueryResultSamples, usize, u64)> {
    let layout = GroupLayout::discover(set, group_by)?;

    // Balanced ranges (sizes differ by at most one), sharing the stream-key
    // partitioner's balancing rule: exactly min(shards, n) partials, so no
    // worker slot idles behind an oversized ceil-division chunk.
    let n = set.num_reps;
    let lens = mcdbr_prng::balanced_chunks(n, shards);
    let mut ranges: Vec<std::ops::Range<usize>> = Vec::with_capacity(lens.len());
    let mut lo = 0usize;
    for len in lens {
        ranges.push(lo..lo + len);
        lo += len;
    }
    let spawned = ranges.len();

    let plan = compile_plan(set, &layout, agg, final_predicate);
    let partials: Vec<Vec<Vec<Accum>>> = par::try_par_map_threads(&ranges, threads, |range| {
        if let Some(plan) = &plan {
            return Ok(accumulate_range(plan, range.start, range.end));
        }
        range
            .clone()
            .map(|rep| accumulate_rep(set, &layout, agg, final_predicate, rep))
            .collect::<Result<Vec<Vec<Accum>>>>()
    })?;

    // Only the partial concatenation is merge overhead; building the result
    // groups (`finish`) is work the unsharded path performs identically, so
    // timing it here would overstate the cost of sharding.
    let merge_start = std::time::Instant::now();
    let per_rep: Vec<Vec<Accum>> = partials.into_iter().flatten().collect();
    let merge_ns = merge_start.elapsed().as_nanos() as u64;
    let samples = layout.finish(per_rep, agg.func, group_by);
    Ok((samples, spawned, merge_ns))
}

/// One contiguous repetition range's accumulators, produced by
/// [`aggregate_rep_range`] and merged by [`merge_rep_partials`] — the unit
/// an *external* scheduler (e.g. `mcdbr-server`'s fair scheduler, which
/// interleaves work from concurrent queries) fans aggregation out by.
/// Opaque: the accumulator layout is this module's private contract.
#[derive(Debug)]
pub struct AggPartial {
    lo: usize,
    accs: Vec<Vec<Accum>>,
}

impl AggPartial {
    /// First repetition of the range this partial covers.
    pub fn start(&self) -> usize {
        self.lo
    }

    /// Number of repetitions this partial covers.
    pub fn len(&self) -> usize {
        self.accs.len()
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.accs.is_empty()
    }
}

/// Aggregate the contiguous repetition range `lo..hi` of `set` into one
/// [`AggPartial`].
///
/// The group layout is discovered over the **full** set (first-seen bundle
/// order), never over the range, so layout — and with it every group index
/// — is identical across ranges: any decomposition of `0..num_reps` into
/// contiguous ranges, merged back in order by [`merge_rep_partials`], is
/// bit-identical to [`evaluate_aggregate_threads`].  `hi` is clamped to the
/// set's repetition count, `lo` to `hi`.
pub fn aggregate_rep_range(
    set: &BundleSet,
    agg: &AggregateSpec,
    group_by: &[String],
    final_predicate: Option<&Expr>,
    lo: usize,
    hi: usize,
) -> Result<AggPartial> {
    let layout = GroupLayout::discover(set, group_by)?;
    let hi = hi.min(set.num_reps);
    let lo = lo.min(hi);
    let accs = if let Some(plan) = compile_plan(set, &layout, agg, final_predicate) {
        accumulate_range(&plan, lo, hi)
    } else {
        (lo..hi)
            .map(|rep| accumulate_rep(set, &layout, agg, final_predicate, rep))
            .collect::<Result<Vec<Vec<Accum>>>>()?
    };
    Ok(AggPartial { lo, accs })
}

/// Merge rep-range partials back into the per-group sample matrix.  The
/// partials must exactly tile `0..set.num_reps` (any order — they are
/// sorted by range start here); gaps, overlaps, or missing repetitions are
/// an error rather than a silently wrong result.
pub fn merge_rep_partials(
    set: &BundleSet,
    agg: &AggregateSpec,
    group_by: &[String],
    mut partials: Vec<AggPartial>,
) -> Result<QueryResultSamples> {
    let layout = GroupLayout::discover(set, group_by)?;
    partials.sort_by_key(|p| p.lo);
    let mut per_rep: Vec<Vec<Accum>> = Vec::with_capacity(set.num_reps);
    let mut next = 0usize;
    for partial in partials {
        if partial.lo != next {
            return Err(Error::Invalid(format!(
                "aggregate partials do not tile the repetitions: expected start {next}, got {}",
                partial.lo
            )));
        }
        next += partial.accs.len();
        per_rep.extend(partial.accs);
    }
    if next != set.num_reps {
        return Err(Error::Invalid(format!(
            "aggregate partials cover {next} of {} repetitions",
            set.num_reps
        )));
    }
    Ok(layout.finish(per_rep, agg.func, group_by))
}

/// The group structure of a bundle set: every distinct key in first-seen
/// order plus each bundle's group assignment.  Shared by the thread fan-out
/// and the sharded-partials path so both resolve groups identically.
struct GroupLayout {
    keys: Vec<Vec<Value>>,
    key_of_bundle: Vec<usize>,
}

impl GroupLayout {
    fn discover(set: &BundleSet, group_by: &[String]) -> Result<GroupLayout> {
        let schema = &set.schema;
        let group_idx: Vec<usize> = group_by
            .iter()
            .map(|g| schema.index_of(g))
            .collect::<Result<_>>()?;

        // Group keys must be deterministic.
        for bundle in &set.bundles {
            for &gi in &group_idx {
                if !bundle.values[gi].is_const() {
                    return Err(Error::InvalidOperation(format!(
                        "group-by column {} is a random attribute; grouping keys must be \
                         deterministic (paper App. A, fn. 4)",
                        schema.field(gi).name
                    )));
                }
            }
        }

        // Discover groups in first-seen order.
        let mut keys: Vec<Vec<Value>> = Vec::new();
        let mut key_of_bundle: Vec<usize> = Vec::with_capacity(set.bundles.len());
        for bundle in &set.bundles {
            let key: Vec<Value> = group_idx
                .iter()
                .map(|&gi| bundle.values[gi].value_at(0).clone())
                .collect();
            let pos = keys
                .iter()
                .position(|k| k.len() == key.len() && k.iter().zip(&key).all(|(a, b)| a.sql_eq(b)));
            let idx = match pos {
                Some(i) => i,
                None => {
                    keys.push(key.clone());
                    keys.len() - 1
                }
            };
            key_of_bundle.push(idx);
        }
        if keys.is_empty() {
            // No bundles at all: an ungrouped query still has one (empty) group.
            if group_idx.is_empty() {
                keys.push(Vec::new());
            }
        }
        Ok(GroupLayout {
            keys,
            key_of_bundle,
        })
    }

    fn finish(
        self,
        per_rep: Vec<Vec<Accum>>,
        func: AggFunc,
        group_by: &[String],
    ) -> QueryResultSamples {
        let groups = self
            .keys
            .into_iter()
            .enumerate()
            .map(|(gidx, key)| {
                (
                    key,
                    per_rep.iter().map(|accs| accs[gidx].finish(func)).collect(),
                )
            })
            .collect();
        QueryResultSamples {
            group_columns: group_by.to_vec(),
            groups,
        }
    }
}

/// A pre-compiled columnar aggregation plan: per bundle, the aggregand
/// evaluated across every repetition plus the selection vector of
/// contributing repetitions (presence ∧ final predicate).  Compilation
/// declines — whole-set scalar fallback — whenever any bundle leaves the
/// vectorized subset (multi-segment chain, non-compilable expression,
/// [`kernels::KernelMode::ForceScalar`]), so the plan is bit-identical to
/// the scalar loop wherever it engages.
struct AggPlan {
    bundles: Vec<PlanBundle>,
    num_groups: usize,
}

struct PlanBundle {
    gidx: usize,
    vals: NumVals,
    sel: SelVec,
}

fn compile_plan(
    set: &BundleSet,
    layout: &GroupLayout,
    agg: &AggregateSpec,
    final_predicate: Option<&Expr>,
) -> Option<AggPlan> {
    if !kernels::vectorized_enabled() {
        return None;
    }
    let schema = &set.schema;
    let n = set.num_reps;
    let mut bundles = Vec::with_capacity(set.bundles.len());
    for (bundle, &gidx) in set.bundles.iter().zip(&layout.key_of_bundle) {
        // Every attribute must be a broadcast constant or expose a single
        // contiguous column segment of exactly `n` repetitions to become an
        // expression lane (replenished chains are longer and multi-segment;
        // the scalar loop handles those).
        let mut lanes: Vec<Lane<'_>> = Vec::with_capacity(bundle.values.len());
        for v in &bundle.values {
            lanes.push(match v {
                BundleValue::Const(c) => Lane::Const(c),
                chained => {
                    let seg = chained.chain()?.as_single()?;
                    if seg.len() != n {
                        return None;
                    }
                    Lane::Col(seg)
                }
            });
        }
        let vals = kernels::numeric_values(&agg.expr, schema, &lanes, n)?;
        let mut keep = match &bundle.is_pres {
            None => Mask::ones(n),
            Some(flags) => {
                // Out-of-range repetitions count as absent, matching
                // `TupleBundle::is_present`.
                let mut m = Mask::zeros(n);
                for (i, &f) in flags.iter().take(n).enumerate() {
                    if f {
                        m.set(i, true);
                    }
                }
                m
            }
        };
        if let Some(pred) = final_predicate {
            let pm = kernels::predicate_mask(pred, schema, &lanes, n)?;
            keep.and_assign(&pm);
        }
        bundles.push(PlanBundle {
            gidx,
            vals,
            sel: SelVec::from_mask(&keep),
        });
    }
    Some(AggPlan {
        bundles,
        num_groups: layout.keys.len(),
    })
}

/// Accumulate the contiguous repetition range `lo..hi` column-at-a-time:
/// bundles in the outer loop (set order), each bundle's selection vector
/// sliced to the range in the inner loop.  Per `(repetition, group)`
/// accumulator the `add` calls arrive in exactly the scalar path's bundle
/// order over exactly the same `f64`s, so the result is bit-identical to
/// [`accumulate_rep`] over the same range.
fn accumulate_range(plan: &AggPlan, lo: usize, hi: usize) -> Vec<Vec<Accum>> {
    let mut accs = vec![vec![Accum::default(); plan.num_groups]; hi - lo];
    for b in &plan.bundles {
        let reps = b.sel.slice_in_range(lo, hi);
        match &b.vals {
            NumVals::Const(c) => {
                for &rep in reps {
                    accs[rep as usize - lo][b.gidx].add(*c);
                }
            }
            NumVals::Col(v) => {
                for &rep in reps {
                    accs[rep as usize - lo][b.gidx].add(v[rep as usize]);
                }
            }
        }
    }
    accs
}

/// Accumulate one repetition's aggregates over every group, visiting bundles
/// in set order (the floating-point contract both parallel paths share).
fn accumulate_rep(
    set: &BundleSet,
    layout: &GroupLayout,
    agg: &AggregateSpec,
    final_predicate: Option<&Expr>,
    rep: usize,
) -> Result<Vec<Accum>> {
    let schema = &set.schema;
    let mut accs = vec![Accum::default(); layout.keys.len()];
    // One scratch row serves every bundle of this repetition: the bundle
    // columns are read in place and cloned into the buffer (scalar copies /
    // string refcount bumps), never into a fresh per-bundle Vec.
    let mut row: Vec<Value> = Vec::with_capacity(schema.len());
    for (bundle, &gidx) in set.bundles.iter().zip(&layout.key_of_bundle) {
        if !bundle.is_present(rep) {
            continue;
        }
        bundle.write_row_into(rep, &mut row);
        if let Some(pred) = final_predicate {
            if !pred.eval_bool(schema, &row)? {
                continue;
            }
        }
        accs[gidx].add(agg.expr.eval_f64(schema, &row)?);
    }
    Ok(accs)
}

/// Evaluate the aggregate for one repetition over explicit rows — used by the
/// naive (non-bundled) engine in `mcdbr-mcdb` so that both engines share
/// exactly the same aggregation semantics.
pub fn aggregate_rows(
    schema: &Schema,
    rows: &[Vec<Value>],
    agg: &AggregateSpec,
    final_predicate: Option<&Expr>,
) -> Result<f64> {
    let mut acc = Accum::default();
    for row in rows {
        if let Some(pred) = final_predicate {
            if !pred.eval_bool(schema, row)? {
                continue;
            }
        }
        acc.add(agg.expr.eval_f64(schema, row)?);
    }
    Ok(acc.finish(agg.func))
}

/// Streaming accumulator shared by every aggregate function.
#[derive(Debug, Clone, Copy, Default)]
struct Accum {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accum {
    fn add(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
    }

    fn finish(self, func: AggFunc) -> f64 {
        match func {
            AggFunc::Sum => self.sum,
            AggFunc::Count => self.count as f64,
            AggFunc::Avg => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.sum / self.count as f64
                }
            }
            AggFunc::Min => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.min
                }
            }
            AggFunc::Max => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.max
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{BundleValue, TupleBundle};
    use crate::stream_registry::StreamRegistry;
    use mcdbr_storage::{Field, Schema};

    /// Build a small bundle set by hand: three "customers" with known
    /// per-repetition losses and a deterministic region.
    fn test_set() -> BundleSet {
        let schema = Schema::new(vec![Field::utf8("region"), Field::float64("loss")]);
        let mk = |region: &str, seed: u64, vals: Vec<f64>| TupleBundle {
            values: vec![
                BundleValue::Const(Value::str(region)),
                BundleValue::Random {
                    seed,
                    vg_row: 0,
                    vg_col: 0,
                    base_pos: 0,
                    values: crate::bundle::ValueChain::from_f64s(vals),
                },
            ],
            is_pres: None,
        };
        BundleSet {
            schema,
            bundles: vec![
                mk("EU", 1, vec![1.0, 2.0, 3.0]),
                mk("EU", 2, vec![10.0, 20.0, 30.0]),
                mk("US", 3, vec![100.0, 200.0, 300.0]),
            ],
            registry: StreamRegistry::new(),
            num_reps: 3,
        }
    }

    #[test]
    fn ungrouped_sum_per_repetition() {
        let set = test_set();
        let agg = AggregateSpec::sum(Expr::col("loss"), "totalLoss");
        let res = evaluate_aggregate(&set, &agg, &[], None).unwrap();
        assert_eq!(res.single().unwrap(), &[111.0, 222.0, 333.0]);
    }

    #[test]
    fn grouped_aggregates() {
        let set = test_set();
        let agg = AggregateSpec::sum(Expr::col("loss"), "totalLoss");
        let res = evaluate_aggregate(&set, &agg, &["region".to_string()], None).unwrap();
        assert_eq!(res.groups.len(), 2);
        assert_eq!(res.group(&[Value::str("EU")]).unwrap(), &[11.0, 22.0, 33.0]);
        assert_eq!(
            res.group(&[Value::str("US")]).unwrap(),
            &[100.0, 200.0, 300.0]
        );
        assert!(res.group(&[Value::str("APAC")]).is_none());
        assert!(res.single().is_err());
    }

    #[test]
    fn count_avg_min_max() {
        let set = test_set();
        let count = evaluate_aggregate(&set, &AggregateSpec::count("n"), &[], None).unwrap();
        assert_eq!(count.single().unwrap(), &[3.0, 3.0, 3.0]);
        let avg = evaluate_aggregate(&set, &AggregateSpec::avg(Expr::col("loss"), "a"), &[], None)
            .unwrap();
        assert_eq!(avg.single().unwrap(), &[37.0, 74.0, 111.0]);
        let min = evaluate_aggregate(&set, &AggregateSpec::min(Expr::col("loss"), "m"), &[], None)
            .unwrap();
        assert_eq!(min.single().unwrap(), &[1.0, 2.0, 3.0]);
        let max = evaluate_aggregate(&set, &AggregateSpec::max(Expr::col("loss"), "M"), &[], None)
            .unwrap();
        assert_eq!(max.single().unwrap(), &[100.0, 200.0, 300.0]);
    }

    #[test]
    fn final_predicate_restricts_contributions() {
        let set = test_set();
        let agg = AggregateSpec::sum(Expr::col("loss"), "totalLoss");
        let pred = Expr::col("loss").gt_eq(Expr::lit(10.0));
        let res = evaluate_aggregate(&set, &agg, &[], Some(&pred)).unwrap();
        assert_eq!(res.single().unwrap(), &[110.0, 220.0, 330.0]);
    }

    #[test]
    fn presence_masks_exclude_tuples() {
        let mut set = test_set();
        set.bundles[2].restrict_presence(&[true, false, true]);
        let agg = AggregateSpec::sum(Expr::col("loss"), "totalLoss");
        let res = evaluate_aggregate(&set, &agg, &[], None).unwrap();
        assert_eq!(res.single().unwrap(), &[111.0, 22.0, 333.0]);
    }

    #[test]
    fn empty_instances_follow_sql_conventions() {
        let mut set = test_set();
        for b in &mut set.bundles {
            b.restrict_presence(&[false, true, true]);
        }
        let sum = evaluate_aggregate(&set, &AggregateSpec::sum(Expr::col("loss"), "s"), &[], None)
            .unwrap();
        assert_eq!(sum.single().unwrap()[0], 0.0);
        let avg = evaluate_aggregate(&set, &AggregateSpec::avg(Expr::col("loss"), "a"), &[], None)
            .unwrap();
        assert!(avg.single().unwrap()[0].is_nan());
        let count = evaluate_aggregate(&set, &AggregateSpec::count("n"), &[], None).unwrap();
        assert_eq!(count.single().unwrap()[0], 0.0);
    }

    #[test]
    fn grouping_on_random_attribute_is_rejected() {
        let set = test_set();
        let agg = AggregateSpec::sum(Expr::col("loss"), "s");
        assert!(evaluate_aggregate(&set, &agg, &["loss".to_string()], None).is_err());
        assert!(evaluate_aggregate(&set, &agg, &["missing".to_string()], None).is_err());
    }

    #[test]
    fn expression_aggregands() {
        // SUM(2*loss + 1) — exercised because the salary-inversion query
        // aggregates an expression over two attributes.
        let set = test_set();
        let agg = AggregateSpec::sum(
            Expr::col("loss").mul(Expr::lit(2.0)).add(Expr::lit(1.0)),
            "s",
        );
        let res = evaluate_aggregate(&set, &agg, &[], None).unwrap();
        assert_eq!(res.single().unwrap(), &[225.0, 447.0, 669.0]);
    }

    #[test]
    fn sharded_partials_are_bit_identical_for_every_shard_count() {
        let set = test_set();
        let group = vec!["region".to_string()];
        for agg in [
            AggregateSpec::sum(Expr::col("loss"), "s"),
            AggregateSpec::avg(Expr::col("loss"), "a"),
            AggregateSpec::min(Expr::col("loss"), "m"),
        ] {
            let reference = evaluate_aggregate_threads(&set, &agg, &group, None, 1).unwrap();
            for shards in [1usize, 2, 3, 7] {
                let (sharded, spawned, _merge_ns) =
                    evaluate_aggregate_partials(&set, &agg, &group, None, shards, 2).unwrap();
                // 3 repetitions: never more partials than repetitions.
                assert_eq!(spawned, shards.min(3));
                assert_eq!(reference.group_columns, sharded.group_columns);
                for ((ka, va), (kb, vb)) in reference.groups.iter().zip(&sharded.groups) {
                    assert_eq!(ka, kb);
                    assert!(va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits()));
                }
            }
        }
    }

    #[test]
    fn sharded_partials_handle_empty_repetitions() {
        let mut set = test_set();
        set.num_reps = 0;
        for b in &mut set.bundles {
            if let BundleValue::Random { values, .. } = &mut b.values[1] {
                *values = crate::bundle::ValueChain::new();
            }
        }
        let agg = AggregateSpec::sum(Expr::col("loss"), "s");
        let (res, spawned, _) = evaluate_aggregate_partials(&set, &agg, &[], None, 4, 2).unwrap();
        assert_eq!(spawned, 0);
        assert_eq!(res.single().unwrap(), &[] as &[f64]);
    }

    #[test]
    fn aggregate_rows_matches_bundle_path() {
        let set = test_set();
        let agg = AggregateSpec::sum(Expr::col("loss"), "s");
        // Repetition 1 materialized as plain rows.
        let rows: Vec<Vec<Value>> = set.bundles.iter().map(|b| b.row_at(1)).collect();
        let direct = aggregate_rows(&set.schema, &rows, &agg, None).unwrap();
        let bundled = evaluate_aggregate(&set, &agg, &[], None).unwrap();
        assert_eq!(direct, bundled.single().unwrap()[1]);
    }

    #[test]
    fn empty_bundle_set_gives_single_empty_group() {
        let set = BundleSet {
            schema: Schema::new(vec![Field::float64("x")]),
            bundles: vec![],
            registry: StreamRegistry::new(),
            num_reps: 4,
        };
        let res =
            evaluate_aggregate(&set, &AggregateSpec::sum(Expr::col("x"), "s"), &[], None).unwrap();
        assert_eq!(res.single().unwrap(), &[0.0, 0.0, 0.0, 0.0]);
    }
}
