//! Shard-partitioned phase-2 execution: `PlanSkeleton + seed + StreamKey
//! range` is a complete description of a slice of a block's work.
//!
//! The in-process fan-out (`crate::par`) scales phase 2 across the threads
//! of one process; this module makes the *unit of distribution* explicit so
//! the same work can scale across processes.  A [`ShardTask`] carries
//! everything a worker needs:
//!
//! * a reference to the seed-independent [`PlanSkeleton`] (in-process an
//!   `Arc`; across processes the skeleton is re-derivable from the plan and
//!   catalog, or shippable by its `(plan fingerprint, catalog epoch)` cache
//!   key — every other field is plain data),
//! * the `master_seed` the shard binds the skeleton to itself (each shard
//!   runs against **its own** [`DeterministicPrefix`]; stream seeds are
//!   pure functions of `(master_seed, key)` and VG recipes live on the
//!   skeleton, so the per-shard binding carries no per-stream state at all
//!   — no shared mutable state, no per-block binding cost),
//! * a [`StreamKeyRange`] naming the slice of the key space the shard owns,
//! * the block window `base_pos .. base_pos + num_values`.
//!
//! **The shard contract.** The [planner](plan_shards) partitions the
//! skeleton's distinct bundle *anchor* keys (each bundle's smallest stream
//! key) into contiguous ranges that jointly cover the whole key space, so
//! ownership — not just stream generation — balances across shards.  A
//! shard owns every bundle whose anchor falls in its range (bundles with no
//! streams anchor at [`StreamKey::MIN`], i.e. the first shard).  Cross-shard bundles — a join
//! of streams from two ranges — are handled without communication: the
//! owning shard regenerates the foreign streams itself, which is
//! bit-identical by the position-addressable PRNG contract, so duplicated
//! generation trades a little CPU for zero coordination.  Each shard
//! returns its bundles tagged with their skeleton index; the merge visits
//! partials in ascending key-range order (the canonical `StreamKey` order
//! the planner emitted) and writes each bundle into its skeleton slot, so
//! the flattened output *is* the skeleton's bundle order — bit-identical to
//! [`InProcessBackend`](crate::backend::InProcessBackend) for every shard
//! count.  `tests/session_determinism.rs` proves this for shard counts
//! {1, 2, 3, 7} × thread counts, across replenishment boundaries, and on
//! cache hits.
//!
//! Aggregation shards partition **repetitions**, not bundles: within one
//! repetition the floating-point accumulation order over bundles is the
//! bit-identity contract, so the only safe parallel unit is the repetition
//! itself — exactly the unit the thread fan-out already uses.  Partials
//! merge in repetition order.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mcdbr_prng::{StreamKey, StreamKeyRange};
use mcdbr_storage::Result;

use crate::aggregate::{self, AggregateSpec, QueryResultSamples};
use crate::backend::{ExecBackend, ShardStats};
use crate::bundle::{BundleSet, TupleBundle};
use crate::expr::Expr;
use crate::par;
use crate::pool::BlockBufferPool;
use crate::session::{self, DeterministicPrefix, PlanSkeleton};

/// One self-describing slice of a block instantiation: bind `skeleton` to
/// `master_seed`, own every bundle anchored in `key_range`, materialize the
/// window `base_pos .. base_pos + num_values`.
///
/// Everything here is either plain data or re-derivable state (see the
/// module docs), which is what makes the task the natural unit for
/// multi-process dispatch.
#[derive(Debug, Clone)]
pub struct ShardTask {
    /// The seed-independent skeleton the shard binds and executes against.
    pub skeleton: Arc<PlanSkeleton>,
    /// The master seed; each shard derives its own stream seeds from it.
    pub master_seed: u64,
    /// The slice of the stream-key space this shard owns.
    pub key_range: StreamKeyRange,
    /// First stream position of the block window.
    pub base_pos: u64,
    /// Number of stream positions to materialize.
    pub num_values: usize,
}

/// What one shard hands back to the merge.
#[derive(Debug)]
pub struct ShardOutput {
    /// `(skeleton bundle index, materialized bundle)` pairs — `None` for
    /// bundles whose presence mask is false everywhere — for the merge to
    /// slot back into skeleton order.
    pub bundles: Vec<(usize, Option<TupleBundle>)>,
    /// Streams outside this shard's key range that it regenerated locally
    /// because an owned bundle references them (cross-shard joins).
    pub foreign_streams: usize,
}

impl ShardTask {
    /// Execute the shard: decide bundle ownership from the skeleton and the
    /// key range alone, bind a private prefix restricted to the streams the
    /// owned bundles reference (foreign keys included), generate those
    /// streams into columnar buffers from `pool`, and materialize the owned
    /// bundles.  Concurrent shard tasks share the pool safely — each
    /// acquisition hands out a distinct buffer — so a multi-shard block
    /// still reuses every buffer on the next block.
    pub fn run(&self, pool: &BlockBufferPool) -> Result<ShardOutput> {
        let skeleton = &self.skeleton;

        // Ownership: a bundle belongs to the shard whose range contains its
        // smallest stream key; fully deterministic bundles anchor at MIN.
        // Per-bundle key sets were computed once during the skeleton pass.
        let mut owned: Vec<usize> = Vec::new();
        let mut needed: BTreeSet<StreamKey> = BTreeSet::new();
        for (idx, keys) in skeleton.bundle_keys.iter().enumerate() {
            let anchor = keys.first().copied().unwrap_or(StreamKey::MIN);
            if self.key_range.contains(anchor) {
                owned.push(idx);
                needed.extend(keys.iter().copied());
            }
        }

        // Generate every stream an owned bundle touches.  Keys outside the
        // range (cross-shard joins) are regenerated locally: `(seed, pos)`
        // addressing makes the duplicate bit-identical to the owner shard's
        // copy.  The shard's own prefix carries no bound registry — seeds
        // are pure in `(master_seed, key)` and recipes live on the skeleton
        // — so per-shard binding costs nothing regardless of plan size.
        let foreign_streams = needed
            .iter()
            .filter(|&&key| !self.key_range.contains(key))
            .count();
        let prefix = skeleton.bind_for_shard(self.master_seed);
        // Each generated block's cells are moved into recycled shared
        // columns and the pooled buffer is released immediately — on every
        // exit path, so partial work is metered and the buffers stay warm.
        let mut cells = session::CellData::with_capacity(needed.len());
        pool.sweep_cells();
        let mut generation: Result<()> = Ok(());
        for key in needed {
            match session::generate_stream_block(&prefix, key, self.base_pos, self.num_values, pool)
            {
                Ok(mut block) => {
                    cells.insert(key, session::CellCols::from_block(&mut block, pool));
                    pool.release(block);
                }
                Err(e) => {
                    generation = Err(e);
                    break;
                }
            }
        }

        let bundles: Result<Vec<(usize, Option<TupleBundle>)>> = generation.and_then(|()| {
            owned
                .into_iter()
                .map(|idx| {
                    let bundle = session::materialize_bundle(
                        &skeleton.bundles[idx],
                        &prefix,
                        &cells,
                        self.base_pos,
                        self.num_values,
                    )?;
                    Ok((idx, bundle))
                })
                .collect()
        });
        Ok(ShardOutput {
            bundles: bundles?,
            foreign_streams,
        })
    }
}

/// The shard planner: partition a skeleton's distinct bundle *anchor* keys
/// into exactly `min(shards, anchors)` contiguous, balanced
/// [`StreamKeyRange`]s covering the whole key space (a single all-covering
/// range for stream-free plans).
///
/// Anchors — not all active streams — are what ownership is decided by, so
/// partitioning them is what balances the bundles each shard materializes:
/// on a multi-table join every bundle anchors at its smallest key, and
/// ranges drawn over the higher tables' keys would own nothing.
pub fn plan_shards(skeleton: &PlanSkeleton, shards: usize) -> Vec<StreamKeyRange> {
    StreamKeyRange::partition(skeleton.anchor_keys(), shards)
}

/// The sharded execution backend: phase 2 as a fan-out of [`ShardTask`]s.
///
/// In this process the tasks run on the same deterministic thread pool the
/// in-process backend uses (up to `threads` concurrent shard slots); the
/// point of the exercise is that nothing about a task *requires* that —
/// see the module docs for the shard contract and the merge-order
/// guarantee.
#[derive(Debug)]
pub struct ShardedBackend {
    shards: usize,
    shards_spawned: AtomicUsize,
    shard_merge_ns: AtomicU64,
    cross_shard_regens: AtomicUsize,
}

impl ShardedBackend {
    /// Create a backend targeting `shards` shards per block (minimum 1;
    /// blocks with fewer active streams than shards get fewer).
    pub fn new(shards: usize) -> Self {
        ShardedBackend {
            shards: shards.max(1),
            shards_spawned: AtomicUsize::new(0),
            shard_merge_ns: AtomicU64::new(0),
            cross_shard_regens: AtomicUsize::new(0),
        }
    }

    /// The target shard count per block.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

impl ExecBackend for ShardedBackend {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn instantiate_block(
        &self,
        prefix: &DeterministicPrefix,
        pool: &BlockBufferPool,
        threads: usize,
        base_pos: u64,
        num_values: usize,
    ) -> Result<BundleSet> {
        let skeleton = prefix.skeleton();
        let tasks: Vec<ShardTask> = plan_shards(skeleton, self.shards)
            .into_iter()
            .map(|key_range| ShardTask {
                skeleton: Arc::clone(skeleton),
                master_seed: prefix.master_seed(),
                key_range,
                base_pos,
                num_values,
            })
            .collect();
        self.shards_spawned
            .fetch_add(tasks.len(), Ordering::Relaxed);
        let partials = par::try_par_map_threads(&tasks, threads, |task| task.run(pool))?;

        // Merge: partials arrive in ascending key-range order; slotting each
        // bundle at its skeleton index restores the exact output order of
        // single-shard execution.  Only the slot placement is timed as merge
        // overhead — the flatten and BundleSet construction (schema/registry
        // clones) are work the in-process path performs identically.
        let merge_start = Instant::now();
        let mut slots: Vec<Option<TupleBundle>> = Vec::with_capacity(skeleton.num_bundles());
        slots.resize_with(skeleton.num_bundles(), || None);
        let mut foreign = 0usize;
        for partial in partials {
            foreign += partial.foreign_streams;
            for (idx, bundle) in partial.bundles {
                slots[idx] = bundle;
            }
        }
        self.shard_merge_ns
            .fetch_add(merge_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.cross_shard_regens
            .fetch_add(foreign, Ordering::Relaxed);
        Ok(BundleSet {
            schema: skeleton.schema().clone(),
            bundles: slots.into_iter().flatten().collect(),
            registry: prefix.registry().clone(),
            num_reps: num_values,
        })
    }

    fn aggregate(
        &self,
        set: &BundleSet,
        agg: &AggregateSpec,
        group_by: &[String],
        final_predicate: Option<&Expr>,
        threads: usize,
    ) -> Result<QueryResultSamples> {
        let (samples, partials, merge_ns) = aggregate::evaluate_aggregate_partials(
            set,
            agg,
            group_by,
            final_predicate,
            self.shards,
            threads,
        )?;
        self.shards_spawned.fetch_add(partials, Ordering::Relaxed);
        self.shard_merge_ns.fetch_add(merge_ns, Ordering::Relaxed);
        Ok(samples)
    }

    fn shard_stats(&self) -> ShardStats {
        ShardStats {
            shards_spawned: self.shards_spawned.load(Ordering::Relaxed),
            shard_merge_ns: self.shard_merge_ns.load(Ordering::Relaxed),
            cross_shard_regens: self.cross_shard_regens.load(Ordering::Relaxed),
            ..ShardStats::default()
        }
        .with_pager()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InProcessBackend;
    use crate::expr::Expr;
    use crate::plan::{scalar_random_table, PlanNode};
    use crate::session::ExecSession;
    use mcdbr_storage::{Catalog, Field, Schema, TableBuilder, Value};
    use mcdbr_vg::NormalVg;

    fn catalog() -> Catalog {
        let mut means =
            TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]));
        for i in 0..8i64 {
            means = means.row([Value::Int64(i), Value::Float64(2.0 + i as f64)]);
        }
        let regions = TableBuilder::new(Schema::new(vec![
            Field::int64("rcid"),
            Field::utf8("region"),
        ]))
        .row([Value::Int64(0), Value::str("EU")])
        .row([Value::Int64(1), Value::str("US")])
        .row([Value::Int64(2), Value::str("US")])
        .row([Value::Int64(5), Value::str("APAC")])
        .build()
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.register("means", means.build().unwrap()).unwrap();
        catalog.register("regions", regions).unwrap();
        catalog
    }

    /// Scan + random table + both filter kinds + join + computed projection.
    fn complex_plan() -> PlanNode {
        PlanNode::random_table(scalar_random_table(
            "Losses",
            "means",
            Arc::new(NormalVg),
            vec![Expr::col("m"), Expr::lit(1.0)],
            &["cid"],
            "val",
            1,
        ))
        .filter(Expr::col("cid").lt(Expr::lit(6i64)))
        .join(PlanNode::scan("regions"), vec![("cid", "rcid")])
        .filter(Expr::col("val").gt(Expr::lit(2.5)))
        .project(vec![
            ("cid", Expr::col("cid")),
            ("loss", Expr::col("val")),
            ("scaled", Expr::col("val").mul(Expr::lit(2.0))),
            ("region", Expr::col("region")),
        ])
    }

    fn assert_sets_identical(a: &BundleSet, b: &BundleSet) {
        assert_eq!(a.schema, b.schema);
        assert_eq!(a.num_reps, b.num_reps);
        assert_eq!(a.bundles, b.bundles);
    }

    #[test]
    fn sharded_blocks_match_in_process_for_every_shard_count() {
        let pool = BlockBufferPool::new();
        let catalog = catalog();
        let plan = complex_plan();
        let session = ExecSession::prepare(&plan, &catalog, 42).unwrap();
        let prefix = session.prefix().unwrap();
        let reference = InProcessBackend::new()
            .instantiate_block(prefix, &pool, 1, 0, 64)
            .unwrap();
        for shards in [1usize, 2, 3, 7, 50] {
            for threads in [1usize, 2, 8] {
                let backend = ShardedBackend::new(shards);
                let block = backend
                    .instantiate_block(prefix, &pool, threads, 0, 64)
                    .unwrap();
                assert_sets_identical(&reference, &block);
            }
        }
    }

    #[test]
    fn planner_never_exceeds_bundle_anchors_and_counters_accumulate() {
        let pool = BlockBufferPool::new();
        let catalog = catalog();
        let plan = complex_plan();
        let session = ExecSession::prepare(&plan, &catalog, 7).unwrap();
        let prefix = session.prefix().unwrap();
        let skeleton = prefix.skeleton();
        // Single-stream bundles: every active stream is some bundle's anchor.
        let anchors = skeleton.anchor_keys().len();
        assert_eq!(anchors, skeleton.num_active_streams());
        assert!(anchors >= 2);
        assert_eq!(plan_shards(skeleton, 3).len(), 3);
        assert_eq!(plan_shards(skeleton, 100).len(), anchors);
        assert_eq!(plan_shards(skeleton, 0).len(), 1);

        let backend = ShardedBackend::new(3);
        assert_eq!(backend.shards(), 3);
        assert_eq!(backend.name(), "sharded");
        // Pager counters are process-global and may be nonzero when the
        // suite runs under `MCDBR_DATA_DIR`; the backend's own work must
        // be zero and a self-window is always all-zero.
        let fresh = backend.shard_stats();
        assert_eq!(fresh.shards_spawned, 0);
        assert_eq!(fresh.shard_merge_ns, 0);
        assert_eq!(fresh.cross_shard_regens, 0);
        assert_eq!(fresh.since(fresh), ShardStats::default());
        let _ = backend.instantiate_block(prefix, &pool, 2, 0, 8).unwrap();
        let after_one = backend.shard_stats();
        assert_eq!(after_one.shards_spawned, 3);
        let _ = backend.instantiate_block(prefix, &pool, 2, 8, 8).unwrap();
        assert_eq!(backend.shard_stats().shards_spawned, 6);
        assert_eq!(backend.shard_stats().since(after_one).shards_spawned, 3);
    }

    #[test]
    fn shard_tasks_are_self_describing_and_cover_all_bundles() {
        let pool = BlockBufferPool::new();
        let catalog = catalog();
        let plan = complex_plan();
        let session = ExecSession::prepare(&plan, &catalog, 11).unwrap();
        let prefix = session.prefix().unwrap();
        let skeleton = prefix.skeleton();
        let ranges = plan_shards(skeleton, 3);
        let mut seen = std::collections::BTreeSet::new();
        for key_range in ranges {
            let task = ShardTask {
                skeleton: Arc::clone(skeleton),
                master_seed: 11,
                key_range,
                base_pos: 0,
                num_values: 4,
            };
            let output = task.run(&pool).unwrap();
            // Single-stream bundles never cross range boundaries.
            assert_eq!(output.foreign_streams, 0);
            for (idx, _) in output.bundles {
                assert!(seen.insert(idx), "bundle {idx} owned by two shards");
            }
        }
        assert_eq!(seen.len(), skeleton.num_bundles());
    }

    #[test]
    fn cross_shard_joins_regenerate_foreign_streams_and_stay_identical() {
        let pool = BlockBufferPool::new();
        // Two uncertain tables (tags 1 and 2) joined on cid: every bundle
        // references one stream from each table, so any split between the
        // tables makes every bundle cross-shard — the owning shard must
        // regenerate the foreign stream locally and still merge exactly.
        let catalog = catalog();
        let mk = |tag, name: &str| {
            PlanNode::random_table(scalar_random_table(
                name,
                "means",
                Arc::new(NormalVg),
                vec![Expr::col("m"), Expr::lit(1.0)],
                &["cid"],
                name,
                tag,
            ))
        };
        let plan = mk(1, "a").join(mk(2, "b"), vec![("cid", "cid")]);
        let session = ExecSession::prepare(&plan, &catalog, 13).unwrap();
        let prefix = session.prefix().unwrap();
        let reference = InProcessBackend::new()
            .instantiate_block(prefix, &pool, 1, 0, 32)
            .unwrap();
        for shards in [2usize, 3, 7] {
            let backend = ShardedBackend::new(shards);
            let block = backend.instantiate_block(prefix, &pool, 2, 0, 32).unwrap();
            assert_sets_identical(&reference, &block);
            assert!(
                backend.shard_stats().cross_shard_regens > 0,
                "{shards} shards over a two-table join must cross ranges"
            );
        }
        // One shard owns everything: nothing is foreign.
        let single = ShardedBackend::new(1);
        let _ = single.instantiate_block(prefix, &pool, 1, 0, 32).unwrap();
        assert_eq!(single.shard_stats().cross_shard_regens, 0);

        // The planner partitions *anchors* (all tag-1 here), so both shards
        // of a 2-way split own bundles — the non-anchor tag-2 keys never
        // starve a range of work.
        let skeleton = prefix.skeleton();
        assert_eq!(skeleton.anchor_keys().len(), 8);
        assert_eq!(skeleton.num_active_streams(), 16);
        for key_range in plan_shards(skeleton, 2) {
            let output = ShardTask {
                skeleton: Arc::clone(skeleton),
                master_seed: 13,
                key_range,
                base_pos: 0,
                num_values: 4,
            }
            .run(&pool)
            .unwrap();
            assert_eq!(output.bundles.len(), 4, "ownership must balance 4/4");
        }
    }

    #[test]
    fn deterministic_only_plans_run_on_one_shard() {
        let pool = BlockBufferPool::new();
        let catalog = catalog();
        let session = ExecSession::prepare(&PlanNode::scan("regions"), &catalog, 1).unwrap();
        let prefix = session.prefix().unwrap();
        let backend = ShardedBackend::new(4);
        let block = backend.instantiate_block(prefix, &pool, 4, 0, 3).unwrap();
        assert_eq!(block.len(), 4);
        assert!(block.registry.is_empty());
        assert_eq!(backend.shard_stats().shards_spawned, 1);
    }

    #[test]
    fn sharded_sessions_are_bit_identical_end_to_end() {
        let catalog = catalog();
        let plan = complex_plan();
        let mut in_process = ExecSession::prepare(&plan, &catalog, 9)
            .unwrap()
            .with_backend(Arc::new(InProcessBackend::new()));
        let mut sharded = ExecSession::prepare(&plan, &catalog, 9)
            .unwrap()
            .with_backend(Arc::new(ShardedBackend::new(3)));
        assert_eq!(sharded.backend().name(), "sharded");
        for (base, n) in [(0u64, 16usize), (16, 8), (1000, 4)] {
            let a = in_process.instantiate_block(&catalog, base, n).unwrap();
            let b = sharded.instantiate_block(&catalog, base, n).unwrap();
            assert_sets_identical(&a, &b);
        }
        assert_eq!(sharded.backend().shard_stats().shards_spawned, 9);
    }
}
