//! Pooled, reusable columnar block buffers for phase-2 materialization.
//!
//! Every block materialization needs one [`ColumnBlock`] per active stream.
//! Allocating those buffers per block would re-pay the row path's
//! allocation bill on every Gibbs replenishment round and every repeated
//! query; a [`BlockBufferPool`] instead recycles cleared buffers — a warm
//! pool materializes a block with zero buffer allocation, since
//! [`ColumnBlock::clear`] keeps every typed buffer's capacity (and the Utf8
//! intern dictionary's arena) for the next acquisition.
//!
//! The pool is shared freely across threads and shard tasks (acquisition is
//! a mutex pop, release a mutex push), and it doubles as the metering point
//! for the new end-to-end counters: `bytes_materialized` (logical bytes
//! written into released buffers) and `buffer_reuses` (acquisitions served
//! from the pool instead of a fresh allocation).
//!
//! Buffers released into an already-full pool are dropped, so a pool can
//! never retain more memory than its high-water mark of concurrently live
//! buffers (bounded by [`BlockBufferPool::with_max_pooled`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mcdbr_storage::ColumnBlock;

/// Default cap on idle pooled buffers — far above any realistic per-block
/// stream count, so the cap only guards pathologically shared pools.
const DEFAULT_MAX_POOLED: usize = 4096;

/// A pool of reusable [`ColumnBlock`] buffers (see the module docs).
#[derive(Debug)]
pub struct BlockBufferPool {
    buffers: Mutex<Vec<ColumnBlock>>,
    max_pooled: usize,
    acquires: AtomicU64,
    reuses: AtomicU64,
    bytes_materialized: AtomicU64,
}

impl Default for BlockBufferPool {
    fn default() -> Self {
        BlockBufferPool::with_max_pooled(DEFAULT_MAX_POOLED)
    }
}

impl BlockBufferPool {
    /// A pool with the default idle-buffer cap.
    pub fn new() -> Self {
        BlockBufferPool::default()
    }

    /// A pool retaining at most `max_pooled` idle buffers.
    pub fn with_max_pooled(max_pooled: usize) -> Self {
        BlockBufferPool {
            buffers: Mutex::new(Vec::new()),
            max_pooled,
            acquires: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            bytes_materialized: AtomicU64::new(0),
        }
    }

    /// Take a cleared buffer from the pool, or a fresh one if none is idle.
    pub fn acquire(&self) -> ColumnBlock {
        self.acquires.fetch_add(1, Ordering::Relaxed);
        if let Some(block) = self.buffers.lock().expect("pool lock").pop() {
            self.reuses.fetch_add(1, Ordering::Relaxed);
            return block;
        }
        ColumnBlock::new()
    }

    /// Return a buffer, accounting its materialized bytes and clearing it
    /// (capacity retained) so the next acquisition starts from a clean,
    /// warm buffer.  Dropped instead of pooled when the idle cap is reached.
    pub fn release(&self, mut block: ColumnBlock) {
        self.bytes_materialized
            .fetch_add(block.data_bytes() as u64, Ordering::Relaxed);
        block.clear();
        let mut buffers = self.buffers.lock().expect("pool lock");
        if buffers.len() < self.max_pooled {
            buffers.push(block);
        }
    }

    /// Total buffer acquisitions.
    pub fn acquires(&self) -> u64 {
        self.acquires.load(Ordering::Relaxed)
    }

    /// Acquisitions served by recycling a pooled buffer (the allocation
    /// savings of the pool).
    pub fn buffer_reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }

    /// Logical bytes written into buffers released through this pool — the
    /// columnar analogue of `values_materialized`, measured in memory
    /// rather than positions.  Shard backends release their per-task
    /// buffers here too, so cross-shard regeneration is included.
    pub fn bytes_materialized(&self) -> u64 {
        self.bytes_materialized.load(Ordering::Relaxed)
    }

    /// Idle buffers currently held.
    pub fn idle(&self) -> usize {
        self.buffers.lock().expect("pool lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_storage::Value;

    #[test]
    fn acquisitions_reuse_released_buffers() {
        let pool = BlockBufferPool::new();
        let a = pool.acquire();
        assert_eq!((pool.acquires(), pool.buffer_reuses()), (1, 0));
        pool.release(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.acquire();
        assert_eq!((pool.acquires(), pool.buffer_reuses()), (2, 1));
        pool.release(b);
        // Round-trip again: still one idle buffer cycling.
        let _ = pool.acquire();
        assert_eq!(pool.buffer_reuses(), 2);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn pool_grows_to_concurrent_demand_and_respects_the_cap() {
        let pool = BlockBufferPool::with_max_pooled(2);
        let blocks: Vec<ColumnBlock> = (0..5).map(|_| pool.acquire()).collect();
        assert_eq!(pool.acquires(), 5);
        assert_eq!(pool.buffer_reuses(), 0, "all five were live at once");
        for b in blocks {
            pool.release(b);
        }
        assert_eq!(pool.idle(), 2, "releases beyond the cap drop the buffer");
    }

    #[test]
    fn released_buffers_come_back_fully_cleared() {
        let pool = BlockBufferPool::new();
        let mut block = pool.acquire();
        block.reset(1, 1, 4);
        block.column_mut(0, 0).push_f64(3.25);
        block.column_mut(0, 0).push_value(&Value::str("bleed"));
        pool.release(block);
        assert!(pool.bytes_materialized() > 0);
        let reused = pool.acquire();
        assert!(!reused.is_shaped(), "shape must not leak across blocks");
        assert_eq!(reused.num_positions(), 0);
        assert_eq!(reused.data_bytes(), 0, "no value bleed between blocks");
    }

    #[test]
    fn recycled_buffers_serve_streams_of_a_different_value_type() {
        // Regression: a pool is shared by every stream of a session, so a
        // buffer last typed Float64 by a Normal stream must serve a
        // string-category Discrete stream next (and vice versa) — the
        // cleared-but-typed column retypes instead of erroring or demoting
        // to the boxed Mixed store.
        use mcdbr_storage::Value;
        use mcdbr_vg::{DiscreteVg, NormalVg, VgFunction};

        let pool = BlockBufferPool::new();
        let mut block = pool.acquire();
        NormalVg
            .generate_block_into(
                &[Value::Float64(0.0), Value::Float64(1.0)],
                7,
                0,
                16,
                &mut block,
            )
            .unwrap();
        pool.release(block);

        let discrete = DiscreteVg::new(vec![Value::str("a"), Value::str("b")]);
        let weights = [Value::Float64(0.5), Value::Float64(0.5)];
        let mut block = pool.acquire();
        discrete
            .generate_block_into(&weights, 8, 0, 16, &mut block)
            .unwrap();
        assert_eq!(
            block.column(0, 0).data_type(),
            Some(mcdbr_storage::DataType::Utf8),
            "recycled buffer must retype, not demote"
        );
        pool.release(block);

        // And back to numeric: still a typed buffer.
        let mut block = pool.acquire();
        NormalVg
            .generate_block_into(
                &[Value::Float64(0.0), Value::Float64(1.0)],
                9,
                0,
                16,
                &mut block,
            )
            .unwrap();
        assert!(block.column(0, 0).f64_slice().is_some());
        assert_eq!(pool.buffer_reuses(), 2);
    }

    #[test]
    fn concurrent_releases_past_the_idle_cap_drop_without_inflating_reuses() {
        // Shard tasks return their buffers in whatever order they finish; a
        // pool whose idle cap is smaller than the number of in-flight
        // buffers must drop the overflow under *any* interleaving, and the
        // dropped buffers must never be double-counted as reuses by later
        // acquisitions.
        let pool = BlockBufferPool::with_max_pooled(2);
        let blocks: Vec<ColumnBlock> = (0..8).map(|_| pool.acquire()).collect();
        assert_eq!(pool.buffer_reuses(), 0, "all eight live at once");
        std::thread::scope(|scope| {
            for mut block in blocks {
                let pool = &pool;
                scope.spawn(move || {
                    block.reset(1, 1, 1);
                    block.column_mut(0, 0).push_f64(1.0);
                    pool.release(block);
                });
            }
        });
        assert_eq!(pool.idle(), 2, "releases beyond the cap must drop");
        // Every release was metered, pooled or dropped alike (8 bytes per
        // single-f64 buffer).
        assert_eq!(pool.bytes_materialized(), 8 * 8);
        // Re-acquiring eight buffers: exactly the two pooled ones count as
        // reuses; the dropped six must not inflate the counter.
        let again: Vec<ColumnBlock> = (0..8).map(|_| pool.acquire()).collect();
        assert_eq!(pool.buffer_reuses(), 2);
        assert_eq!(pool.acquires(), 16);
        assert_eq!(pool.idle(), 0);
        drop(again);
    }

    #[test]
    fn bytes_accumulate_across_releases() {
        let pool = BlockBufferPool::new();
        for round in 0..3 {
            let mut block = pool.acquire();
            block.reset(1, 1, 8);
            for i in 0..8 {
                block.column_mut(0, 0).push_f64(i as f64);
            }
            pool.release(block);
            assert_eq!(pool.bytes_materialized(), 64 * (round + 1));
        }
        assert_eq!(pool.buffer_reuses(), 2);
    }
}
