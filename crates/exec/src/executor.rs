//! The bundle executor: runs a [`PlanNode`] over a catalog, producing a
//! [`BundleSet`].
//!
//! The executor implements the MCDB "run the plan once over tuple bundles"
//! discipline (paper §1): no matter how many Monte Carlo repetitions (or how
//! large the Gibbs block), the deterministic work — scans, joins on
//! deterministic attributes, constant-only predicates — happens exactly once.
//! Random attributes are materialized as blocks of stream values with full
//! lineage so that the MCDB baseline can read repetition `i` directly and the
//! Gibbs Looper can re-map stream positions to DB versions (paper §5–§6).
//!
//! Instantiation ranges are explicit in [`ExecOptions`]: MCDB materializes
//! positions `0..num_values`; a replenishing MCDB-R run materializes
//! `base_pos..base_pos + num_values` ("the `Instantiate` operation never adds
//! stream values to a Gibbs tuple that have already been processed; it only
//! adds new or currently assigned values", paper §9).

use std::collections::HashMap;

use mcdbr_prng::seed_for;
use mcdbr_storage::{Catalog, Column, Error, Result, Schema, Value};

use crate::bundle::{BundleSet, BundleValue, TupleBundle, ValueChain};
use crate::expr::Expr;
use crate::plan::{OutputColumn, PlanNode, RandomTableSpec};
use crate::stream_registry::StreamRegistry;

/// Options controlling a plan execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Master seed; every stream seed is derived from it.
    pub master_seed: u64,
    /// Number of stream values to materialize per random attribute.
    /// For the MCDB baseline this equals the number of Monte Carlo
    /// repetitions; for MCDB-R it is the Gibbs block size.
    pub num_values: usize,
    /// First stream position to materialize (0 for an initial run, the next
    /// unprocessed position for a replenishment run).
    pub base_pos: u64,
}

impl ExecOptions {
    /// Options for an MCDB run with `n` Monte Carlo repetitions.
    pub fn monte_carlo(master_seed: u64, n: usize) -> Self {
        ExecOptions {
            master_seed,
            num_values: n,
            base_pos: 0,
        }
    }

    /// Options for an MCDB-R (Gibbs) run materializing a block of
    /// `block_size` values per stream starting at `base_pos`.
    pub fn gibbs_block(master_seed: u64, block_size: usize, base_pos: u64) -> Self {
        ExecOptions {
            master_seed,
            num_values: block_size,
            base_pos,
        }
    }
}

/// The bundle executor.
///
/// The executor also counts how many times plans have been run through it
/// (`plans_executed`), which the Appendix D timing / plan-execution
/// experiments report.
#[derive(Debug, Default)]
pub struct Executor {
    plans_executed: usize,
}

impl Executor {
    /// Create a new executor.
    pub fn new() -> Self {
        Executor::default()
    }

    /// Number of plan executions performed so far (initial runs plus
    /// replenishment runs).
    pub fn plans_executed(&self) -> usize {
        self.plans_executed
    }

    /// Execute `plan` against `catalog`, materializing random attributes as
    /// dictated by `opts`.
    pub fn execute(
        &mut self,
        plan: &PlanNode,
        catalog: &Catalog,
        opts: &ExecOptions,
    ) -> Result<BundleSet> {
        self.plans_executed += 1;
        let mut registry = StreamRegistry::new();
        let (schema, bundles) = exec_node(plan, catalog, opts, &mut registry)?;
        Ok(BundleSet {
            schema,
            bundles,
            registry,
            num_reps: opts.num_values,
        })
    }
}

fn exec_node(
    plan: &PlanNode,
    catalog: &Catalog,
    opts: &ExecOptions,
    registry: &mut StreamRegistry,
) -> Result<(Schema, Vec<TupleBundle>)> {
    match plan {
        PlanNode::TableScan { table } => {
            let t = catalog.get(table)?;
            // Page-at-a-time scan through the shared buffer pool: the
            // iterator pins one decoded frame at a time, so the resident
            // set stays bounded by MCDBR_PAGE_CACHE even for cold tables.
            let bundles = t
                .iter()
                .map(|row| TupleBundle::constant(row.into_values()))
                .collect();
            Ok((t.schema().clone(), bundles))
        }
        PlanNode::RandomTable(spec) => exec_random_table(spec, catalog, opts, registry),
        PlanNode::Filter { input, predicate } => {
            let (schema, bundles) = exec_node(input, catalog, opts, registry)?;
            let filtered = apply_filter(&schema, bundles, predicate, opts.num_values)?;
            Ok((schema, filtered))
        }
        PlanNode::Project { input, exprs } => {
            let (in_schema, bundles) = exec_node(input, catalog, opts, registry)?;
            let out_schema = plan.schema(catalog)?;
            let projected = apply_project(&in_schema, bundles, exprs, opts.num_values)?;
            Ok((out_schema, projected))
        }
        PlanNode::Join {
            left, right, on, ..
        } => {
            let (ls, lb) = exec_node(left, catalog, opts, registry)?;
            let (rs, rb) = exec_node(right, catalog, opts, registry)?;
            let out_schema = ls.join(&rs);
            let joined = apply_hash_join(&ls, lb, &rs, rb, on)?;
            Ok((out_schema, joined))
        }
        PlanNode::Split { input, column } => {
            let (schema, bundles) = exec_node(input, catalog, opts, registry)?;
            let split = apply_split(&schema, bundles, column, opts.num_values)?;
            Ok((schema, split))
        }
    }
}

/// Generate the bundles of an uncertain table (paper §2 / Fig. 2's
/// Seed + Instantiate).
fn exec_random_table(
    spec: &RandomTableSpec,
    catalog: &Catalog,
    opts: &ExecOptions,
    registry: &mut StreamRegistry,
) -> Result<(Schema, Vec<TupleBundle>)> {
    let param_table = catalog.get(&spec.param_table)?;
    let param_schema = param_table.schema();
    let out_schema = spec.schema(catalog)?;

    let mut bundles = Vec::new();
    for (row_idx, param_row) in param_table.iter().enumerate() {
        // Seed operator: derive and register this tuple's stream.
        let seed = seed_for(opts.master_seed, spec.table_tag, row_idx as u64);
        let params: Vec<Value> = spec
            .vg_params
            .iter()
            .map(|e| e.eval(param_schema, param_row.values()))
            .collect::<Result<_>>()?;
        registry.register(seed, spec.vg.clone(), params.clone());

        // Instantiate operator: materialize the block of stream values.
        // One VG invocation per position; all output rows/columns of that
        // invocation share the position.
        let source = registry.source(seed)?;
        let mut per_pos_rows = Vec::with_capacity(opts.num_values);
        for i in 0..opts.num_values {
            per_pos_rows.push(source.generate_at(seed, opts.base_pos + i as u64)?);
        }
        let vg_rows = per_pos_rows.first().map(|r| r.len()).unwrap_or(1);
        if per_pos_rows.iter().any(|r| r.len() != vg_rows) {
            return Err(Error::Invalid(format!(
                "VG function {} produced a varying number of output rows across stream \
                 positions; the bundle executor requires a fixed row count",
                spec.vg.name()
            )));
        }

        for vg_row in 0..vg_rows {
            let mut values = Vec::with_capacity(spec.columns.len());
            for col in &spec.columns {
                match col {
                    OutputColumn::Param { source: src, .. } => {
                        let idx = param_schema.index_of(src)?;
                        values.push(BundleValue::Const(param_row.value(idx).clone()));
                    }
                    OutputColumn::Vg { vg_col, .. } => {
                        let mut block = Column::default();
                        for rows in &per_pos_rows {
                            block.push_value(rows[vg_row].value(*vg_col));
                        }
                        values.push(BundleValue::Random {
                            seed,
                            vg_row,
                            vg_col: *vg_col,
                            base_pos: opts.base_pos,
                            values: ValueChain::from_column(block),
                        });
                    }
                }
            }
            bundles.push(TupleBundle {
                values,
                is_pres: None,
            });
        }
    }
    Ok((out_schema, bundles))
}

/// Apply a filter: constant-only predicates drop bundles, predicates that
/// touch random attributes become per-repetition presence masks.
fn apply_filter(
    schema: &Schema,
    bundles: Vec<TupleBundle>,
    predicate: &Expr,
    num_reps: usize,
) -> Result<Vec<TupleBundle>> {
    let referenced = predicate.referenced_columns();
    let ref_indices: Vec<usize> = referenced
        .iter()
        .map(|c| schema.index_of(c))
        .collect::<Result<_>>()?;

    let mut out = Vec::with_capacity(bundles.len());
    for mut bundle in bundles {
        let touches_random = ref_indices.iter().any(|&i| !bundle.values[i].is_const());
        if !touches_random {
            // Deterministic predicate for this bundle: evaluate once.
            let row = bundle.row_at(0);
            if predicate.eval_bool(schema, &row)? {
                out.push(bundle);
            }
        } else {
            // Random predicate: evaluate per repetition into isPres
            // (paper §5: "An array of isPres values is created when a
            // selection predicate is applied to a random attribute").
            let mut mask = Vec::with_capacity(num_reps);
            for rep in 0..num_reps {
                let row = bundle.row_at(rep);
                mask.push(predicate.eval_bool(schema, &row)?);
            }
            bundle.restrict_presence(&mask);
            // "If the predicate is not satisfied in any DB instance, then the
            // entire Gibbs tuple is dropped."
            if !bundle.absent_everywhere(num_reps) {
                out.push(bundle);
            }
        }
    }
    Ok(out)
}

/// Apply a projection.  Plain column references keep their lineage; computed
/// expressions become constants (if every input is constant) or lose lineage
/// into [`BundleValue::Computed`] otherwise.
fn apply_project(
    schema: &Schema,
    bundles: Vec<TupleBundle>,
    exprs: &[(String, Expr)],
    num_reps: usize,
) -> Result<Vec<TupleBundle>> {
    let mut out = Vec::with_capacity(bundles.len());
    for bundle in bundles {
        let mut values = Vec::with_capacity(exprs.len());
        for (_, expr) in exprs {
            if let Expr::Column(name) = expr {
                let idx = schema.index_of(name)?;
                values.push(bundle.values[idx].clone());
                continue;
            }
            let referenced = expr.referenced_columns();
            let all_const = referenced
                .iter()
                .map(|c| schema.index_of(c))
                .collect::<Result<Vec<_>>>()?
                .into_iter()
                .all(|i| bundle.values[i].is_const());
            if all_const {
                let row = bundle.row_at(0);
                values.push(BundleValue::Const(expr.eval(schema, &row)?));
            } else {
                let mut computed = Column::default();
                for rep in 0..num_reps {
                    let row = bundle.row_at(rep);
                    computed.push_value(&expr.eval(schema, &row)?);
                }
                values.push(BundleValue::Computed(ValueChain::from_column(computed)));
            }
        }
        out.push(TupleBundle {
            values,
            is_pres: bundle.is_pres.clone(),
        });
    }
    Ok(out)
}

/// A hashable key over constant join values.  Shared with the two-phase
/// [`crate::session::ExecSession`], whose symbolic join must order its output
/// exactly like this executor's.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum JoinKey {
    Null,
    Int(i64),
    Bits(u64),
    Bool(bool),
    Str(std::sync::Arc<str>),
}

pub(crate) fn join_key(v: &Value) -> JoinKey {
    match v {
        Value::Null => JoinKey::Null,
        Value::Int64(i) => JoinKey::Int(*i),
        // Integral floats hash like the corresponding integer so that joins
        // across Int64 / Float64 columns behave like SQL numeric equality.
        Value::Float64(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => JoinKey::Int(*f as i64),
        Value::Float64(f) => JoinKey::Bits(f.to_bits()),
        Value::Bool(b) => JoinKey::Bool(*b),
        Value::Utf8(s) => JoinKey::Str(s.clone()),
    }
}

/// Hash inner equi-join on deterministic attributes.  Joining on a random
/// attribute is an error: the plan must Split it first (paper §8).
fn apply_hash_join(
    left_schema: &Schema,
    left: Vec<TupleBundle>,
    right_schema: &Schema,
    right: Vec<TupleBundle>,
    on: &[(String, String)],
) -> Result<Vec<TupleBundle>> {
    if on.is_empty() {
        return Err(Error::Invalid("join requires at least one key pair".into()));
    }
    let left_keys: Vec<usize> = on
        .iter()
        .map(|(l, _)| left_schema.index_of(l))
        .collect::<Result<_>>()?;
    let right_keys: Vec<usize> = on
        .iter()
        .map(|(_, r)| right_schema.index_of(r))
        .collect::<Result<_>>()?;

    // Build side: the right input.
    let mut table: HashMap<Vec<JoinKey>, Vec<usize>> = HashMap::with_capacity(right.len());
    for (idx, bundle) in right.iter().enumerate() {
        let key = bundle_key(bundle, &right_keys, "right")?;
        if key.iter().any(|k| matches!(k, JoinKey::Null)) {
            continue; // SQL: NULL keys never join
        }
        table.entry(key).or_default().push(idx);
    }

    let mut out = Vec::new();
    for bundle in &left {
        let key = bundle_key(bundle, &left_keys, "left")?;
        if key.iter().any(|k| matches!(k, JoinKey::Null)) {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for &ridx in matches {
                out.push(bundle.concat(&right[ridx]));
            }
        }
    }
    Ok(out)
}

fn bundle_key(bundle: &TupleBundle, key_cols: &[usize], side: &str) -> Result<Vec<JoinKey>> {
    key_cols
        .iter()
        .map(|&i| match &bundle.values[i] {
            BundleValue::Const(v) => Ok(join_key(v)),
            _ => Err(Error::InvalidOperation(format!(
                "{side} join key column {i} is a random attribute; apply Split before joining \
                 on a random attribute (paper §8)"
            ))),
        })
        .collect()
}

/// MCDB's Split operation (paper §8): replace a random column by one bundle
/// per distinct value, with presence restricted to the repetitions in which
/// the stream took that value.
fn apply_split(
    schema: &Schema,
    bundles: Vec<TupleBundle>,
    column: &str,
    num_reps: usize,
) -> Result<Vec<TupleBundle>> {
    let idx = schema.index_of(column)?;
    let mut out = Vec::new();
    for bundle in bundles {
        if bundle.values[idx].is_const() {
            out.push(bundle);
            continue;
        }
        // Enumerate distinct values in first-appearance order.
        let mut distinct: Vec<Value> = Vec::new();
        for rep in 0..num_reps {
            let v = bundle.values[idx].value_at(rep).clone();
            if !distinct.iter().any(|d| d.sql_eq(&v)) {
                distinct.push(v);
            }
        }
        for v in distinct {
            let mask: Vec<bool> = (0..num_reps)
                .map(|rep| bundle.values[idx].value_at(rep).sql_eq(&v))
                .collect();
            let mut split = bundle.clone();
            split.values[idx] = BundleValue::Const(v);
            split.restrict_presence(&mask);
            if !split.absent_everywhere(num_reps) {
                out.push(split);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::scalar_random_table;
    use mcdbr_storage::{Field, TableBuilder};
    use mcdbr_vg::{DiscreteVg, NormalVg};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let means = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
            .row([Value::Int64(1), Value::Float64(3.0)])
            .row([Value::Int64(2), Value::Float64(4.0)])
            .row([Value::Int64(3), Value::Float64(5.0)])
            .build()
            .unwrap();
        let regions = TableBuilder::new(Schema::new(vec![
            Field::int64("cid"),
            Field::utf8("region"),
        ]))
        .row([Value::Int64(1), Value::str("EU")])
        .row([Value::Int64(2), Value::str("US")])
        .row([Value::Int64(2), Value::str("APAC")])
        .build()
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.register("means", means).unwrap();
        catalog.register("regions", regions).unwrap();
        catalog
    }

    fn losses_plan() -> PlanNode {
        PlanNode::random_table(scalar_random_table(
            "Losses",
            "means",
            Arc::new(NormalVg),
            vec![Expr::col("m"), Expr::lit(1.0)],
            &["cid"],
            "val",
            1,
        ))
    }

    #[test]
    fn scan_produces_constant_bundles() {
        let catalog = catalog();
        let mut exec = Executor::new();
        let set = exec
            .execute(
                &PlanNode::scan("means"),
                &catalog,
                &ExecOptions::monte_carlo(7, 4),
            )
            .unwrap();
        assert_eq!(set.len(), 3);
        assert!(set.bundles.iter().all(|b| b.is_fully_const()));
        assert_eq!(exec.plans_executed(), 1);
    }

    #[test]
    fn random_table_materializes_blocks_with_lineage() {
        let catalog = catalog();
        let mut exec = Executor::new();
        let set = exec
            .execute(&losses_plan(), &catalog, &ExecOptions::monte_carlo(7, 5))
            .unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.schema.names(), vec!["cid", "val"]);
        assert_eq!(set.seeds().len(), 3);
        for bundle in &set.bundles {
            assert!(bundle.values[0].is_const());
            match &bundle.values[1] {
                BundleValue::Random {
                    values, base_pos, ..
                } => {
                    assert_eq!(values.len(), 5);
                    assert_eq!(*base_pos, 0);
                }
                other => panic!("expected random attribute, got {other:?}"),
            }
        }
        // The registry can regenerate exactly the materialized values.
        let b = &set.bundles[0];
        if let BundleValue::Random {
            seed,
            vg_row,
            vg_col,
            values,
            ..
        } = &b.values[1]
        {
            for (i, v) in values.iter().enumerate() {
                let regen = set
                    .registry
                    .value_at(*seed, i as u64, *vg_row, *vg_col)
                    .unwrap();
                assert_eq!(regen, v);
            }
        }
    }

    #[test]
    fn executions_are_reproducible_for_a_master_seed() {
        let catalog = catalog();
        let mut exec = Executor::new();
        let a = exec
            .execute(&losses_plan(), &catalog, &ExecOptions::monte_carlo(42, 3))
            .unwrap();
        let b = exec
            .execute(&losses_plan(), &catalog, &ExecOptions::monte_carlo(42, 3))
            .unwrap();
        let c = exec
            .execute(&losses_plan(), &catalog, &ExecOptions::monte_carlo(43, 3))
            .unwrap();
        assert_eq!(a.bundles, b.bundles);
        assert_ne!(a.bundles, c.bundles);
        assert_eq!(exec.plans_executed(), 3);
    }

    #[test]
    fn replenishment_range_continues_the_stream() {
        // Positions 5..10 of a later run line up with positions 5..10 of a
        // longer initial run — the §9 property that replenishment only adds
        // "new or currently assigned" values, never different ones.
        let catalog = catalog();
        let mut exec = Executor::new();
        let long = exec
            .execute(&losses_plan(), &catalog, &ExecOptions::monte_carlo(7, 10))
            .unwrap();
        let block = exec
            .execute(&losses_plan(), &catalog, &ExecOptions::gibbs_block(7, 5, 5))
            .unwrap();
        for (lb, bb) in long.bundles.iter().zip(block.bundles.iter()) {
            let (long_vals, block_vals) = match (&lb.values[1], &bb.values[1]) {
                (
                    BundleValue::Random { values: a, .. },
                    BundleValue::Random {
                        values: b,
                        base_pos,
                        ..
                    },
                ) => {
                    assert_eq!(*base_pos, 5);
                    (a, b)
                }
                _ => panic!("expected random attributes"),
            };
            assert_eq!(&long_vals.to_values()[5..10], &block_vals.to_values()[..]);
        }
    }

    #[test]
    fn deterministic_filter_drops_bundles() {
        let catalog = catalog();
        let mut exec = Executor::new();
        let plan = losses_plan().filter(Expr::col("cid").lt(Expr::lit(3i64)));
        let set = exec
            .execute(&plan, &catalog, &ExecOptions::monte_carlo(7, 4))
            .unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.bundles.iter().all(|b| b.is_pres.is_none()));
    }

    #[test]
    fn random_filter_becomes_presence() {
        let catalog = catalog();
        let mut exec = Executor::new();
        // Loss > mean: true roughly half the time per repetition.
        let plan = losses_plan().filter(Expr::col("val").gt(Expr::lit(4.0)));
        let set = exec
            .execute(&plan, &catalog, &ExecOptions::monte_carlo(7, 64))
            .unwrap();
        // Bundles that survive carry per-repetition presence masks.
        assert!(!set.is_empty());
        for b in &set.bundles {
            let pres = b
                .is_pres
                .as_ref()
                .expect("random filter must create isPres");
            assert_eq!(pres.len(), 64);
            assert!(
                pres.iter().any(|&p| p),
                "never-present bundles must be dropped"
            );
            // Presence must agree with the predicate on the materialized values.
            for (rep, &present) in pres.iter().enumerate() {
                let val = b.values[1].value_at(rep).as_f64().unwrap();
                assert_eq!(present, val > 4.0);
            }
        }
    }

    #[test]
    fn projection_preserves_lineage_for_plain_columns() {
        let catalog = catalog();
        let mut exec = Executor::new();
        let plan = losses_plan().project(vec![
            ("loss", Expr::col("val")),
            ("cid", Expr::col("cid")),
            ("shifted", Expr::col("val").add(Expr::lit(10.0))),
            ("const_tag", Expr::lit(1i64)),
        ]);
        let set = exec
            .execute(&plan, &catalog, &ExecOptions::monte_carlo(7, 3))
            .unwrap();
        let b = &set.bundles[0];
        assert!(
            matches!(b.values[0], BundleValue::Random { .. }),
            "lineage preserved"
        );
        assert!(b.values[1].is_const());
        assert!(
            matches!(b.values[2], BundleValue::Computed(_)),
            "derived loses lineage"
        );
        assert!(b.values[3].is_const());
        // The computed column equals the random column plus ten, per repetition.
        for rep in 0..3 {
            let raw = b.values[0].value_at(rep).as_f64().unwrap();
            let shifted = b.values[2].value_at(rep).as_f64().unwrap();
            assert!((shifted - raw - 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn hash_join_on_deterministic_keys() {
        let catalog = catalog();
        let mut exec = Executor::new();
        let plan = losses_plan().join(PlanNode::scan("regions"), vec![("cid", "cid")]);
        let set = exec
            .execute(&plan, &catalog, &ExecOptions::monte_carlo(7, 2))
            .unwrap();
        // cid 1 joins once, cid 2 joins twice, cid 3 never joins => 3 bundles.
        assert_eq!(set.len(), 3);
        assert_eq!(set.schema.names(), vec!["cid", "val", "cid_1", "region"]);
        // Every joined bundle keeps the random attribute's lineage.
        assert!(set
            .bundles
            .iter()
            .all(|b| matches!(b.values[1], BundleValue::Random { .. })));
    }

    #[test]
    fn join_on_random_attribute_requires_split() {
        let catalog = catalog();
        let mut exec = Executor::new();
        let plan = losses_plan().join(PlanNode::scan("regions"), vec![("val", "cid")]);
        let err = exec.execute(&plan, &catalog, &ExecOptions::monte_carlo(7, 2));
        assert!(err.is_err());
    }

    #[test]
    fn split_enumerates_discrete_random_values() {
        // A discrete uncertain attribute with two categories: Split must
        // produce one bundle per category with complementary presence.
        let mut catalog = Catalog::new();
        let param = TableBuilder::new(Schema::new(vec![
            Field::int64("id"),
            Field::float64("w_young"),
            Field::float64("w_old"),
        ]))
        .row([Value::Int64(1), Value::Float64(0.5), Value::Float64(0.5)])
        .build()
        .unwrap();
        catalog.register("people", param).unwrap();
        let spec = RandomTableSpec {
            name: "ages".into(),
            param_table: "people".into(),
            vg: Arc::new(DiscreteVg::new(vec![Value::Int64(20), Value::Int64(21)])),
            vg_params: vec![Expr::col("w_young"), Expr::col("w_old")],
            columns: vec![
                OutputColumn::Param {
                    source: "id".into(),
                    as_name: "id".into(),
                },
                OutputColumn::Vg {
                    vg_col: 0,
                    as_name: "age".into(),
                },
            ],
            table_tag: 3,
        };
        let mut exec = Executor::new();
        let n = 32;
        let plan = PlanNode::random_table(spec).split("age");
        let set = exec
            .execute(&plan, &catalog, &ExecOptions::monte_carlo(11, n))
            .unwrap();
        assert_eq!(set.len(), 2, "both ages should appear in 32 repetitions");
        // Presence masks partition the repetitions.
        let pres: Vec<&Vec<bool>> = set
            .bundles
            .iter()
            .map(|b| b.is_pres.as_ref().unwrap())
            .collect();
        for rep in 0..n {
            let count = pres.iter().filter(|m| m[rep]).count();
            assert_eq!(count, 1, "exactly one age per repetition");
        }
        // Split columns are now constants, so joining on them is legal.
        assert!(set.bundles.iter().all(|b| b.values[1].is_const()));
    }

    #[test]
    fn split_passthrough_for_constant_columns() {
        let catalog = catalog();
        let mut exec = Executor::new();
        let plan = losses_plan().split("cid");
        let set = exec
            .execute(&plan, &catalog, &ExecOptions::monte_carlo(7, 4))
            .unwrap();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn missing_tables_and_columns_error() {
        let catalog = catalog();
        let mut exec = Executor::new();
        assert!(exec
            .execute(
                &PlanNode::scan("nope"),
                &catalog,
                &ExecOptions::monte_carlo(1, 1)
            )
            .is_err());
        let plan = losses_plan().filter(Expr::col("nonexistent").gt(Expr::lit(0.0)));
        assert!(exec
            .execute(&plan, &catalog, &ExecOptions::monte_carlo(1, 1))
            .is_err());
        let plan =
            PlanNode::scan("means").join(PlanNode::scan("regions"), Vec::<(&str, &str)>::new());
        assert!(exec
            .execute(&plan, &catalog, &ExecOptions::monte_carlo(1, 1))
            .is_err());
    }
}
