//! Scalar expressions over named columns.
//!
//! Expressions appear in three places in an MCDB-R plan: selection
//! predicates, projection lists, and the argument of the final aggregate
//! (e.g. `SUM(emp2.sal - emp1.sal)` in the salary-inversion query of §5).
//! The same [`Expr`] type serves all three; evaluation is against a
//! `(Schema, row)` pair so the engine can evaluate an expression per Monte
//! Carlo repetition (MCDB) or per candidate stream value (the Gibbs Looper).

use std::fmt;

use mcdbr_storage::{Error, Result, Schema, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Equality (SQL semantics: NULL never equal).
    Eq,
    /// Inequality.
    NotEq,
    /// Less-than.
    Lt,
    /// Less-than-or-equal.
    LtEq,
    /// Greater-than.
    Gt,
    /// Greater-than-or-equal.
    GtEq,
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Literal.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `self + rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Add, self, rhs)
    }

    /// `self - rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Sub, self, rhs)
    }

    /// `self * rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Mul, self, rhs)
    }

    /// `self / rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Div, self, rhs)
    }

    /// `self = rhs`
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Eq, self, rhs)
    }

    /// `self <> rhs`
    pub fn not_eq(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::NotEq, self, rhs)
    }

    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Lt, self, rhs)
    }

    /// `self <= rhs`
    pub fn lt_eq(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::LtEq, self, rhs)
    }

    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Gt, self, rhs)
    }

    /// `self >= rhs`
    pub fn gt_eq(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::GtEq, self, rhs)
    }

    /// `self AND rhs`
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::And, self, rhs)
    }

    /// `self OR rhs`
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Or, self, rhs)
    }

    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// All column names referenced by this expression, in first-appearance
    /// order, without duplicates.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Column(name) => {
                if !out.contains(&name.as_str()) {
                    out.push(name.as_str());
                }
            }
            Expr::Literal(_) => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            Expr::Not(inner) => inner.collect_columns(out),
        }
    }

    /// Evaluate against a row of values described by `schema`.
    pub fn eval(&self, schema: &Schema, row: &[Value]) -> Result<Value> {
        match self {
            Expr::Column(name) => {
                let idx = schema.index_of(name)?;
                Ok(row[idx].clone())
            }
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Not(inner) => {
                let v = inner.eval(schema, row)?;
                Ok(Value::Bool(!v.as_bool()?))
            }
            Expr::Binary { op, lhs, rhs } => {
                // Short-circuit the logical operators.
                match op {
                    BinaryOp::And => {
                        if !lhs.eval(schema, row)?.as_bool()? {
                            return Ok(Value::Bool(false));
                        }
                        return Ok(Value::Bool(rhs.eval(schema, row)?.as_bool()?));
                    }
                    BinaryOp::Or => {
                        if lhs.eval(schema, row)?.as_bool()? {
                            return Ok(Value::Bool(true));
                        }
                        return Ok(Value::Bool(rhs.eval(schema, row)?.as_bool()?));
                    }
                    _ => {}
                }
                let l = lhs.eval(schema, row)?;
                let r = rhs.eval(schema, row)?;
                match op {
                    BinaryOp::Add => l.add(&r),
                    BinaryOp::Sub => l.sub(&r),
                    BinaryOp::Mul => l.mul(&r),
                    BinaryOp::Div => l.div(&r),
                    BinaryOp::Eq => Ok(Value::Bool(l.sql_eq(&r))),
                    BinaryOp::NotEq => {
                        if l.is_null() || r.is_null() {
                            Ok(Value::Bool(false))
                        } else {
                            Ok(Value::Bool(!l.sql_eq(&r)))
                        }
                    }
                    BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
                        if l.is_null() || r.is_null() {
                            return Ok(Value::Bool(false));
                        }
                        let ord = compare(&l, &r)?;
                        let res = match op {
                            BinaryOp::Lt => ord.is_lt(),
                            BinaryOp::LtEq => ord.is_le(),
                            BinaryOp::Gt => ord.is_gt(),
                            BinaryOp::GtEq => ord.is_ge(),
                            _ => unreachable!(),
                        };
                        Ok(Value::Bool(res))
                    }
                    BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
                }
            }
        }
    }

    /// Evaluate as a boolean predicate.
    pub fn eval_bool(&self, schema: &Schema, row: &[Value]) -> Result<bool> {
        self.eval(schema, row)?.as_bool()
    }

    /// Evaluate as a numeric value.
    pub fn eval_f64(&self, schema: &Schema, row: &[Value]) -> Result<f64> {
        self.eval(schema, row)?.as_f64()
    }
}

/// Compare two values for ordering predicates; numbers compare numerically,
/// strings lexicographically, mixing the two is an error.
fn compare(l: &Value, r: &Value) -> Result<std::cmp::Ordering> {
    match (l, r) {
        (Value::Utf8(a), Value::Utf8(b)) => Ok(a.cmp(b)),
        (a, b) if a.is_numeric() && b.is_numeric() => Ok(a
            .as_f64()?
            .partial_cmp(&b.as_f64()?)
            .unwrap_or(std::cmp::Ordering::Equal)),
        (a, b) => Err(Error::InvalidOperation(format!(
            "cannot compare {} with {}",
            a.data_type(),
            b.data_type()
        ))),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => f.write_str(name),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Not(inner) => write!(f, "NOT ({inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_storage::Field;

    fn emp_schema() -> Schema {
        Schema::new(vec![
            Field::float64("sal"),
            Field::utf8("eid"),
            Field::float64("sal2"),
        ])
    }

    fn emp_row() -> Vec<Value> {
        vec![
            Value::Float64(24_000.0),
            Value::str("Sue"),
            Value::Float64(28_000.0),
        ]
    }

    #[test]
    fn column_and_literal() {
        let schema = emp_schema();
        let row = emp_row();
        assert_eq!(
            Expr::col("eid").eval(&schema, &row).unwrap(),
            Value::str("Sue")
        );
        assert_eq!(
            Expr::lit(5i64).eval(&schema, &row).unwrap(),
            Value::Int64(5)
        );
        assert!(Expr::col("bonus").eval(&schema, &row).is_err());
    }

    #[test]
    fn arithmetic() {
        let schema = emp_schema();
        let row = emp_row();
        // sal2 - sal, the salary-inversion aggregand of §5.
        let diff = Expr::col("sal2").sub(Expr::col("sal"));
        assert_eq!(diff.eval(&schema, &row).unwrap(), Value::Float64(4_000.0));
        let scaled = diff.mul(Expr::lit(0.5)).add(Expr::lit(1.0));
        assert_eq!(scaled.eval_f64(&schema, &row).unwrap(), 2_001.0);
        let ratio = Expr::col("sal2").div(Expr::col("sal"));
        assert!((ratio.eval_f64(&schema, &row).unwrap() - 28.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn comparisons() {
        let schema = emp_schema();
        let row = emp_row();
        assert!(Expr::col("sal2")
            .gt(Expr::col("sal"))
            .eval_bool(&schema, &row)
            .unwrap());
        assert!(Expr::col("sal")
            .lt(Expr::lit(90_000.0))
            .eval_bool(&schema, &row)
            .unwrap());
        assert!(!Expr::col("sal")
            .gt_eq(Expr::lit(90_000.0))
            .eval_bool(&schema, &row)
            .unwrap());
        assert!(Expr::col("eid")
            .eq(Expr::lit("Sue"))
            .eval_bool(&schema, &row)
            .unwrap());
        assert!(Expr::col("eid")
            .not_eq(Expr::lit("Joe"))
            .eval_bool(&schema, &row)
            .unwrap());
        assert!(Expr::col("sal")
            .lt_eq(Expr::lit(24_000.0))
            .eval_bool(&schema, &row)
            .unwrap());
        // Comparing a string with a number is a type error.
        assert!(Expr::col("eid")
            .lt(Expr::lit(1i64))
            .eval(&schema, &row)
            .is_err());
    }

    #[test]
    fn null_comparisons_are_false() {
        let schema = Schema::new(vec![Field::float64("x")]);
        let row = vec![Value::Null];
        assert!(!Expr::col("x")
            .gt(Expr::lit(0.0))
            .eval_bool(&schema, &row)
            .unwrap());
        assert!(!Expr::col("x")
            .eq(Expr::lit(0.0))
            .eval_bool(&schema, &row)
            .unwrap());
        assert!(!Expr::col("x")
            .not_eq(Expr::lit(0.0))
            .eval_bool(&schema, &row)
            .unwrap());
    }

    #[test]
    fn logic_and_short_circuit() {
        let schema = emp_schema();
        let row = emp_row();
        let p = Expr::col("sal")
            .lt(Expr::lit(90_000.0))
            .and(Expr::col("sal2").gt(Expr::lit(25_000.0)));
        assert!(p.eval_bool(&schema, &row).unwrap());
        let q = Expr::col("sal")
            .gt(Expr::lit(90_000.0))
            .or(Expr::col("sal2").gt(Expr::lit(25_000.0)));
        assert!(q.eval_bool(&schema, &row).unwrap());
        assert!(!p.clone().not().eval_bool(&schema, &row).unwrap());
        // Short-circuit: the right side would error (column missing) but the
        // left side already decides the result.
        let sc = Expr::lit(false).and(Expr::col("missing"));
        assert!(!sc.eval_bool(&schema, &row).unwrap());
        let sc = Expr::lit(true).or(Expr::col("missing"));
        assert!(sc.eval_bool(&schema, &row).unwrap());
    }

    #[test]
    fn referenced_columns_dedup_in_order() {
        let e = Expr::col("b")
            .add(Expr::col("a"))
            .mul(Expr::col("b").sub(Expr::lit(1.0)));
        assert_eq!(e.referenced_columns(), vec!["b", "a"]);
        assert!(Expr::lit(3i64).referenced_columns().is_empty());
    }

    #[test]
    fn display_round_trip_readability() {
        let e = Expr::col("sal2")
            .gt(Expr::col("sal"))
            .and(Expr::col("sal").lt(Expr::lit(90_000.0)));
        assert_eq!(e.to_string(), "((sal2 > sal) AND (sal < 90000))");
    }
}
