//! Tuple-bundle query execution for MCDB / MCDB-R.
//!
//! MCDB's central trick (paper §1) is that a query plan is executed *once*
//! over "tuple bundles" rather than once per Monte Carlo repetition: a bundle
//! encapsulates the instantiations of a tuple over all generated database
//! instances and carries the PRNG seeds used to produce them.  MCDB-R reuses
//! the same plan machinery but needs *lineage*: every random value must stay
//! linked to the stream (seed) it came from so the Gibbs Looper can later
//! re-assign stream positions to DB versions (paper §5, §6).
//!
//! This crate provides:
//!
//! * [`expr`] — scalar expressions and predicates over named columns.
//! * [`bundle`] — [`bundle::TupleBundle`] and [`bundle::BundleValue`]: rows
//!   whose attributes are either constant across repetitions or random with
//!   full stream lineage, plus per-repetition presence (`isPres`) arrays.
//! * [`plan`] — logical plan nodes (`TableScan`, `RandomTable`, `Filter`,
//!   `Project`, `Join`, `Split`) and the uncertain-table specification that
//!   mirrors the paper's `CREATE TABLE ... FOR EACH ... WITH ... AS VG(...)`
//!   statement (§2).
//! * [`stream_registry`] — the mapping from seed ids to their VG function and
//!   parameter row, which is what lets any stream position be (re)generated
//!   on demand — the foundation of both naive-MCDB instantiation and MCDB-R
//!   replenishment (§9).
//! * [`executor`] — executes a plan over a catalog, producing a
//!   [`bundle::BundleSet`]; instantiation ranges are explicit so the same
//!   code path serves MCDB (positions `0..n` = the n Monte Carlo repetitions)
//!   and MCDB-R (positions form the per-seed blocks carried by Gibbs tuples).
//! * [`aggregate`] — per-repetition evaluation of aggregation queries over a
//!   `BundleSet` (the MCDB baseline path) and the aggregate/predicate
//!   descriptors shared with the Gibbs Looper.
//! * [`session`] — two-phase execution: [`session::ExecSession::prepare`]
//!   runs the deterministic skeleton of a plan exactly once into a
//!   seed-independent [`session::PlanSkeleton`], binds it to the master seed
//!   (a [`session::DeterministicPrefix`]), and
//!   [`session::ExecSession::instantiate_block`] materializes only stream
//!   values per block.  This is how replenishment (paper §9) avoids re-paying
//!   for scans and joins, and the seam the engines build on.
//! * [`cache`] — [`cache::SessionCache`]: skeletons keyed by
//!   `(plan fingerprint, catalog epoch)`, so a repeated query — under *any*
//!   master seed — skips phase 1 entirely (LRU-bounded).
//! * [`backend`] — the pluggable phase-2 execution seam:
//!   [`backend::ExecBackend`] with the in-process thread pool
//!   ([`backend::InProcessBackend`]) and the shard-partitioned strategy as
//!   implementations, selected per session (`MCDBR_SHARDS` picks the
//!   default).
//! * [`shard`] — [`shard::ShardedBackend`]: a block's work partitioned into
//!   self-describing [`shard::ShardTask`]s (`skeleton + master seed +
//!   StreamKey range + block window`), merged back in canonical key order —
//!   bit-identical to in-process execution for every shard count, and the
//!   stepping stone to multi-process dispatch.
//! * [`par`] — the deterministic parallel fan-out used by phase-2
//!   instantiation and per-repetition aggregation (bit-identical results for
//!   every thread count).
//! * [`pool`] — [`pool::BlockBufferPool`]: reusable columnar
//!   [`mcdbr_storage::ColumnBlock`] buffers for phase 2.  Streams are
//!   materialized by the batched `VgFunction::generate_block_into` path
//!   straight into pooled typed buffers, so replenishment rounds, repeated
//!   queries, and shard tasks stop re-paying the per-position allocation
//!   bill; `bytes_materialized` / `buffer_reuses` counters surface the
//!   effect end to end.

#![warn(missing_docs)]

pub mod aggregate;
pub mod backend;
pub mod bundle;
pub mod cache;
pub mod cancel;
pub mod executor;
pub mod expr;
pub mod kernels;
pub mod par;
pub mod plan;
pub mod pool;
pub mod session;
pub mod shard;
pub mod stream_registry;

pub use aggregate::{
    aggregate_rep_range, merge_rep_partials, AggFunc, AggPartial, AggregateSpec, QueryResultSamples,
};
pub use backend::{
    default_backend, default_backend_kind, default_workers, install_default_backend, BackendKind,
    ExecBackend, InProcessBackend, ShardStats,
};
pub use bundle::{BundleSet, BundleValue, TupleBundle, ValueChain};
pub use cache::SessionCache;
pub use cancel::CancelToken;
pub use executor::{ExecOptions, Executor};
pub use expr::{BinaryOp, Expr};
pub use kernels::{kernel_mode, set_kernel_mode, KernelMode};
pub use plan::{JoinType, PlanNode, RandomTableSpec};
pub use pool::BlockBufferPool;
pub use session::{instantiate_block_rows, DeterministicPrefix, ExecSession, PlanSkeleton};
pub use shard::{plan_shards, ShardOutput, ShardTask, ShardedBackend};
pub use stream_registry::{SkeletonRegistry, StreamRegistry, StreamSource};
