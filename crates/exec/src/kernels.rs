//! Vectorized (column-at-a-time) expression kernels for phase 2.
//!
//! The scalar evaluator in [`crate::expr`] is the semantic referee: it
//! defines NaN/null conventions, error cases, and `Int64` overflow checking.
//! This module compiles the *error-free subset* of those semantics into
//! branchless column kernels — packed-bitmap predicate masks and `f64`
//! value lanes — and **refuses** (returns `None`) whenever the scalar path
//! could error or take a type-dependent branch the kernels do not model.
//! A `None` simply routes the caller to the retained scalar loop, so the
//! vectorized path is bit-identical to the scalar path wherever it engages:
//!
//! * Comparisons lower to [`CmpOp`] lanes, which mirror `partial_cmp`-with-
//!   `Equal`-fallback for orderings and IEEE equality for `=`/`<>`.
//! * A null operand makes any comparison false; null bitmaps are applied
//!   with one `and_not` per side, after the branchless compare.
//! * `And`/`Or`/`Not` combine masks word-at-a-time.  The scalar evaluator
//!   short-circuits, but every operand this module agrees to compile is
//!   pure and error-free on all rows, so eager evaluation is equivalent.
//! * Arithmetic vectorizes as `f64` only when the scalar path would have
//!   produced `Float64` on every row: both-`Int64` operands (the checked
//!   integer path), nullable lanes (scalar errors on `Null` arithmetic),
//!   and zero divisors (scalar errors) all decline.
//!
//! The global [`KernelMode`] lets tests and benches force the scalar path;
//! both modes produce identical bundles, so flipping it mid-flight only
//! affects speed, never results.

use std::sync::atomic::{AtomicU8, Ordering};

use mcdbr_storage::selvec::{cmp_const_f64, cmp_f64_const, cmp_f64_f64};
use mcdbr_storage::{CmpOp, Column, DataType, Mask, Schema, Value};

use crate::expr::{BinaryOp, Expr};

/// Whether phase 2 may use the vectorized kernels or must take the scalar
/// row loop.  Process-wide, because the ablation benches and determinism
/// tests compare whole executions under each mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Vectorize wherever the compiled subset covers the expression
    /// (the default); fall back to the scalar loop elsewhere.
    Auto,
    /// Always take the scalar loop — the referee configuration.
    ForceScalar,
}

static KERNEL_MODE: AtomicU8 = AtomicU8::new(0);

/// Set the process-wide kernel mode.  Safe to flip at any point: both modes
/// produce bit-identical results (the determinism suite pins this), so the
/// switch only selects an implementation.
pub fn set_kernel_mode(mode: KernelMode) {
    KERNEL_MODE.store(mode as u8, Ordering::Relaxed);
}

/// The current process-wide kernel mode.
pub fn kernel_mode() -> KernelMode {
    match KERNEL_MODE.load(Ordering::Relaxed) {
        0 => KernelMode::Auto,
        _ => KernelMode::ForceScalar,
    }
}

pub(crate) fn vectorized_enabled() -> bool {
    kernel_mode() == KernelMode::Auto
}

/// One input lane of an expression: a per-row column or a broadcast
/// constant, positionally matching the expression's schema.
#[derive(Clone, Copy)]
pub enum Lane<'a> {
    /// Every row sees this one value (a bundle constant).
    Const(&'a Value),
    /// Per-row values backed by a column.
    Col(&'a Column),
}

/// A numeric value lane: per-row `f64`s (borrowed straight from a `Float64`
/// column, or widened/computed into a scratch vector) or one broadcast
/// constant, plus the positions that are SQL NULL.
enum FVals<'a> {
    Const(f64),
    Slice(&'a [f64]),
    Owned(Vec<f64>),
}

struct NumLane<'a> {
    vals: FVals<'a>,
    /// Set bits are NULL rows (their `vals` entries are placeholders).
    /// `None` means null-free.  Only comparison consumers accept nulls.
    nulls: Option<Mask>,
}

impl NumLane<'_> {
    fn slice(&self) -> Option<&[f64]> {
        match &self.vals {
            FVals::Const(_) => None,
            FVals::Slice(s) => Some(s),
            FVals::Owned(v) => Some(v),
        }
    }
}

/// Compile + evaluate `expr` as a predicate over `n` rows, producing a
/// packed mask, or `None` when the expression leaves the vectorizable
/// subset (caller falls back to the scalar row loop).  `lanes[i]` backs
/// `schema` column `i`.
pub fn predicate_mask(expr: &Expr, schema: &Schema, lanes: &[Lane<'_>], n: usize) -> Option<Mask> {
    if !vectorized_enabled() {
        return None;
    }
    eval_bool(expr, schema, lanes, n)
}

/// Compile + evaluate `expr` as a per-row value column.  Engages only when
/// the root guarantees a fixed output type on every row — `Float64` for
/// vectorized arithmetic, `Bool` for predicates — so the produced values
/// are exactly what the scalar evaluator would box.
pub fn computed_column(
    expr: &Expr,
    schema: &Schema,
    lanes: &[Lane<'_>],
    n: usize,
) -> Option<Column> {
    if !vectorized_enabled() {
        return None;
    }
    match expr {
        Expr::Binary { op, .. } if op.is_arithmetic() => {
            let lane = eval_num(expr, schema, lanes, n, false)?;
            let mut col = Column::default();
            match &lane.vals {
                FVals::Const(c) => {
                    for _ in 0..n {
                        col.push_f64(*c);
                    }
                }
                FVals::Slice(s) => {
                    for &v in *s {
                        col.push_f64(v);
                    }
                }
                FVals::Owned(v) => {
                    for &v in v {
                        col.push_f64(v);
                    }
                }
            }
            Some(col)
        }
        Expr::Not(_) => mask_to_bool_column(eval_bool(expr, schema, lanes, n)?, n),
        Expr::Binary { op, .. } if op.is_comparison() || op.is_logical() => {
            mask_to_bool_column(eval_bool(expr, schema, lanes, n)?, n)
        }
        _ => None,
    }
}

/// A compiled numeric lane: one broadcast constant (`COUNT(*)`'s `lit(1)`
/// never materializes a per-repetition vector) or per-row `f64`s.
pub enum NumVals {
    /// One value broadcast to every row.
    Const(f64),
    /// Per-row values.
    Col(Vec<f64>),
}

/// Compile + evaluate `expr` as null-free per-row numerics (the aggregand
/// path: the scalar referee is `expr.eval(..)?.as_f64()`).  Boolean roots
/// widen to `1.0`/`0.0` exactly like [`Value::as_f64`] — but only roots
/// guaranteed to produce `Bool` on every row (`NOT`, comparisons,
/// `AND`/`OR`).  A bare `Bool` column root must go through `eval_num`
/// instead: `eval_bool` maps null rows to `false` (the `as_bool`
/// convention), while `as_f64(Null)` errors, so compiling one here would
/// diverge from the scalar path.
pub fn numeric_values(
    expr: &Expr,
    schema: &Schema,
    lanes: &[Lane<'_>],
    n: usize,
) -> Option<NumVals> {
    if !vectorized_enabled() {
        return None;
    }
    if let Some(lane) = eval_num(expr, schema, lanes, n, false) {
        return Some(match lane.vals {
            FVals::Const(c) => NumVals::Const(c),
            FVals::Slice(s) => NumVals::Col(s.to_vec()),
            FVals::Owned(v) => NumVals::Col(v),
        });
    }
    let bool_root = matches!(expr, Expr::Not(_))
        || matches!(expr, Expr::Binary { op, .. } if op.is_comparison() || op.is_logical());
    if !bool_root {
        return None;
    }
    let mask = eval_bool(expr, schema, lanes, n)?;
    Some(NumVals::Col(
        (0..n)
            .map(|i| if mask.get(i) { 1.0 } else { 0.0 })
            .collect(),
    ))
}

fn mask_to_bool_column(mask: Mask, n: usize) -> Option<Column> {
    let mut col = Column::default();
    for i in 0..n {
        col.push_bool(mask.get(i));
    }
    Some(col)
}

impl BinaryOp {
    fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div
        )
    }

    fn is_comparison(self) -> bool {
        self.cmp_op().is_some()
    }

    fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    fn cmp_op(self) -> Option<CmpOp> {
        Some(match self {
            BinaryOp::Eq => CmpOp::Eq,
            BinaryOp::NotEq => CmpOp::NotEq,
            BinaryOp::Lt => CmpOp::Lt,
            BinaryOp::LtEq => CmpOp::LtEq,
            BinaryOp::Gt => CmpOp::Gt,
            BinaryOp::GtEq => CmpOp::GtEq,
            _ => return None,
        })
    }
}

/// Resolve a `Column` reference to its lane, or bail on unknown names
/// (scalar will produce the error).
fn lane_of<'a>(name: &str, schema: &Schema, lanes: &'a [Lane<'a>]) -> Option<Lane<'a>> {
    let idx = schema.index_of(name).ok()?;
    lanes.get(idx).copied()
}

/// True when the scalar evaluator could see `Value::Int64` from this node —
/// the condition under which binary arithmetic takes the checked-integer
/// path instead of `Float64`.
fn could_be_int64(expr: &Expr, schema: &Schema, lanes: &[Lane<'_>]) -> bool {
    match expr {
        Expr::Literal(v) => matches!(v, Value::Int64(_)),
        Expr::Column(name) => match lane_of(name, schema, lanes) {
            Some(Lane::Const(v)) => matches!(v, Value::Int64(_)),
            Some(Lane::Col(col)) => !matches!(
                col.data_type(),
                Some(DataType::Float64) | Some(DataType::Bool)
            ),
            None => true,
        },
        // Vectorized arithmetic sub-nodes produce Float64 on every row (the
        // both-Int64 case declines below), comparisons produce Bool; other
        // shapes decline in `eval_num` anyway.
        Expr::Binary { op, .. } => !op.is_arithmetic() && !op.is_comparison(),
        Expr::Not(_) => false,
    }
}

/// True when the node is SQL NULL on every row (a comparison against it is
/// false everywhere; arithmetic over it errors, so only `eval_bool`'s
/// comparison arm consults this).
fn always_null(expr: &Expr, schema: &Schema, lanes: &[Lane<'_>]) -> bool {
    match expr {
        Expr::Literal(Value::Null) => true,
        Expr::Column(name) => {
            matches!(lane_of(name, schema, lanes), Some(Lane::Const(Value::Null)))
        }
        _ => false,
    }
}

/// Evaluate a numeric sub-expression into an `f64` lane.  `allow_nulls`
/// is true only for direct comparison operands (a comparison maps null
/// rows to false); arithmetic over a nullable lane declines, because the
/// scalar path errors on the first null row.
fn eval_num<'a>(
    expr: &Expr,
    schema: &Schema,
    lanes: &'a [Lane<'a>],
    n: usize,
    allow_nulls: bool,
) -> Option<NumLane<'a>> {
    let lane = match expr {
        Expr::Literal(v) => NumLane {
            vals: FVals::Const(v.as_f64().ok()?),
            nulls: None,
        },
        Expr::Column(name) => match lane_of(name, schema, lanes)? {
            Lane::Const(v) => NumLane {
                vals: FVals::Const(v.as_f64().ok()?),
                nulls: None,
            },
            Lane::Col(col) => {
                if col.len() != n {
                    return None;
                }
                let nulls = if col.nulls().any() {
                    Some(col.null_mask())
                } else {
                    None
                };
                let vals = match col.data_type()? {
                    DataType::Float64 => FVals::Slice(col.f64_raw()?),
                    // Null placeholders widen to 0.0 under the mask.
                    DataType::Int64 => {
                        FVals::Owned(col.i64_raw()?.iter().map(|&i| i as f64).collect())
                    }
                    DataType::Bool => FVals::Owned(
                        col.bool_raw()?
                            .iter()
                            .map(|&b| if b { 1.0 } else { 0.0 })
                            .collect(),
                    ),
                    _ => return None,
                };
                NumLane { vals, nulls }
            }
        },
        Expr::Binary { op, lhs, rhs } if op.is_arithmetic() => {
            // Both-Int64 would take the scalar checked-integer path.
            if could_be_int64(lhs, schema, lanes) && could_be_int64(rhs, schema, lanes) {
                return None;
            }
            let l = eval_num(lhs, schema, lanes, n, false)?;
            let r = eval_num(rhs, schema, lanes, n, false)?;
            if *op == BinaryOp::Div {
                // Scalar errors on any zero divisor; let it.
                let any_zero = match &r.vals {
                    FVals::Const(c) => *c == 0.0,
                    FVals::Slice(s) => s.contains(&0.0),
                    FVals::Owned(v) => v.contains(&0.0),
                };
                if any_zero {
                    return None;
                }
            }
            let f = match op {
                BinaryOp::Add => |a: f64, b: f64| a + b,
                BinaryOp::Sub => |a: f64, b: f64| a - b,
                BinaryOp::Mul => |a: f64, b: f64| a * b,
                BinaryOp::Div => |a: f64, b: f64| a / b,
                _ => unreachable!("is_arithmetic"),
            };
            let vals = match (&l.vals, &r.vals) {
                (FVals::Const(a), FVals::Const(b)) => FVals::Const(f(*a, *b)),
                (FVals::Const(a), _) => {
                    let rs = r.slice().expect("non-const lane has rows");
                    FVals::Owned(rs.iter().map(|&b| f(*a, b)).collect())
                }
                (_, FVals::Const(b)) => {
                    let ls = l.slice().expect("non-const lane has rows");
                    FVals::Owned(ls.iter().map(|&a| f(a, *b)).collect())
                }
                (_, _) => {
                    let ls = l.slice().expect("non-const lane has rows");
                    let rs = r.slice().expect("non-const lane has rows");
                    if ls.len() != rs.len() {
                        return None;
                    }
                    FVals::Owned(ls.iter().zip(rs).map(|(&a, &b)| f(a, b)).collect())
                }
            };
            NumLane { vals, nulls: None }
        }
        _ => return None,
    };
    if !allow_nulls && lane.nulls.is_some() {
        return None;
    }
    Some(lane)
}

/// Evaluate a boolean sub-expression into a packed mask, or decline.
fn eval_bool(expr: &Expr, schema: &Schema, lanes: &[Lane<'_>], n: usize) -> Option<Mask> {
    match expr {
        Expr::Literal(Value::Bool(b)) => Some(if *b { Mask::ones(n) } else { Mask::zeros(n) }),
        // `as_bool(Null)` is false, not an error.
        Expr::Literal(Value::Null) => Some(Mask::zeros(n)),
        Expr::Literal(_) => None,
        Expr::Column(name) => match lane_of(name, schema, lanes)? {
            Lane::Const(Value::Bool(b)) => Some(if *b { Mask::ones(n) } else { Mask::zeros(n) }),
            Lane::Const(Value::Null) => Some(Mask::zeros(n)),
            Lane::Const(_) => None,
            Lane::Col(col) => {
                if col.len() != n {
                    return None;
                }
                match col.data_type() {
                    // Null rows hold the `false` placeholder, which is what
                    // `as_bool(Null)` evaluates to — no mask-off needed.
                    Some(DataType::Bool) => Some(Mask::from_bools(col.bool_raw()?)),
                    // An untyped column of n rows is all-null.
                    None if !matches!(col.data(), mcdbr_storage::ColumnData::Mixed(_)) => {
                        Some(Mask::zeros(n))
                    }
                    _ => None,
                }
            }
        },
        Expr::Not(inner) => {
            let mut m = eval_bool(inner, schema, lanes, n)?;
            m.not_assign();
            Some(m)
        }
        Expr::Binary { op, lhs, rhs } => {
            if let Some(cmp) = op.cmp_op() {
                // A null side makes every row false under all six operators
                // (sql_eq and the ordering prelude both test nulls first).
                if always_null(lhs, schema, lanes) || always_null(rhs, schema, lanes) {
                    return Some(Mask::zeros(n));
                }
                let l = eval_num(lhs, schema, lanes, n, true)?;
                let r = eval_num(rhs, schema, lanes, n, true)?;
                let mut m = Mask::default();
                match (&l.vals, &r.vals) {
                    (FVals::Const(a), FVals::Const(b)) => {
                        m = if cmp.lane(*a, *b) {
                            Mask::ones(n)
                        } else {
                            Mask::zeros(n)
                        };
                    }
                    (FVals::Const(a), _) => {
                        cmp_const_f64(cmp, *a, r.slice().expect("rows"), &mut m)
                    }
                    (_, FVals::Const(b)) => {
                        cmp_f64_const(cmp, l.slice().expect("rows"), *b, &mut m)
                    }
                    (_, _) => {
                        let ls = l.slice().expect("rows");
                        let rs = r.slice().expect("rows");
                        if ls.len() != rs.len() {
                            return None;
                        }
                        cmp_f64_f64(cmp, ls, rs, &mut m);
                    }
                }
                if let Some(ln) = &l.nulls {
                    m.and_not_assign(ln);
                }
                if let Some(rn) = &r.nulls {
                    m.and_not_assign(rn);
                }
                return Some(m);
            }
            match op {
                // Both operands compile => both are pure and error-free on
                // every row, so the scalar short-circuit is unobservable.
                BinaryOp::And => {
                    let mut l = eval_bool(lhs, schema, lanes, n)?;
                    let r = eval_bool(rhs, schema, lanes, n)?;
                    l.and_assign(&r);
                    Some(l)
                }
                BinaryOp::Or => {
                    let mut l = eval_bool(lhs, schema, lanes, n)?;
                    let r = eval_bool(rhs, schema, lanes, n)?;
                    l.or_assign(&r);
                    Some(l)
                }
                _ => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_storage::Field;

    /// The kernel mode is process-global; tests that read or flip it take
    /// this lock so the parallel test runner cannot interleave them.
    static MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn schema(names: &[&str]) -> Schema {
        Schema::new(
            names
                .iter()
                .map(|&n| Field::new(n, DataType::Float64))
                .collect(),
        )
    }

    fn f64_col(vals: &[f64]) -> Column {
        let mut c = Column::default();
        for &v in vals {
            c.push_f64(v);
        }
        c
    }

    /// The scalar referee: evaluate the expression row-wise.
    fn scalar_mask(expr: &Expr, schema: &Schema, lanes: &[Lane<'_>], n: usize) -> Vec<bool> {
        (0..n)
            .map(|i| {
                let row: Vec<Value> = lanes
                    .iter()
                    .map(|l| match l {
                        Lane::Const(v) => (*v).clone(),
                        Lane::Col(c) => c.value_at(i),
                    })
                    .collect();
                expr.eval_bool(schema, &row).unwrap()
            })
            .collect()
    }

    #[test]
    fn vectorized_predicates_match_scalar_including_nan_and_null() {
        let _guard = MODE_LOCK.lock().unwrap();
        let s = schema(&["a", "b"]);
        let mut a = Column::default();
        for v in [1.0, f64::NAN, -2.0, 0.0] {
            a.push_f64(v);
        }
        a.push_null();
        let b = f64_col(&[0.5, 0.5, -2.0, f64::NAN, 3.0]);
        let lanes = [Lane::Col(&a), Lane::Col(&b)];
        let exprs = [
            Expr::col("a").lt(Expr::col("b")),
            Expr::col("a").lt_eq(Expr::col("b")),
            Expr::col("a").eq(Expr::col("b")),
            Expr::col("a").not_eq(Expr::col("b")),
            Expr::col("a").gt_eq(Expr::lit(Value::Float64(0.0))),
            Expr::col("a")
                .lt(Expr::lit(Value::Float64(1.5)))
                .and(Expr::col("b").gt(Expr::lit(Value::Float64(-3.0)))),
            Expr::col("a")
                .gt(Expr::lit(Value::Float64(0.0)))
                .or(Expr::col("b").lt(Expr::lit(Value::Float64(0.0))))
                .not(),
            Expr::col("a").eq(Expr::lit(Value::Null)),
        ];
        for expr in &exprs {
            let mask = predicate_mask(expr, &s, &lanes, 5).expect("in the vectorized subset");
            let want = scalar_mask(expr, &s, &lanes, 5);
            for (i, &w) in want.iter().enumerate() {
                assert_eq!(mask.get(i), w, "{expr} row {i}");
            }
        }
    }

    #[test]
    fn arithmetic_compiles_only_when_scalar_is_float_and_error_free() {
        let _guard = MODE_LOCK.lock().unwrap();
        let s = schema(&["a", "b"]);
        let a = f64_col(&[2.0, 4.0, -1.0]);
        let b = f64_col(&[1.0, 0.5, 2.0]);
        let lanes = [Lane::Col(&a), Lane::Col(&b)];
        // (a * 2 + b / 4) compiles and matches scalar bit-for-bit.
        let expr = Expr::col("a")
            .mul(Expr::lit(Value::Float64(2.0)))
            .add(Expr::col("b").div(Expr::lit(Value::Float64(4.0))));
        let col = computed_column(&expr, &s, &lanes, 3).expect("vectorizable");
        for i in 0..3 {
            let row = [a.value_at(i), b.value_at(i)];
            assert_eq!(col.value_at(i), expr.eval(&s, &row).unwrap(), "row {i}");
        }
        // Division by a lane containing zero declines (scalar errors).
        let z = f64_col(&[1.0, 0.0, 2.0]);
        let zl = [Lane::Col(&a), Lane::Col(&z)];
        assert!(computed_column(&Expr::col("a").div(Expr::col("b")), &s, &zl, 3).is_none());
        // Int64 literals on both sides would take the checked-int path.
        let ii = Expr::lit(Value::Int64(3)).add(Expr::lit(Value::Int64(4)));
        assert!(computed_column(&ii, &s, &lanes, 3).is_none());
    }

    #[test]
    fn force_scalar_mode_disables_compilation() {
        let _guard = MODE_LOCK.lock().unwrap();
        let s = schema(&["a"]);
        let a = f64_col(&[1.0, 2.0]);
        let lanes = [Lane::Col(&a)];
        let expr = Expr::col("a").gt(Expr::lit(Value::Float64(1.5)));
        set_kernel_mode(KernelMode::ForceScalar);
        assert!(predicate_mask(&expr, &s, &lanes, 2).is_none());
        set_kernel_mode(KernelMode::Auto);
        assert!(predicate_mask(&expr, &s, &lanes, 2).is_some());
    }
}
