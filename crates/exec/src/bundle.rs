//! Tuple bundles: rows whose attributes are constant or random-with-lineage.
//!
//! An MCDB tuple bundle (paper §1) "encapsulates the instantiations of a
//! tuple over a set of generated DB instances and carries along the
//! pseudorandom number seeds used by the VG functions to instantiate the
//! uncertain data values".  A Gibbs tuple (paper §5) additionally needs
//! lineage — which stream each random value came from — and carries a block
//! of materialized stream values rather than exactly one value per Monte
//! Carlo repetition.
//!
//! [`TupleBundle`] covers both: each attribute is a [`BundleValue`], either
//! * [`BundleValue::Const`] — the same value in every DB instance,
//! * [`BundleValue::Random`] — full lineage (seed, VG output row/column,
//!   block base position) plus the materialized block of values, or
//! * [`BundleValue::Computed`] — per-repetition values with no lineage, the
//!   result of projecting an expression over random attributes (allowed in
//!   the MCDB baseline path, rejected by the Gibbs Looper which must keep
//!   lineage intact).
//!
//! Presence (`isPres`, paper §5) is a per-repetition boolean vector: `None`
//! means "present in every instance".
//!
//! Since the end-to-end columnar migration, the materialized values behind
//! `Random` and `Computed` attributes live in a [`ValueChain`] — shared,
//! refcounted [`Column`] segments — instead of a boxed `Vec<Value>`.  The
//! bundle-set boundary is no longer a transpose-and-box: phase 2 hands each
//! bundle an `Arc` to the very column the VG kernel filled, joins fan the
//! same `Arc` out to every matching bundle, and the aggregation / looper /
//! dispatch layers read contiguous typed slices.

use std::sync::Arc;

use mcdbr_prng::SeedId;
use mcdbr_storage::{Column, Schema, Value};

use crate::stream_registry::StreamRegistry;

/// The materialized values of one random or computed attribute: an ordered
/// chain of shared, immutable column segments.
///
/// A freshly instantiated bundle holds exactly one segment — an `Arc` of the
/// column its VG kernel produced (or its projection computed).  Replenishment
/// runs [`ValueChain::append`] further segments for later stream positions,
/// so a Gibbs bundle that has been replenished `r` times holds `r + 1`
/// segments; reads cross segment boundaries transparently.  Sharing is the
/// point: a join that fans one stream block out to `m` bundles clones `m`
/// refcounts, not `m` value vectors.
///
/// Lifetime rule: segments are immutable from the moment they enter a chain.
/// Pooled generation buffers are therefore *copied once* into their `Arc`
/// segment at the bundle-set boundary (one memcpy per cell per block) and
/// the pooled buffer is released immediately — a chain never points into the
/// block pool.
#[derive(Debug, Clone, Default)]
pub struct ValueChain {
    segments: Segments,
    len: usize,
}

/// Segment storage: the overwhelmingly common single-segment chain (a bundle
/// that has never been replenished) is stored inline, so building one from an
/// `Arc` is a refcount bump with *zero* heap allocations; only replenishment
/// promotes a chain to the vector representation.
#[derive(Debug, Clone)]
enum Segments {
    One(Arc<Column>),
    Many(Vec<Arc<Column>>),
}

impl Default for Segments {
    fn default() -> Self {
        Segments::Many(Vec::new())
    }
}

impl Segments {
    fn as_slice(&self) -> &[Arc<Column>] {
        match self {
            Segments::One(col) => std::slice::from_ref(col),
            Segments::Many(cols) => cols,
        }
    }
}

impl ValueChain {
    /// An empty chain.
    pub fn new() -> Self {
        ValueChain::default()
    }

    /// A single-segment chain sharing `col` (no heap allocation).
    pub fn from_arc(col: Arc<Column>) -> Self {
        ValueChain {
            len: col.len(),
            segments: Segments::One(col),
        }
    }

    /// A single-segment chain owning `col`.
    pub fn from_column(col: Column) -> Self {
        Self::from_arc(Arc::new(col))
    }

    /// Build a chain from boxed values (the row-path and test boundary).
    pub fn from_values(values: &[Value]) -> Self {
        let mut col = Column::default();
        for v in values {
            col.push_value(v);
        }
        Self::from_column(col)
    }

    /// Build a single-segment `Float64` chain (test/bench convenience).
    pub fn from_f64s(values: impl IntoIterator<Item = f64>) -> Self {
        let mut col = Column::default();
        for v in values {
            col.push_f64(v);
        }
        Self::from_column(col)
    }

    /// Total number of materialized positions across all segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no positions are materialized.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column segments, in stream-position order.
    pub fn segments(&self) -> &[Arc<Column>] {
        self.segments.as_slice()
    }

    /// The sole segment of a single-segment chain (the common,
    /// never-replenished case every vectorized kernel fast-paths).
    pub fn as_single(&self) -> Option<&Arc<Column>> {
        match self.segments.as_slice() {
            [only] => Some(only),
            _ => None,
        }
    }

    /// The contiguous `f64` slice behind a single-segment, `Float64`-typed,
    /// null-free chain — the typed view the batched kernels consume.
    pub fn f64_slice(&self) -> Option<&[f64]> {
        self.as_single().and_then(|col| col.f64_slice())
    }

    /// The boxed value at position `idx` (a scalar copy, or a refcount bump
    /// for strings).  Single-segment chains resolve on the first probe.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the materialized chain — callers are
    /// expected to have instantiated enough positions.
    pub fn value_at(&self, idx: usize) -> Value {
        let mut off = idx;
        for seg in self.segments() {
            if off < seg.len() {
                return seg.value_at(off);
            }
            off -= seg.len();
        }
        panic!(
            "value index {idx} outside the materialized chain of {} positions",
            self.len
        );
    }

    /// Append `other`'s segments (replenishment: later stream positions).
    /// A single-segment chain is promoted to the vector representation here;
    /// everywhere else stays allocation-free.
    pub fn append(&mut self, other: ValueChain) {
        self.len += other.len;
        let ours = std::mem::take(&mut self.segments);
        self.segments = match (ours, other.segments) {
            (Segments::Many(mut a), Segments::One(b)) => {
                a.push(b);
                Segments::Many(a)
            }
            (Segments::Many(mut a), Segments::Many(b)) => {
                a.extend(b);
                Segments::Many(a)
            }
            (Segments::One(a), theirs) => {
                let mut merged = Vec::with_capacity(1 + theirs.as_slice().len());
                merged.push(a);
                match theirs {
                    Segments::One(b) => merged.push(b),
                    Segments::Many(b) => merged.extend(b),
                }
                Segments::Many(merged)
            }
        };
    }

    /// Materialize the whole chain as boxed values (wire flattening and
    /// test assertions only — the engine reads columns).
    pub fn to_values(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.len);
        for seg in self.segments() {
            out.extend(seg.values_out());
        }
        out
    }

    /// Iterate the chain's values in position order.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        self.segments()
            .iter()
            .flat_map(|seg| (0..seg.len()).map(move |i| seg.value_at(i)))
    }
}

impl FromIterator<Value> for ValueChain {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let mut col = Column::default();
        for v in iter {
            col.push_value(&v);
        }
        Self::from_column(col)
    }
}

/// Value-wise equality (the chain segmentation is an implementation detail:
/// one chain of two segments equals one chain of one segment holding the
/// same values).  Single-segment float chains compare slice-at-a-time.
impl PartialEq for ValueChain {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        if let (Some(a), Some(b)) = (self.f64_slice(), other.f64_slice()) {
            return a == b;
        }
        self.iter().eq(other.iter())
    }
}

/// One attribute of a tuple bundle.
#[derive(Debug, Clone, PartialEq)]
pub enum BundleValue {
    /// The attribute has the same value in every DB instance.
    Const(Value),
    /// A random attribute with lineage to its stream.
    Random {
        /// The stream (TS-seed) this attribute's values come from.
        seed: SeedId,
        /// Which row of the VG function's output table this attribute reads.
        vg_row: usize,
        /// Which column of the VG function's output table this attribute reads.
        vg_col: usize,
        /// Stream position of the chain's first value.
        base_pos: u64,
        /// Materialized chain of values for positions
        /// `base_pos .. base_pos + values.len()`.
        values: ValueChain,
    },
    /// Per-repetition values without lineage (derived by a projection).
    Computed(ValueChain),
}

impl BundleValue {
    /// Whether this attribute is constant across DB instances.
    pub fn is_const(&self) -> bool {
        matches!(self, BundleValue::Const(_))
    }

    /// The seed backing this attribute, if it is a lineaged random attribute.
    pub fn seed(&self) -> Option<SeedId> {
        match self {
            BundleValue::Random { seed, .. } => Some(*seed),
            _ => None,
        }
    }

    /// The value of this attribute in Monte Carlo repetition `rep`
    /// (equivalently, at block offset `rep` for a Gibbs block), boxed — a
    /// scalar copy or a string refcount bump.
    ///
    /// Panics if `rep` is outside the materialized chain — callers are
    /// expected to have instantiated enough positions (the executor always
    /// materializes exactly `num_reps` values in MCDB mode).
    pub fn value_at(&self, rep: usize) -> Value {
        match self {
            BundleValue::Const(v) => v.clone(),
            BundleValue::Random { values, .. } => values.value_at(rep),
            BundleValue::Computed(values) => values.value_at(rep),
        }
    }

    /// The value chain behind a random or computed attribute (`None` for
    /// constants) — the typed-slice entry point for vectorized kernels.
    pub fn chain(&self) -> Option<&ValueChain> {
        match self {
            BundleValue::Const(_) => None,
            BundleValue::Random { values, .. } => Some(values),
            BundleValue::Computed(values) => Some(values),
        }
    }

    /// Number of materialized values (None for constants, which cover any
    /// number of repetitions).
    pub fn materialized_len(&self) -> Option<usize> {
        self.chain().map(ValueChain::len)
    }
}

/// A tuple bundle: one logical tuple across all generated DB instances.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TupleBundle {
    /// The attributes.
    pub values: Vec<BundleValue>,
    /// Per-repetition presence (`isPres`); `None` = present everywhere.
    pub is_pres: Option<Vec<bool>>,
}

impl TupleBundle {
    /// A bundle whose attributes are all constants (a deterministic tuple).
    pub fn constant(values: Vec<Value>) -> Self {
        TupleBundle {
            values: values.into_iter().map(BundleValue::Const).collect(),
            is_pres: None,
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Whether every attribute is constant.
    pub fn is_fully_const(&self) -> bool {
        self.values.iter().all(BundleValue::is_const)
    }

    /// The distinct seeds referenced by this bundle's random attributes, in
    /// increasing order.  The smallest of these is the bundle's initial sort
    /// key in the GibbsLooper priority queue (paper §7).
    pub fn seeds(&self) -> Vec<SeedId> {
        let mut seeds: Vec<SeedId> = self.values.iter().filter_map(BundleValue::seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        seeds
    }

    /// Whether the bundle is present in repetition `rep`.
    pub fn is_present(&self, rep: usize) -> bool {
        match &self.is_pres {
            None => true,
            Some(flags) => flags.get(rep).copied().unwrap_or(false),
        }
    }

    /// Restrict presence by AND-ing in a per-repetition mask.
    pub fn restrict_presence(&mut self, mask: &[bool]) {
        match &mut self.is_pres {
            None => self.is_pres = Some(mask.to_vec()),
            Some(flags) => {
                for (f, m) in flags.iter_mut().zip(mask) {
                    *f = *f && *m;
                }
            }
        }
    }

    /// True if the bundle is absent from every one of the first `num_reps`
    /// repetitions, i.e. it can be dropped from an MCDB plan entirely.
    pub fn absent_everywhere(&self, num_reps: usize) -> bool {
        match &self.is_pres {
            None => false,
            Some(flags) => flags.iter().take(num_reps).all(|&p| !p),
        }
    }

    /// Materialize the row of this bundle for repetition `rep` (ignoring
    /// presence; callers check [`TupleBundle::is_present`] first).
    pub fn row_at(&self, rep: usize) -> Vec<Value> {
        self.values.iter().map(|v| v.value_at(rep)).collect()
    }

    /// [`TupleBundle::row_at`] into a caller-owned scratch buffer: the
    /// per-repetition aggregation loop visits every `(bundle, repetition)`
    /// pair, and reusing one buffer per repetition removes a heap
    /// allocation from each visit (the value clones themselves are copies
    /// for scalars and refcount bumps for strings).
    pub fn write_row_into(&self, rep: usize, out: &mut Vec<Value>) {
        out.clear();
        out.extend(self.values.iter().map(|v| v.value_at(rep)));
    }

    /// Concatenate two bundles (used by join operators).  Presence vectors
    /// are AND-ed.
    pub fn concat(&self, other: &TupleBundle) -> TupleBundle {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        let is_pres = match (&self.is_pres, &other.is_pres) {
            (None, None) => None,
            (Some(a), None) => Some(a.clone()),
            (None, Some(b)) => Some(b.clone()),
            (Some(a), Some(b)) => Some(a.iter().zip(b.iter()).map(|(x, y)| *x && *y).collect()),
        };
        TupleBundle { values, is_pres }
    }
}

/// The result of executing a plan over bundles.
#[derive(Debug, Clone)]
pub struct BundleSet {
    /// Output schema (column names / types of the bundles).
    pub schema: Schema,
    /// The bundles.
    pub bundles: Vec<TupleBundle>,
    /// Registry of every stream referenced by the bundles.
    pub registry: StreamRegistry,
    /// Number of Monte Carlo repetitions materialized per random attribute
    /// (MCDB mode), or the Gibbs block size (MCDB-R mode).
    pub num_reps: usize,
}

impl BundleSet {
    /// Count of bundles.
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// True if there are no bundles.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// All distinct seeds referenced across bundles, in increasing order.
    pub fn seeds(&self) -> Vec<SeedId> {
        let mut seeds: Vec<SeedId> = self.bundles.iter().flat_map(|b| b.seeds()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        seeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_attr(seed: SeedId, values: Vec<f64>) -> BundleValue {
        BundleValue::Random {
            seed,
            vg_row: 0,
            vg_col: 0,
            base_pos: 0,
            values: ValueChain::from_f64s(values),
        }
    }

    #[test]
    fn constant_bundles() {
        let b = TupleBundle::constant(vec![Value::Int64(1), Value::str("Sue")]);
        assert!(b.is_fully_const());
        assert_eq!(b.arity(), 2);
        assert!(b.seeds().is_empty());
        assert!(b.is_present(0) && b.is_present(99));
        assert_eq!(b.row_at(5), vec![Value::Int64(1), Value::str("Sue")]);
    }

    #[test]
    fn random_attribute_lineage_and_values() {
        let b = TupleBundle {
            values: vec![
                BundleValue::Const(Value::str("Joe")),
                random_attr(17, vec![2.59, 3.26, 2.23, 4.56]),
            ],
            is_pres: None,
        };
        assert!(!b.is_fully_const());
        assert_eq!(b.seeds(), vec![17]);
        assert_eq!(b.row_at(1), vec![Value::str("Joe"), Value::Float64(3.26)]);
        assert_eq!(b.values[1].materialized_len(), Some(4));
        assert_eq!(b.values[0].materialized_len(), None);
        assert_eq!(b.values[1].seed(), Some(17));
        assert_eq!(b.values[0].seed(), None);
    }

    #[test]
    fn seeds_are_sorted_and_deduped() {
        let b = TupleBundle {
            values: vec![
                random_attr(30, vec![1.0]),
                random_attr(10, vec![2.0]),
                random_attr(30, vec![3.0]),
            ],
            is_pres: None,
        };
        assert_eq!(b.seeds(), vec![10, 30]);
    }

    #[test]
    fn presence_restriction() {
        let mut b = TupleBundle::constant(vec![Value::Int64(1)]);
        b.restrict_presence(&[true, false, true, true]);
        assert!(b.is_present(0));
        assert!(!b.is_present(1));
        b.restrict_presence(&[true, true, false, true]);
        assert_eq!(b.is_pres, Some(vec![true, false, false, true]));
        assert!(!b.absent_everywhere(4));
        b.restrict_presence(&[false, false, false, false]);
        assert!(b.absent_everywhere(4));
        // Out-of-range repetitions are treated as absent once a mask exists.
        assert!(!b.is_present(10));
    }

    #[test]
    fn concat_ands_presence() {
        let mut a = TupleBundle::constant(vec![Value::Int64(1)]);
        a.restrict_presence(&[true, false]);
        let mut b = TupleBundle::constant(vec![Value::Int64(2)]);
        b.restrict_presence(&[true, true]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 2);
        assert_eq!(c.is_pres, Some(vec![true, false]));
        let d = TupleBundle::constant(vec![Value::Int64(3)]).concat(&TupleBundle::constant(vec![]));
        assert_eq!(d.is_pres, None);
    }

    #[test]
    fn bundle_set_seed_collection() {
        let set = BundleSet {
            schema: Schema::empty(),
            bundles: vec![
                TupleBundle {
                    values: vec![random_attr(5, vec![1.0])],
                    is_pres: None,
                },
                TupleBundle {
                    values: vec![random_attr(2, vec![1.0])],
                    is_pres: None,
                },
            ],
            registry: StreamRegistry::new(),
            num_reps: 1,
        };
        assert_eq!(set.seeds(), vec![2, 5]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }
}
