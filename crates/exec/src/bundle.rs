//! Tuple bundles: rows whose attributes are constant or random-with-lineage.
//!
//! An MCDB tuple bundle (paper §1) "encapsulates the instantiations of a
//! tuple over a set of generated DB instances and carries along the
//! pseudorandom number seeds used by the VG functions to instantiate the
//! uncertain data values".  A Gibbs tuple (paper §5) additionally needs
//! lineage — which stream each random value came from — and carries a block
//! of materialized stream values rather than exactly one value per Monte
//! Carlo repetition.
//!
//! [`TupleBundle`] covers both: each attribute is a [`BundleValue`], either
//! * [`BundleValue::Const`] — the same value in every DB instance,
//! * [`BundleValue::Random`] — full lineage (seed, VG output row/column,
//!   block base position) plus the materialized block of values, or
//! * [`BundleValue::Computed`] — per-repetition values with no lineage, the
//!   result of projecting an expression over random attributes (allowed in
//!   the MCDB baseline path, rejected by the Gibbs Looper which must keep
//!   lineage intact).
//!
//! Presence (`isPres`, paper §5) is a per-repetition boolean vector: `None`
//! means "present in every instance".

use mcdbr_prng::SeedId;
use mcdbr_storage::{Schema, Value};

use crate::stream_registry::StreamRegistry;

/// One attribute of a tuple bundle.
#[derive(Debug, Clone, PartialEq)]
pub enum BundleValue {
    /// The attribute has the same value in every DB instance.
    Const(Value),
    /// A random attribute with lineage to its stream.
    Random {
        /// The stream (TS-seed) this attribute's values come from.
        seed: SeedId,
        /// Which row of the VG function's output table this attribute reads.
        vg_row: usize,
        /// Which column of the VG function's output table this attribute reads.
        vg_col: usize,
        /// Stream position of `values[0]`.
        base_pos: u64,
        /// Materialized block of values for positions
        /// `base_pos .. base_pos + values.len()`.
        values: Vec<Value>,
    },
    /// Per-repetition values without lineage (derived by a projection).
    Computed(Vec<Value>),
}

impl BundleValue {
    /// Whether this attribute is constant across DB instances.
    pub fn is_const(&self) -> bool {
        matches!(self, BundleValue::Const(_))
    }

    /// The seed backing this attribute, if it is a lineaged random attribute.
    pub fn seed(&self) -> Option<SeedId> {
        match self {
            BundleValue::Random { seed, .. } => Some(*seed),
            _ => None,
        }
    }

    /// The value of this attribute in Monte Carlo repetition `rep`
    /// (equivalently, at block offset `rep` for a Gibbs block).
    ///
    /// Panics if `rep` is outside the materialized block — callers are
    /// expected to have instantiated enough positions (the executor always
    /// materializes exactly `num_reps` values in MCDB mode).
    pub fn value_at(&self, rep: usize) -> &Value {
        match self {
            BundleValue::Const(v) => v,
            BundleValue::Random { values, .. } => &values[rep],
            BundleValue::Computed(values) => &values[rep],
        }
    }

    /// Number of materialized values (None for constants, which cover any
    /// number of repetitions).
    pub fn materialized_len(&self) -> Option<usize> {
        match self {
            BundleValue::Const(_) => None,
            BundleValue::Random { values, .. } => Some(values.len()),
            BundleValue::Computed(values) => Some(values.len()),
        }
    }
}

/// A tuple bundle: one logical tuple across all generated DB instances.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TupleBundle {
    /// The attributes.
    pub values: Vec<BundleValue>,
    /// Per-repetition presence (`isPres`); `None` = present everywhere.
    pub is_pres: Option<Vec<bool>>,
}

impl TupleBundle {
    /// A bundle whose attributes are all constants (a deterministic tuple).
    pub fn constant(values: Vec<Value>) -> Self {
        TupleBundle {
            values: values.into_iter().map(BundleValue::Const).collect(),
            is_pres: None,
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Whether every attribute is constant.
    pub fn is_fully_const(&self) -> bool {
        self.values.iter().all(BundleValue::is_const)
    }

    /// The distinct seeds referenced by this bundle's random attributes, in
    /// increasing order.  The smallest of these is the bundle's initial sort
    /// key in the GibbsLooper priority queue (paper §7).
    pub fn seeds(&self) -> Vec<SeedId> {
        let mut seeds: Vec<SeedId> = self.values.iter().filter_map(BundleValue::seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        seeds
    }

    /// Whether the bundle is present in repetition `rep`.
    pub fn is_present(&self, rep: usize) -> bool {
        match &self.is_pres {
            None => true,
            Some(flags) => flags.get(rep).copied().unwrap_or(false),
        }
    }

    /// Restrict presence by AND-ing in a per-repetition mask.
    pub fn restrict_presence(&mut self, mask: &[bool]) {
        match &mut self.is_pres {
            None => self.is_pres = Some(mask.to_vec()),
            Some(flags) => {
                for (f, m) in flags.iter_mut().zip(mask) {
                    *f = *f && *m;
                }
            }
        }
    }

    /// True if the bundle is absent from every one of the first `num_reps`
    /// repetitions, i.e. it can be dropped from an MCDB plan entirely.
    pub fn absent_everywhere(&self, num_reps: usize) -> bool {
        match &self.is_pres {
            None => false,
            Some(flags) => flags.iter().take(num_reps).all(|&p| !p),
        }
    }

    /// Materialize the row of this bundle for repetition `rep` (ignoring
    /// presence; callers check [`TupleBundle::is_present`] first).
    pub fn row_at(&self, rep: usize) -> Vec<Value> {
        self.values
            .iter()
            .map(|v| v.value_at(rep).clone())
            .collect()
    }

    /// [`TupleBundle::row_at`] into a caller-owned scratch buffer: the
    /// per-repetition aggregation loop visits every `(bundle, repetition)`
    /// pair, and reusing one buffer per repetition removes a heap
    /// allocation from each visit (the value clones themselves are copies
    /// for scalars and refcount bumps for strings).
    pub fn write_row_into(&self, rep: usize, out: &mut Vec<Value>) {
        out.clear();
        out.extend(self.values.iter().map(|v| v.value_at(rep).clone()));
    }

    /// Concatenate two bundles (used by join operators).  Presence vectors
    /// are AND-ed.
    pub fn concat(&self, other: &TupleBundle) -> TupleBundle {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        let is_pres = match (&self.is_pres, &other.is_pres) {
            (None, None) => None,
            (Some(a), None) => Some(a.clone()),
            (None, Some(b)) => Some(b.clone()),
            (Some(a), Some(b)) => Some(a.iter().zip(b.iter()).map(|(x, y)| *x && *y).collect()),
        };
        TupleBundle { values, is_pres }
    }
}

/// The result of executing a plan over bundles.
#[derive(Debug, Clone)]
pub struct BundleSet {
    /// Output schema (column names / types of the bundles).
    pub schema: Schema,
    /// The bundles.
    pub bundles: Vec<TupleBundle>,
    /// Registry of every stream referenced by the bundles.
    pub registry: StreamRegistry,
    /// Number of Monte Carlo repetitions materialized per random attribute
    /// (MCDB mode), or the Gibbs block size (MCDB-R mode).
    pub num_reps: usize,
}

impl BundleSet {
    /// Count of bundles.
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// True if there are no bundles.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// All distinct seeds referenced across bundles, in increasing order.
    pub fn seeds(&self) -> Vec<SeedId> {
        let mut seeds: Vec<SeedId> = self.bundles.iter().flat_map(|b| b.seeds()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        seeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_attr(seed: SeedId, values: Vec<f64>) -> BundleValue {
        BundleValue::Random {
            seed,
            vg_row: 0,
            vg_col: 0,
            base_pos: 0,
            values: values.into_iter().map(Value::Float64).collect(),
        }
    }

    #[test]
    fn constant_bundles() {
        let b = TupleBundle::constant(vec![Value::Int64(1), Value::str("Sue")]);
        assert!(b.is_fully_const());
        assert_eq!(b.arity(), 2);
        assert!(b.seeds().is_empty());
        assert!(b.is_present(0) && b.is_present(99));
        assert_eq!(b.row_at(5), vec![Value::Int64(1), Value::str("Sue")]);
    }

    #[test]
    fn random_attribute_lineage_and_values() {
        let b = TupleBundle {
            values: vec![
                BundleValue::Const(Value::str("Joe")),
                random_attr(17, vec![2.59, 3.26, 2.23, 4.56]),
            ],
            is_pres: None,
        };
        assert!(!b.is_fully_const());
        assert_eq!(b.seeds(), vec![17]);
        assert_eq!(b.row_at(1), vec![Value::str("Joe"), Value::Float64(3.26)]);
        assert_eq!(b.values[1].materialized_len(), Some(4));
        assert_eq!(b.values[0].materialized_len(), None);
        assert_eq!(b.values[1].seed(), Some(17));
        assert_eq!(b.values[0].seed(), None);
    }

    #[test]
    fn seeds_are_sorted_and_deduped() {
        let b = TupleBundle {
            values: vec![
                random_attr(30, vec![1.0]),
                random_attr(10, vec![2.0]),
                random_attr(30, vec![3.0]),
            ],
            is_pres: None,
        };
        assert_eq!(b.seeds(), vec![10, 30]);
    }

    #[test]
    fn presence_restriction() {
        let mut b = TupleBundle::constant(vec![Value::Int64(1)]);
        b.restrict_presence(&[true, false, true, true]);
        assert!(b.is_present(0));
        assert!(!b.is_present(1));
        b.restrict_presence(&[true, true, false, true]);
        assert_eq!(b.is_pres, Some(vec![true, false, false, true]));
        assert!(!b.absent_everywhere(4));
        b.restrict_presence(&[false, false, false, false]);
        assert!(b.absent_everywhere(4));
        // Out-of-range repetitions are treated as absent once a mask exists.
        assert!(!b.is_present(10));
    }

    #[test]
    fn concat_ands_presence() {
        let mut a = TupleBundle::constant(vec![Value::Int64(1)]);
        a.restrict_presence(&[true, false]);
        let mut b = TupleBundle::constant(vec![Value::Int64(2)]);
        b.restrict_presence(&[true, true]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 2);
        assert_eq!(c.is_pres, Some(vec![true, false]));
        let d = TupleBundle::constant(vec![Value::Int64(3)]).concat(&TupleBundle::constant(vec![]));
        assert_eq!(d.is_pres, None);
    }

    #[test]
    fn bundle_set_seed_collection() {
        let set = BundleSet {
            schema: Schema::empty(),
            bundles: vec![
                TupleBundle {
                    values: vec![random_attr(5, vec![1.0])],
                    is_pres: None,
                },
                TupleBundle {
                    values: vec![random_attr(2, vec![1.0])],
                    is_pres: None,
                },
            ],
            registry: StreamRegistry::new(),
            num_reps: 1,
        };
        assert_eq!(set.seeds(), vec![2, 5]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }
}
