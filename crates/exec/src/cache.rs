//! The plan-keyed session cache: pay phase 1 once per `(plan, catalog)`,
//! not once per `(plan, catalog, master_seed)`.
//!
//! A [`PlanSkeleton`] depends only on the plan's
//! structure and the catalog's contents — never on the master seed (lineage
//! is recorded by `(table_tag, row)` [`mcdbr_prng::StreamKey`]s and concrete
//! seeds are derived at binding time).  [`SessionCache`] exploits this by
//! storing skeletons under a key of
//!
//! * the plan's structural fingerprint ([`PlanNode::fingerprint`]), and
//! * the catalog's content epoch ([`mcdbr_storage::Catalog::epoch`]).
//!
//! A repeated query — same plan shape, same catalog, *any* master seed —
//! hits the cache and skips the deterministic skeleton pass (scans, joins,
//! constant predicates, VG probes) entirely; the only per-session work is
//! one [`mcdbr_prng::seed_for`] derivation per stream.  Mutating the catalog
//! bumps its epoch to a globally fresh value, so stale entries can never be
//! served: the contract is *equal key ⇒ identical skeleton*, with
//! invalidation by key change rather than by eviction.
//!
//! Uncacheable plans (`Split` over a random column, paper §8) are remembered
//! too: a hit skips the detection pass and goes straight to the honest
//! per-block fallback executor.
//!
//! The cache is internally synchronized (`&self` methods, atomic counters),
//! so one cache can be shared — e.g. behind an [`std::sync::Arc`] — between
//! an engine, several Gibbs loopers, server connections, and worker
//! threads.  Concurrent misses on the *same* key are **single-flight**: the
//! first session to miss builds the skeleton (outside the entry lock, so
//! slow builds never block unrelated lookups), every racer waits for that
//! build and then takes it as a hit — so "one plan execution per distinct
//! `(plan, epoch)`" holds *exactly* under concurrency, not just on average,
//! and the hit/miss counters are race-free totals a test can assert.
//! Capacity is
//! bounded (LRU eviction, default [`SessionCache::DEFAULT_CAPACITY`]): a
//! long-lived engine that keeps mutating its catalog — orphaning entries
//! keyed on dead epochs — cannot grow the cache without bound, and under a
//! mixed multi-catalog workload that actually hits the bound, the entries
//! that survive are the ones still being asked for (hits refresh recency).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use mcdbr_storage::{Catalog, Result};

use crate::plan::PlanNode;
use crate::session::{build_skeleton, ExecSession, PlanSkeleton, PrepError};

/// What the cache remembers about one `(plan fingerprint, catalog epoch)`.
#[derive(Debug, Clone)]
enum CacheEntry {
    /// The plan is prefix-cacheable; its seed-independent skeleton.
    Skeleton(Arc<PlanSkeleton>),
    /// The plan has no block-invariant deterministic prefix; the recorded
    /// reason (sessions go straight to fallback mode without re-detection).
    Uncacheable(String),
}

/// A cache of [`PlanSkeleton`]s keyed by
/// `(plan fingerprint, catalog epoch)`.
///
/// See the [module docs](self) for the key/invalidation contract.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use mcdbr_exec::plan::scalar_random_table;
/// use mcdbr_exec::{Expr, PlanNode, SessionCache};
/// use mcdbr_storage::{Catalog, Field, Schema, TableBuilder, Value};
/// use mcdbr_vg::NormalVg;
///
/// # fn main() -> mcdbr_storage::Result<()> {
/// let mut catalog = Catalog::new();
/// let means =
///     TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
///         .row([Value::Int64(1), Value::Float64(3.0)])
///         .build()?;
/// catalog.register("means", means)?;
/// let plan = PlanNode::random_table(scalar_random_table(
///     "Losses",
///     "means",
///     Arc::new(NormalVg),
///     vec![Expr::col("m"), Expr::lit(1.0)],
///     &["cid"],
///     "val",
///     1,
/// ));
///
/// let cache = SessionCache::new();
///
/// // First session pays phase 1 (a miss)...
/// let mut first = cache.session(&plan, &catalog, 7)?;
/// assert_eq!((cache.skeleton_hits(), cache.skeleton_misses()), (0, 1));
/// assert_eq!(first.plan_executions(), 1);
///
/// // ...a repeat under a *fresh master seed* skips phase 1 entirely.
/// let mut second = cache.session(&plan, &catalog, 999)?;
/// assert_eq!((cache.skeleton_hits(), cache.skeleton_misses()), (1, 1));
/// assert!(second.skeleton_hit());
/// assert_eq!(second.plan_executions(), 0);
///
/// // Both sessions materialize blocks as usual — and mutating the catalog
/// // would change its epoch, turning the next lookup into a miss.
/// let a = first.instantiate_block(&catalog, 0, 10)?;
/// let b = second.instantiate_block(&catalog, 0, 10)?;
/// assert_eq!(a.len(), b.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SessionCache {
    entries: Mutex<Entries>,
    /// In-progress skeleton builds, keyed like `entries` — the single-flight
    /// table.  Held only around map operations, never across a build.
    flights: Mutex<HashMap<(u64, u64), Arc<Flight>>>,
    capacity: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// One in-progress skeleton build that racing sessions wait on.
#[derive(Debug, Default)]
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn wait(&self) {
        let mut done = self.done.lock().expect("flight poisoned");
        while !*done {
            done = self.cv.wait(done).expect("flight poisoned");
        }
    }

    fn finish(&self) {
        *self.done.lock().expect("flight poisoned") = true;
        self.cv.notify_all();
    }
}

/// Marks the guarded flight finished on every exit path — including a
/// panicking or erroring build — so waiters can never hang on a builder
/// that went away.
struct FlightGuard<'a> {
    cache: &'a SessionCache,
    key: (u64, u64),
    flight: Arc<Flight>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.cache
            .flights
            .lock()
            .expect("cache poisoned")
            .remove(&self.key);
        self.flight.finish();
    }
}

/// The guarded map with per-entry recency stamps (for bounded LRU
/// eviction): every hit and (re)insert stamps its entry with the next tick
/// of a monotonic clock, making a touch O(1) on the hot hit path regardless
/// of the configured capacity; eviction — the rare path, only when an
/// insert exceeds capacity — scans for the minimum stamp.
#[derive(Debug, Default)]
struct Entries {
    map: HashMap<(u64, u64), Stamped>,
    clock: u64,
}

/// A cache entry plus the clock tick of its last use.
#[derive(Debug, Clone)]
struct Stamped {
    entry: CacheEntry,
    last_used: u64,
}

impl Entries {
    /// The next recency stamp.
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Evict the least-recently-used entry (linear scan — amortized against
    /// a skeleton build, never against a hit).
    fn evict_lru(&mut self) {
        if let Some(lru) = self
            .map
            .iter()
            .min_by_key(|(_, stamped)| stamped.last_used)
            .map(|(key, _)| *key)
        {
            self.map.remove(&lru);
        }
    }
}

impl Default for SessionCache {
    fn default() -> Self {
        SessionCache::with_capacity(SessionCache::DEFAULT_CAPACITY)
    }
}

impl SessionCache {
    /// Default maximum number of cached `(plan, catalog epoch)` entries.
    ///
    /// Catalog mutations mint fresh epochs, permanently orphaning entries
    /// keyed on the old epoch; the bound keeps a mutate-then-query loop from
    /// accumulating unreachable skeletons forever.  Eviction is LRU — least
    /// recently *used*, with hits refreshing recency — which handles the
    /// orphaned-epoch case exactly like FIFO did (dead entries stop being
    /// touched and age to the front) and additionally keeps a hot plan
    /// cached under mixed multi-catalog workloads, where insertion order
    /// says nothing about which entries are still earning their keep.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// Create an empty cache with [`SessionCache::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        SessionCache::default()
    }

    /// Create an empty cache holding at most `capacity` entries (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        SessionCache {
            entries: Mutex::new(Entries::default()),
            flights: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Look `key` up, touching its recency stamp on a hit.
    fn lookup(&self, key: (u64, u64)) -> Option<CacheEntry> {
        let mut entries = self.entries.lock().expect("cache poisoned");
        let stamp = entries.tick();
        let stamped = entries.map.get_mut(&key)?;
        // Touch on hit: the LRU order tracks use, not insertion.
        stamped.last_used = stamp;
        Some(stamped.entry.clone())
    }

    /// Hand out an [`ExecSession`] for `(plan, catalog, master_seed)`.
    ///
    /// On a hit — a structurally identical plan was prepared against a
    /// catalog with this epoch before — phase 1 is skipped: the cached
    /// skeleton is bound to `master_seed` (one seed derivation per stream)
    /// and the session reports `plan_executions() == 0` /
    /// `skeleton_hit() == true`.  On a miss the skeleton is built here, the
    /// session reports `plan_executions() == 1`, and the skeleton is stored
    /// for future sessions.
    ///
    /// Ordinary plan errors (missing tables, illegal joins) are returned and
    /// never cached.
    ///
    /// Concurrent misses on the same key coalesce into a **single** build:
    /// one racer runs phase 1, the others block until it lands and then
    /// take the entry as a hit (see the [module docs](self)).  If the build
    /// fails with a plan error, each waiter retries the build itself —
    /// deterministic plan errors reproduce, and nothing wrong is ever
    /// cached.
    pub fn session(
        &self,
        plan: &PlanNode,
        catalog: &Catalog,
        master_seed: u64,
    ) -> Result<ExecSession> {
        let key = (plan.fingerprint(), catalog.epoch());
        loop {
            if let Some(entry) = self.lookup(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(match entry {
                    CacheEntry::Skeleton(skeleton) => {
                        ExecSession::from_skeleton(plan, skeleton, master_seed, true)
                    }
                    CacheEntry::Uncacheable(reason) => {
                        ExecSession::fallback(plan, master_seed, reason, true)
                    }
                });
            }

            // Miss: join this key's in-progress build, or become its builder.
            let flight = {
                let mut flights = self.flights.lock().expect("cache poisoned");
                match flights.get(&key) {
                    Some(flight) => {
                        let flight = Arc::clone(flight);
                        drop(flights);
                        flight.wait();
                        // The builder landed (its waiters hit) or failed
                        // (we re-miss and build ourselves) — re-check.
                        continue;
                    }
                    None => {
                        let flight = Arc::new(Flight::default());
                        flights.insert(key, Arc::clone(&flight));
                        flight
                    }
                }
            };
            let _guard = FlightGuard {
                cache: self,
                key,
                flight,
            };

            // Build outside both locks, so a slow phase 1 blocks only the
            // sessions that need this exact skeleton.
            let (entry, session) = match build_skeleton(plan, catalog) {
                Ok(skeleton) => {
                    let skeleton = Arc::new(skeleton);
                    let session =
                        ExecSession::from_skeleton(plan, Arc::clone(&skeleton), master_seed, false);
                    (CacheEntry::Skeleton(skeleton), session)
                }
                Err(PrepError::Uncacheable(reason)) => (
                    CacheEntry::Uncacheable(reason.clone()),
                    ExecSession::fallback(plan, master_seed, reason, false),
                ),
                Err(PrepError::Fail(e)) => return Err(e),
            };
            self.misses.fetch_add(1, Ordering::Relaxed);
            let mut entries = self.entries.lock().expect("cache poisoned");
            let stamp = entries.tick();
            entries.map.insert(
                key,
                Stamped {
                    entry,
                    last_used: stamp,
                },
            );
            // LRU-evict beyond capacity: the minimum stamp is the entry that
            // has gone unused the longest (with a mutating catalog, the
            // orphaned-epoch ones age there on their own).
            while entries.map.len() > self.capacity {
                entries.evict_lru();
            }
            return Ok(session);
        }
    }

    /// Number of lookups that skipped phase 1 (the skeleton — or the
    /// uncacheability verdict — was already cached).
    pub fn skeleton_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to run the deterministic skeleton pass.
    pub fn skeleton_misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached `(plan, catalog epoch)` entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of entries before LRU eviction kicks in.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop every cached entry (counters are kept).  Entries for stale
    /// catalog epochs are unreachable anyway — their keys can no longer be
    /// constructed — so this (like the capacity bound) is about memory, not
    /// correctness.
    pub fn clear(&self) {
        let mut entries = self.entries.lock().expect("cache poisoned");
        entries.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::scalar_random_table;
    use mcdbr_storage::{Field, Schema, TableBuilder, Value};
    use mcdbr_vg::NormalVg;

    fn catalog() -> Catalog {
        let means = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
            .row([Value::Int64(1), Value::Float64(3.0)])
            .row([Value::Int64(2), Value::Float64(4.0)])
            .build()
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.register("means", means).unwrap();
        catalog
    }

    fn losses_plan() -> PlanNode {
        PlanNode::random_table(scalar_random_table(
            "Losses",
            "means",
            Arc::new(NormalVg),
            vec![Expr::col("m"), Expr::lit(1.0)],
            &["cid"],
            "val",
            1,
        ))
    }

    #[test]
    fn racing_sessions_single_flight_one_miss() {
        // All racers ask for the same (plan, epoch) at once: exactly one
        // builds (one miss, plan_executions == 1 across the cache), the
        // rest coalesce onto that build and count as hits.
        let cache = Arc::new(SessionCache::new());
        let catalog = Arc::new(catalog());
        let plan = Arc::new(losses_plan());
        const RACERS: usize = 8;
        let barrier = Arc::new(std::sync::Barrier::new(RACERS));
        let handles: Vec<_> = (0..RACERS)
            .map(|seed| {
                let (cache, catalog, plan, barrier) = (
                    Arc::clone(&cache),
                    Arc::clone(&catalog),
                    Arc::clone(&plan),
                    Arc::clone(&barrier),
                );
                std::thread::spawn(move || {
                    barrier.wait();
                    let session = cache.session(&plan, &catalog, seed as u64).unwrap();
                    session.plan_executions()
                })
            })
            .collect();
        let executions: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(executions, 1, "exactly one racer pays phase 1");
        assert_eq!(cache.skeleton_misses(), 1);
        assert_eq!(cache.skeleton_hits(), RACERS - 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hits_and_misses_are_counted_per_key() {
        let catalog = catalog();
        let cache = SessionCache::new();
        assert!(cache.is_empty());

        let s1 = cache.session(&losses_plan(), &catalog, 1).unwrap();
        assert!(!s1.skeleton_hit());
        assert_eq!(s1.plan_executions(), 1);
        assert_eq!((cache.skeleton_hits(), cache.skeleton_misses()), (0, 1));
        assert_eq!(cache.len(), 1);

        // Same plan, different seeds: hits, phase 1 skipped.
        for seed in [1u64, 2, 3] {
            let s = cache.session(&losses_plan(), &catalog, seed).unwrap();
            assert!(s.skeleton_hit());
            assert_eq!(s.plan_executions(), 0);
        }
        assert_eq!((cache.skeleton_hits(), cache.skeleton_misses()), (3, 1));

        // A structurally different plan misses.
        let filtered = losses_plan().filter(Expr::col("cid").lt(Expr::lit(2i64)));
        let s2 = cache.session(&filtered, &catalog, 1).unwrap();
        assert!(!s2.skeleton_hit());
        assert_eq!(cache.skeleton_misses(), 2);
        assert_eq!(cache.len(), 2);

        cache.clear();
        assert!(cache.is_empty());
        // Cleared entries rebuild on demand.
        let s3 = cache.session(&losses_plan(), &catalog, 1).unwrap();
        assert!(!s3.skeleton_hit());
    }

    #[test]
    fn catalog_mutation_invalidates_by_epoch() {
        let mut catalog = catalog();
        let cache = SessionCache::new();
        let _ = cache.session(&losses_plan(), &catalog, 1).unwrap();
        assert_eq!(cache.skeleton_misses(), 1);

        // Replacing the parameter table changes the epoch: the next lookup
        // rebuilds the skeleton against the new contents.
        let means = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
            .row([Value::Int64(9), Value::Float64(100.0)])
            .build()
            .unwrap();
        catalog.register_or_replace("means", means);
        let fresh = cache.session(&losses_plan(), &catalog, 1).unwrap();
        assert!(!fresh.skeleton_hit());
        assert_eq!(cache.skeleton_misses(), 2);
        assert_eq!(fresh.prefix().unwrap().num_streams(), 1);
    }

    #[test]
    fn uncacheable_plans_are_remembered() {
        let mut catalog = Catalog::new();
        let param = TableBuilder::new(Schema::new(vec![
            Field::int64("id"),
            Field::float64("w_a"),
            Field::float64("w_b"),
        ]))
        .row([Value::Int64(1), Value::Float64(0.5), Value::Float64(0.5)])
        .build()
        .unwrap();
        catalog.register("people", param).unwrap();
        let plan = PlanNode::random_table(scalar_random_table(
            "ages",
            "people",
            Arc::new(mcdbr_vg::DiscreteVg::new(vec![
                Value::Int64(20),
                Value::Int64(21),
            ])),
            vec![Expr::col("w_a"), Expr::col("w_b")],
            &["id"],
            "age",
            3,
        ))
        .split("age");

        let cache = SessionCache::new();
        let s1 = cache.session(&plan, &catalog, 1).unwrap();
        assert!(!s1.is_cached());
        assert!(!s1.skeleton_hit());
        let s2 = cache.session(&plan, &catalog, 2).unwrap();
        assert!(!s2.is_cached());
        assert!(s2.skeleton_hit(), "the verdict itself is cached");
        assert!(s2.fallback_reason().unwrap().contains("Split"));
        assert_eq!((cache.skeleton_hits(), cache.skeleton_misses()), (1, 1));
    }

    #[test]
    fn capacity_is_bounded_with_lru_eviction() {
        let mut catalog = catalog();
        let cache = SessionCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);

        // Three epochs of the same plan: each catalog mutation orphans the
        // previous entry; the bound keeps only the 2 most recently used.
        for i in 0..3i64 {
            let extra = TableBuilder::new(Schema::new(vec![Field::int64("x")]))
                .row([Value::Int64(i)])
                .build()
                .unwrap();
            catalog.register(format!("extra_{i}"), extra).unwrap();
            let _ = cache.session(&losses_plan(), &catalog, 1).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.skeleton_misses(), 3);
        // The newest entry is still cached.
        let s = cache.session(&losses_plan(), &catalog, 2).unwrap();
        assert!(s.skeleton_hit());
        // An evicted (oldest) entry would rebuild — but its epoch is dead, so
        // the observable effect is just bounded memory; re-querying the live
        // catalog keeps hitting.
        assert_eq!(cache.skeleton_hits(), 1);
    }

    #[test]
    fn eviction_order_is_recency_not_insertion() {
        // Three structurally distinct plans over one catalog epoch, capacity
        // 2.  Under FIFO, inserting C would evict A no matter what; under
        // LRU, a hit on A after B's insertion makes B the eviction victim.
        let catalog = catalog();
        let plan_a = losses_plan().filter(Expr::col("cid").lt(Expr::lit(10i64)));
        let plan_b = losses_plan().filter(Expr::col("cid").lt(Expr::lit(20i64)));
        let plan_c = losses_plan().filter(Expr::col("cid").lt(Expr::lit(30i64)));
        let cache = SessionCache::with_capacity(2);

        let _ = cache.session(&plan_a, &catalog, 1).unwrap(); // order: A
        let _ = cache.session(&plan_b, &catalog, 1).unwrap(); // order: A B
        assert!(cache.session(&plan_a, &catalog, 2).unwrap().skeleton_hit()); // order: B A
        let _ = cache.session(&plan_c, &catalog, 1).unwrap(); // evicts B: A C
        assert_eq!(cache.len(), 2);

        // A survived its FIFO death sentence...
        assert!(cache.session(&plan_a, &catalog, 3).unwrap().skeleton_hit());
        // ...C is cached...
        assert!(cache.session(&plan_c, &catalog, 3).unwrap().skeleton_hit());
        // ...and B — the least recently used — was the one evicted.
        assert_eq!(cache.skeleton_misses(), 3);
        assert!(!cache.session(&plan_b, &catalog, 3).unwrap().skeleton_hit());
        assert_eq!(cache.skeleton_misses(), 4);
        // Rebuilding B evicted the then-LRU entry, A (C was touched after
        // A's last hit): the survivors are exactly {C, B}.
        assert_eq!(cache.len(), 2);
        assert!(cache.session(&plan_c, &catalog, 4).unwrap().skeleton_hit());
        assert!(cache.session(&plan_b, &catalog, 4).unwrap().skeleton_hit());
        assert!(!cache.session(&plan_a, &catalog, 4).unwrap().skeleton_hit());
    }

    #[test]
    fn uncacheable_verdicts_participate_in_lru_order() {
        // The cached "no deterministic prefix" verdict is an entry like any
        // other: hits refresh it, and it can evict / be evicted.
        let mut catalog = Catalog::new();
        let param = TableBuilder::new(Schema::new(vec![
            Field::int64("id"),
            Field::float64("w_a"),
            Field::float64("w_b"),
        ]))
        .row([Value::Int64(1), Value::Float64(0.5), Value::Float64(0.5)])
        .build()
        .unwrap();
        catalog.register("people", param).unwrap();
        let means = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
            .row([Value::Int64(1), Value::Float64(3.0)])
            .build()
            .unwrap();
        catalog.register("means", means).unwrap();
        let split_plan = PlanNode::random_table(scalar_random_table(
            "ages",
            "people",
            Arc::new(mcdbr_vg::DiscreteVg::new(vec![
                Value::Int64(20),
                Value::Int64(21),
            ])),
            vec![Expr::col("w_a"), Expr::col("w_b")],
            &["id"],
            "age",
            3,
        ))
        .split("age");

        let cache = SessionCache::with_capacity(2);
        let _ = cache.session(&split_plan, &catalog, 1).unwrap(); // order: S
        let _ = cache.session(&losses_plan(), &catalog, 1).unwrap(); // order: S L
                                                                     // Touch the verdict, then overflow: the losses skeleton is evicted.
        assert!(cache
            .session(&split_plan, &catalog, 2)
            .unwrap()
            .skeleton_hit());
        let plan_b = losses_plan().filter(Expr::col("cid").lt(Expr::lit(2i64)));
        let _ = cache.session(&plan_b, &catalog, 1).unwrap(); // evicts L
        assert!(cache
            .session(&split_plan, &catalog, 3)
            .unwrap()
            .skeleton_hit());
        assert!(!cache
            .session(&losses_plan(), &catalog, 3)
            .unwrap()
            .skeleton_hit());
    }

    #[test]
    fn plan_errors_are_returned_not_cached() {
        let catalog = catalog();
        let cache = SessionCache::new();
        assert!(cache.session(&PlanNode::scan("nope"), &catalog, 1).is_err());
        assert!(cache.is_empty());
        assert_eq!((cache.skeleton_hits(), cache.skeleton_misses()), (0, 0));
    }
}
