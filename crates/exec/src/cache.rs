//! The plan-keyed session cache: pay phase 1 once per `(plan, catalog)`,
//! not once per `(plan, catalog, master_seed)`.
//!
//! A [`PlanSkeleton`] depends only on the plan's
//! structure and the catalog's contents — never on the master seed (lineage
//! is recorded by `(table_tag, row)` [`mcdbr_prng::StreamKey`]s and concrete
//! seeds are derived at binding time).  [`SessionCache`] exploits this by
//! storing skeletons under a key of
//!
//! * the plan's structural fingerprint ([`PlanNode::fingerprint`]), and
//! * the catalog's content epoch ([`mcdbr_storage::Catalog::epoch`]).
//!
//! A repeated query — same plan shape, same catalog, *any* master seed —
//! hits the cache and skips the deterministic skeleton pass (scans, joins,
//! constant predicates, VG probes) entirely; the only per-session work is
//! one [`mcdbr_prng::seed_for`] derivation per stream.  Mutating the catalog
//! bumps its epoch to a globally fresh value, so stale entries can never be
//! served: the contract is *equal key ⇒ identical skeleton*, with
//! invalidation by key change rather than by eviction.
//!
//! Uncacheable plans (`Split` over a random column, paper §8) are remembered
//! too: a hit skips the detection pass and goes straight to the honest
//! per-block fallback executor.
//!
//! The cache is internally synchronized (`&self` methods, atomic counters),
//! so one cache can be shared — e.g. behind an [`std::sync::Arc`] — between
//! an engine, several Gibbs loopers, and worker threads.  Capacity is
//! bounded (FIFO eviction, default [`SessionCache::DEFAULT_CAPACITY`]): a
//! long-lived engine that keeps mutating its catalog — orphaning entries
//! keyed on dead epochs — cannot grow the cache without bound.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mcdbr_storage::{Catalog, Result};

use crate::plan::PlanNode;
use crate::session::{build_skeleton, ExecSession, PlanSkeleton, PrepError};

/// What the cache remembers about one `(plan fingerprint, catalog epoch)`.
#[derive(Debug, Clone)]
enum CacheEntry {
    /// The plan is prefix-cacheable; its seed-independent skeleton.
    Skeleton(Arc<PlanSkeleton>),
    /// The plan has no block-invariant deterministic prefix; the recorded
    /// reason (sessions go straight to fallback mode without re-detection).
    Uncacheable(String),
}

/// A cache of [`PlanSkeleton`]s keyed by
/// `(plan fingerprint, catalog epoch)`.
///
/// See the [module docs](self) for the key/invalidation contract.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use mcdbr_exec::plan::scalar_random_table;
/// use mcdbr_exec::{Expr, PlanNode, SessionCache};
/// use mcdbr_storage::{Catalog, Field, Schema, TableBuilder, Value};
/// use mcdbr_vg::NormalVg;
///
/// # fn main() -> mcdbr_storage::Result<()> {
/// let mut catalog = Catalog::new();
/// let means =
///     TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
///         .row([Value::Int64(1), Value::Float64(3.0)])
///         .build()?;
/// catalog.register("means", means)?;
/// let plan = PlanNode::random_table(scalar_random_table(
///     "Losses",
///     "means",
///     Arc::new(NormalVg),
///     vec![Expr::col("m"), Expr::lit(1.0)],
///     &["cid"],
///     "val",
///     1,
/// ));
///
/// let cache = SessionCache::new();
///
/// // First session pays phase 1 (a miss)...
/// let mut first = cache.session(&plan, &catalog, 7)?;
/// assert_eq!((cache.skeleton_hits(), cache.skeleton_misses()), (0, 1));
/// assert_eq!(first.plan_executions(), 1);
///
/// // ...a repeat under a *fresh master seed* skips phase 1 entirely.
/// let mut second = cache.session(&plan, &catalog, 999)?;
/// assert_eq!((cache.skeleton_hits(), cache.skeleton_misses()), (1, 1));
/// assert!(second.skeleton_hit());
/// assert_eq!(second.plan_executions(), 0);
///
/// // Both sessions materialize blocks as usual — and mutating the catalog
/// // would change its epoch, turning the next lookup into a miss.
/// let a = first.instantiate_block(&catalog, 0, 10)?;
/// let b = second.instantiate_block(&catalog, 0, 10)?;
/// assert_eq!(a.len(), b.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SessionCache {
    entries: Mutex<Entries>,
    capacity: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// The guarded map plus its FIFO insertion order (for bounded eviction).
#[derive(Debug, Default)]
struct Entries {
    map: HashMap<(u64, u64), CacheEntry>,
    order: VecDeque<(u64, u64)>,
}

impl Default for SessionCache {
    fn default() -> Self {
        SessionCache::with_capacity(SessionCache::DEFAULT_CAPACITY)
    }
}

impl SessionCache {
    /// Default maximum number of cached `(plan, catalog epoch)` entries.
    ///
    /// Catalog mutations mint fresh epochs, permanently orphaning entries
    /// keyed on the old epoch; the bound keeps a mutate-then-query loop from
    /// accumulating unreachable skeletons forever.  Eviction is FIFO —
    /// oldest insertion first — which is exact for the orphaned-epoch case
    /// (older entries are the dead ones) and merely costs a rebuild for a
    /// still-live entry.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// Create an empty cache with [`SessionCache::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        SessionCache::default()
    }

    /// Create an empty cache holding at most `capacity` entries (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        SessionCache {
            entries: Mutex::new(Entries::default()),
            capacity: capacity.max(1),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Hand out an [`ExecSession`] for `(plan, catalog, master_seed)`.
    ///
    /// On a hit — a structurally identical plan was prepared against a
    /// catalog with this epoch before — phase 1 is skipped: the cached
    /// skeleton is bound to `master_seed` (one seed derivation per stream)
    /// and the session reports `plan_executions() == 0` /
    /// `skeleton_hit() == true`.  On a miss the skeleton is built here, the
    /// session reports `plan_executions() == 1`, and the skeleton is stored
    /// for future sessions.
    ///
    /// Ordinary plan errors (missing tables, illegal joins) are returned and
    /// never cached.
    pub fn session(
        &self,
        plan: &PlanNode,
        catalog: &Catalog,
        master_seed: u64,
    ) -> Result<ExecSession> {
        let key = (plan.fingerprint(), catalog.epoch());
        if let Some(entry) = self.entries.lock().expect("cache poisoned").map.get(&key) {
            let entry = entry.clone();
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(match entry {
                CacheEntry::Skeleton(skeleton) => {
                    ExecSession::from_skeleton(plan, skeleton, master_seed, true)
                }
                CacheEntry::Uncacheable(reason) => {
                    ExecSession::fallback(plan, master_seed, reason, true)
                }
            });
        }

        // Build outside the lock: concurrent misses on the same key build
        // identical skeletons (the pass is deterministic), so the last insert
        // winning is harmless and slow builds never block unrelated lookups.
        let (entry, session) = match build_skeleton(plan, catalog) {
            Ok(skeleton) => {
                let skeleton = Arc::new(skeleton);
                let session =
                    ExecSession::from_skeleton(plan, Arc::clone(&skeleton), master_seed, false);
                (CacheEntry::Skeleton(skeleton), session)
            }
            Err(PrepError::Uncacheable(reason)) => (
                CacheEntry::Uncacheable(reason.clone()),
                ExecSession::fallback(plan, master_seed, reason, false),
            ),
            Err(PrepError::Fail(e)) => return Err(e),
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("cache poisoned");
        if entries.map.insert(key, entry).is_none() {
            entries.order.push_back(key);
            // FIFO-evict beyond capacity: with a mutating catalog the oldest
            // entries are exactly the orphaned-epoch ones.
            while entries.map.len() > self.capacity {
                let oldest = entries.order.pop_front().expect("order tracks map");
                entries.map.remove(&oldest);
            }
        }
        Ok(session)
    }

    /// Number of lookups that skipped phase 1 (the skeleton — or the
    /// uncacheability verdict — was already cached).
    pub fn skeleton_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to run the deterministic skeleton pass.
    pub fn skeleton_misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached `(plan, catalog epoch)` entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of entries before FIFO eviction kicks in.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop every cached entry (counters are kept).  Entries for stale
    /// catalog epochs are unreachable anyway — their keys can no longer be
    /// constructed — so this (like the capacity bound) is about memory, not
    /// correctness.
    pub fn clear(&self) {
        let mut entries = self.entries.lock().expect("cache poisoned");
        entries.map.clear();
        entries.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::scalar_random_table;
    use mcdbr_storage::{Field, Schema, TableBuilder, Value};
    use mcdbr_vg::NormalVg;

    fn catalog() -> Catalog {
        let means = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
            .row([Value::Int64(1), Value::Float64(3.0)])
            .row([Value::Int64(2), Value::Float64(4.0)])
            .build()
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.register("means", means).unwrap();
        catalog
    }

    fn losses_plan() -> PlanNode {
        PlanNode::random_table(scalar_random_table(
            "Losses",
            "means",
            Arc::new(NormalVg),
            vec![Expr::col("m"), Expr::lit(1.0)],
            &["cid"],
            "val",
            1,
        ))
    }

    #[test]
    fn hits_and_misses_are_counted_per_key() {
        let catalog = catalog();
        let cache = SessionCache::new();
        assert!(cache.is_empty());

        let s1 = cache.session(&losses_plan(), &catalog, 1).unwrap();
        assert!(!s1.skeleton_hit());
        assert_eq!(s1.plan_executions(), 1);
        assert_eq!((cache.skeleton_hits(), cache.skeleton_misses()), (0, 1));
        assert_eq!(cache.len(), 1);

        // Same plan, different seeds: hits, phase 1 skipped.
        for seed in [1u64, 2, 3] {
            let s = cache.session(&losses_plan(), &catalog, seed).unwrap();
            assert!(s.skeleton_hit());
            assert_eq!(s.plan_executions(), 0);
        }
        assert_eq!((cache.skeleton_hits(), cache.skeleton_misses()), (3, 1));

        // A structurally different plan misses.
        let filtered = losses_plan().filter(Expr::col("cid").lt(Expr::lit(2i64)));
        let s2 = cache.session(&filtered, &catalog, 1).unwrap();
        assert!(!s2.skeleton_hit());
        assert_eq!(cache.skeleton_misses(), 2);
        assert_eq!(cache.len(), 2);

        cache.clear();
        assert!(cache.is_empty());
        // Cleared entries rebuild on demand.
        let s3 = cache.session(&losses_plan(), &catalog, 1).unwrap();
        assert!(!s3.skeleton_hit());
    }

    #[test]
    fn catalog_mutation_invalidates_by_epoch() {
        let mut catalog = catalog();
        let cache = SessionCache::new();
        let _ = cache.session(&losses_plan(), &catalog, 1).unwrap();
        assert_eq!(cache.skeleton_misses(), 1);

        // Replacing the parameter table changes the epoch: the next lookup
        // rebuilds the skeleton against the new contents.
        let means = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
            .row([Value::Int64(9), Value::Float64(100.0)])
            .build()
            .unwrap();
        catalog.register_or_replace("means", means);
        let fresh = cache.session(&losses_plan(), &catalog, 1).unwrap();
        assert!(!fresh.skeleton_hit());
        assert_eq!(cache.skeleton_misses(), 2);
        assert_eq!(fresh.prefix().unwrap().num_streams(), 1);
    }

    #[test]
    fn uncacheable_plans_are_remembered() {
        let mut catalog = Catalog::new();
        let param = TableBuilder::new(Schema::new(vec![
            Field::int64("id"),
            Field::float64("w_a"),
            Field::float64("w_b"),
        ]))
        .row([Value::Int64(1), Value::Float64(0.5), Value::Float64(0.5)])
        .build()
        .unwrap();
        catalog.register("people", param).unwrap();
        let plan = PlanNode::random_table(scalar_random_table(
            "ages",
            "people",
            Arc::new(mcdbr_vg::DiscreteVg::new(vec![
                Value::Int64(20),
                Value::Int64(21),
            ])),
            vec![Expr::col("w_a"), Expr::col("w_b")],
            &["id"],
            "age",
            3,
        ))
        .split("age");

        let cache = SessionCache::new();
        let s1 = cache.session(&plan, &catalog, 1).unwrap();
        assert!(!s1.is_cached());
        assert!(!s1.skeleton_hit());
        let s2 = cache.session(&plan, &catalog, 2).unwrap();
        assert!(!s2.is_cached());
        assert!(s2.skeleton_hit(), "the verdict itself is cached");
        assert!(s2.fallback_reason().unwrap().contains("Split"));
        assert_eq!((cache.skeleton_hits(), cache.skeleton_misses()), (1, 1));
    }

    #[test]
    fn capacity_is_bounded_with_fifo_eviction() {
        let mut catalog = catalog();
        let cache = SessionCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);

        // Three epochs of the same plan: each catalog mutation orphans the
        // previous entry; the bound keeps only the 2 newest.
        for i in 0..3i64 {
            let extra = TableBuilder::new(Schema::new(vec![Field::int64("x")]))
                .row([Value::Int64(i)])
                .build()
                .unwrap();
            catalog.register(format!("extra_{i}"), extra).unwrap();
            let _ = cache.session(&losses_plan(), &catalog, 1).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.skeleton_misses(), 3);
        // The newest entry is still cached.
        let s = cache.session(&losses_plan(), &catalog, 2).unwrap();
        assert!(s.skeleton_hit());
        // An evicted (oldest) entry would rebuild — but its epoch is dead, so
        // the observable effect is just bounded memory; re-querying the live
        // catalog keeps hitting.
        assert_eq!(cache.skeleton_hits(), 1);
    }

    #[test]
    fn plan_errors_are_returned_not_cached() {
        let catalog = catalog();
        let cache = SessionCache::new();
        assert!(cache.session(&PlanNode::scan("nope"), &catalog, 1).is_err());
        assert!(cache.is_empty());
        assert_eq!((cache.skeleton_hits(), cache.skeleton_misses()), (0, 0));
    }
}
