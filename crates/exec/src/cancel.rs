//! Cooperative cancellation with optional deadlines.
//!
//! Long-running phase-2 work (block materialization, per-rep aggregation)
//! is chunked into units that take milliseconds, so cancellation does not
//! need preemption: a [`CancelToken`] is checked at block boundaries and the
//! unit in flight simply finishes before the query unwinds with a typed
//! [`Error::Timeout`].  The server hands each admitted query a token carrying
//! its per-query deadline; anything holding a clone (the connection handler,
//! a drain path) can also cancel explicitly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mcdbr_storage::{Error, Result};

#[derive(Debug)]
struct Inner {
    deadline: Option<Instant>,
    cancelled: AtomicBool,
}

/// A cheaply clonable cancellation handle: an optional wall-clock deadline
/// plus an explicit cancel flag.  Cloning shares state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::unbounded()
    }
}

impl CancelToken {
    /// A token that never expires on its own (explicit [`cancel`] only).
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn unbounded() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                deadline: None,
                cancelled: AtomicBool::new(false),
            }),
        }
    }

    /// A token that expires `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                deadline: Some(Instant::now() + timeout),
                cancelled: AtomicBool::new(false),
            }),
        }
    }

    /// Cancel explicitly; every clone observes it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once cancelled or past the deadline.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Boundary check: `Err(Error::Timeout)` once cancelled or expired.
    pub fn check(&self) -> Result<()> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(Error::Timeout("query cancelled".into()));
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Err(Error::Timeout(
                "query deadline exceeded at block boundary".into(),
            )),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_token_never_expires() {
        let t = CancelToken::unbounded();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::unbounded();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(matches!(t.check(), Err(Error::Timeout(_))));
    }

    #[test]
    fn deadline_expiry_is_a_typed_timeout() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(t.is_cancelled());
        let err = t.check().unwrap_err();
        assert!(matches!(err, Error::Timeout(_)), "got {err:?}");
        assert!(err.to_string().starts_with("deadline exceeded:"));
    }

    #[test]
    fn future_deadline_passes_checks() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
    }
}
