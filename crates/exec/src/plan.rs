//! Logical query plans.
//!
//! MCDB-R (like the MCDB prototype it extends) has no SQL optimizer; plans
//! are specified directly (paper Appendix D: "we use an MCDB-specific
//! language to specify a query plan directly").  [`PlanNode`] is that plan
//! language: a small tree of relational operators plus the MCDB-specific
//! [`RandomTableSpec`] node which fuses the paper's `Seed` and `Instantiate`
//! operators — it attaches one stream seed per uncertain tuple and
//! materializes a block of stream values, exactly what Fig. 2's
//! `Seed`/`Instantiate` pair does.

use std::fmt;
use std::sync::Arc;

use mcdbr_storage::{Catalog, DataType, Field, Result, Schema};
use mcdbr_vg::VgFunction;

use crate::expr::Expr;

/// How an output column of an uncertain table is produced.
#[derive(Debug, Clone)]
pub enum OutputColumn {
    /// Copy a column of the parameter-table row (deterministic, e.g. `CID`).
    Param {
        /// Column name in the parameter table.
        source: String,
        /// Name in the uncertain table.
        as_name: String,
    },
    /// A column of the VG function's output (random, e.g. `val`).
    Vg {
        /// Column index within the VG function's output table.
        vg_col: usize,
        /// Name in the uncertain table.
        as_name: String,
    },
}

/// Specification of an uncertain table — the plan-level form of the paper's
///
/// ```sql
/// CREATE TABLE Losses (CID, val) AS
///   FOR EACH CID IN means
///   WITH myVal AS Normal(VALUES(m, 1.0))
///   SELECT CID, myVal.* FROM myVal
/// ```
///
/// For every row of `param_table`, one seed is derived (via
/// [`mcdbr_prng::seed_for`] from the executor's master seed and `table_tag`),
/// the VG function is bound to the parameter expressions evaluated on that
/// row, and one output bundle is produced per row of the VG output table.
#[derive(Debug, Clone)]
pub struct RandomTableSpec {
    /// Name of the uncertain table (for diagnostics).
    pub name: String,
    /// The parameter table scanned by the `FOR EACH` clause.
    pub param_table: String,
    /// The VG function.
    pub vg: Arc<dyn VgFunction>,
    /// Expressions (over the parameter-table row) bound as VG parameters.
    pub vg_params: Vec<Expr>,
    /// Output columns.
    pub columns: Vec<OutputColumn>,
    /// Tag mixed into seed derivation so two uncertain tables scanning the
    /// same parameter table get independent streams.
    pub table_tag: u64,
}

impl RandomTableSpec {
    /// The schema of the uncertain table.
    pub fn schema(&self, catalog: &Catalog) -> Result<Schema> {
        let param_schema = catalog.get(&self.param_table)?.schema().clone();
        let vg_fields = self.vg.output_fields();
        let mut fields = Vec::with_capacity(self.columns.len());
        for col in &self.columns {
            match col {
                OutputColumn::Param { source, as_name } => {
                    let idx = param_schema.index_of(source)?;
                    fields.push(Field::new(
                        as_name.clone(),
                        param_schema.field(idx).data_type,
                    ));
                }
                OutputColumn::Vg { vg_col, as_name } => {
                    let dt = vg_fields
                        .get(*vg_col)
                        .map(|f| f.data_type)
                        .unwrap_or(DataType::Float64);
                    fields.push(Field::new(as_name.clone(), dt));
                }
            }
        }
        Ok(Schema::new(fields))
    }
}

/// Join types supported by the bundle executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner equi-join.
    Inner,
}

/// A logical plan node.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// Scan a deterministic table from the catalog.
    TableScan {
        /// Table name.
        table: String,
    },
    /// Generate an uncertain table (Seed + Instantiate fused).
    RandomTable(RandomTableSpec),
    /// Filter rows by a predicate.  Predicates over random attributes become
    /// per-repetition `isPres` masks (paper §5); predicates over
    /// deterministic attributes drop bundles outright.
    Filter {
        /// Input plan.
        input: Box<PlanNode>,
        /// The predicate.
        predicate: Expr,
    },
    /// Project / compute expressions.
    Project {
        /// Input plan.
        input: Box<PlanNode>,
        /// `(output name, expression)` pairs.
        exprs: Vec<(String, Expr)>,
    },
    /// Inner equi-join on deterministic attributes.  Joins on *random*
    /// attributes must apply [`PlanNode::Split`] first (paper §8).
    Join {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Pairs of `(left column, right column)` equated by the join.
        on: Vec<(String, String)>,
        /// Join type.
        join_type: JoinType,
    },
    /// MCDB's `Split` operation (paper §8): make a random attribute
    /// deterministic by enumerating its possible values and transferring the
    /// nondeterminism into presence information (and, for the Gibbs path,
    /// into a value guard on the originating stream).
    Split {
        /// Input plan.
        input: Box<PlanNode>,
        /// Name of the random column to split on.
        column: String,
    },
}

impl PlanNode {
    /// Scan a deterministic table.
    pub fn scan(table: impl Into<String>) -> PlanNode {
        PlanNode::TableScan {
            table: table.into(),
        }
    }

    /// Generate an uncertain table.
    pub fn random_table(spec: RandomTableSpec) -> PlanNode {
        PlanNode::RandomTable(spec)
    }

    /// Filter this plan's output.
    pub fn filter(self, predicate: Expr) -> PlanNode {
        PlanNode::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Project this plan's output.
    pub fn project(self, exprs: Vec<(impl Into<String>, Expr)>) -> PlanNode {
        PlanNode::Project {
            input: Box::new(self),
            exprs: exprs.into_iter().map(|(n, e)| (n.into(), e)).collect(),
        }
    }

    /// Inner equi-join with another plan.
    pub fn join(
        self,
        right: PlanNode,
        on: Vec<(impl Into<String>, impl Into<String>)>,
    ) -> PlanNode {
        PlanNode::Join {
            left: Box::new(self),
            right: Box::new(right),
            on: on.into_iter().map(|(l, r)| (l.into(), r.into())).collect(),
            join_type: JoinType::Inner,
        }
    }

    /// Split a random column into deterministic alternatives.
    pub fn split(self, column: impl Into<String>) -> PlanNode {
        PlanNode::Split {
            input: Box::new(self),
            column: column.into(),
        }
    }

    /// Compute the output schema of this plan against a catalog.
    pub fn schema(&self, catalog: &Catalog) -> Result<Schema> {
        match self {
            PlanNode::TableScan { table } => Ok(catalog.get(table)?.schema().clone()),
            PlanNode::RandomTable(spec) => spec.schema(catalog),
            PlanNode::Filter { input, .. } => input.schema(catalog),
            PlanNode::Split { input, .. } => input.schema(catalog),
            PlanNode::Project { input, exprs } => {
                let in_schema = input.schema(catalog)?;
                let mut fields = Vec::with_capacity(exprs.len());
                for (name, expr) in exprs {
                    fields.push(Field::new(name.clone(), infer_type(expr, &in_schema)));
                }
                Ok(Schema::new(fields))
            }
            PlanNode::Join { left, right, .. } => {
                Ok(left.schema(catalog)?.join(&right.schema(catalog)?))
            }
        }
    }

    /// A stable structural fingerprint of this plan, used (together with the
    /// catalog epoch) as the key of [`crate::SessionCache`].
    ///
    /// Two plans share a fingerprint exactly when they are structurally
    /// identical in every execution-relevant way: operator tree shape, table
    /// names, predicates and projections (including literal *types*, since
    /// `1i64` and `1.0f64` arithmetic differ), join keys, and — for uncertain
    /// tables — the parameter table, the VG function's
    /// [`mcdbr_vg::VgFunction::cache_token`], the VG parameter expressions,
    /// the output-column layout, and the `table_tag` mixed into seed
    /// derivation.  The diagnostic `RandomTableSpec::name` is deliberately
    /// excluded: it never affects execution.
    ///
    /// The hash is FNV-1a over a tagged pre-order serialization, so it is
    /// stable across processes and runs (unlike `std`'s `DefaultHasher`).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.plan(self);
        fp.finish()
    }

    /// All uncertain-table specifications reachable from this plan, in
    /// left-to-right order.  Useful for diagnostics and for the query
    /// front-end.
    pub fn random_tables(&self) -> Vec<&RandomTableSpec> {
        let mut out = Vec::new();
        self.collect_random_tables(&mut out);
        out
    }

    fn collect_random_tables<'a>(&'a self, out: &mut Vec<&'a RandomTableSpec>) {
        match self {
            PlanNode::TableScan { .. } => {}
            PlanNode::RandomTable(spec) => out.push(spec),
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Split { input, .. } => input.collect_random_tables(out),
            PlanNode::Join { left, right, .. } => {
                left.collect_random_tables(out);
                right.collect_random_tables(out);
            }
        }
    }
}

/// FNV-1a accumulator behind [`PlanNode::fingerprint`]: everything is fed as
/// `(tag, payload)` pairs with length-prefixed strings, so distinct
/// structures cannot collide by concatenation.
struct Fingerprint(u64);

impl Fingerprint {
    fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    fn finish(self) -> u64 {
        self.0
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn tag(&mut self, t: u8) {
        self.bytes(&[t]);
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn value(&mut self, v: &mcdbr_storage::Value) {
        use mcdbr_storage::Value;
        match v {
            Value::Null => self.tag(0),
            Value::Int64(i) => {
                self.tag(1);
                self.u64(*i as u64);
            }
            Value::Float64(x) => {
                self.tag(2);
                self.u64(x.to_bits());
            }
            Value::Bool(b) => {
                self.tag(3);
                self.bytes(&[u8::from(*b)]);
            }
            Value::Utf8(s) => {
                self.tag(4);
                self.str(s);
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Column(name) => {
                self.tag(1);
                self.str(name);
            }
            Expr::Literal(v) => {
                self.tag(2);
                self.value(v);
            }
            Expr::Binary { op, lhs, rhs } => {
                self.tag(3);
                self.tag(*op as u8);
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Not(inner) => {
                self.tag(4);
                self.expr(inner);
            }
        }
    }

    fn plan(&mut self, node: &PlanNode) {
        match node {
            PlanNode::TableScan { table } => {
                self.tag(1);
                self.str(table);
            }
            PlanNode::RandomTable(spec) => {
                self.tag(2);
                self.str(&spec.param_table);
                self.str(&spec.vg.cache_token());
                self.u64(spec.table_tag);
                self.u64(spec.vg_params.len() as u64);
                for e in &spec.vg_params {
                    self.expr(e);
                }
                self.u64(spec.columns.len() as u64);
                for col in &spec.columns {
                    match col {
                        OutputColumn::Param { source, as_name } => {
                            self.tag(1);
                            self.str(source);
                            self.str(as_name);
                        }
                        OutputColumn::Vg { vg_col, as_name } => {
                            self.tag(2);
                            self.u64(*vg_col as u64);
                            self.str(as_name);
                        }
                    }
                }
            }
            PlanNode::Filter { input, predicate } => {
                self.tag(3);
                self.expr(predicate);
                self.plan(input);
            }
            PlanNode::Project { input, exprs } => {
                self.tag(4);
                self.u64(exprs.len() as u64);
                for (name, e) in exprs {
                    self.str(name);
                    self.expr(e);
                }
                self.plan(input);
            }
            PlanNode::Join {
                left,
                right,
                on,
                join_type,
            } => {
                self.tag(5);
                self.tag(*join_type as u8);
                self.u64(on.len() as u64);
                for (l, r) in on {
                    self.str(l);
                    self.str(r);
                }
                self.plan(left);
                self.plan(right);
            }
            PlanNode::Split { input, column } => {
                self.tag(6);
                self.str(column);
                self.plan(input);
            }
        }
    }
}

/// Crude output-type inference for projections: comparisons and logic are
/// boolean, arithmetic is numeric (Float64 unless both sides are integer
/// columns/literals), column references keep their type.
fn infer_type(expr: &Expr, schema: &Schema) -> DataType {
    use crate::expr::BinaryOp::*;
    match expr {
        Expr::Column(name) => schema
            .index_of(name)
            .map(|i| schema.field(i).data_type)
            .unwrap_or(DataType::Null),
        Expr::Literal(v) => v.data_type(),
        Expr::Not(_) => DataType::Bool,
        Expr::Binary { op, lhs, rhs } => match op {
            Eq | NotEq | Lt | LtEq | Gt | GtEq | And | Or => DataType::Bool,
            Add | Sub | Mul => {
                let lt = infer_type(lhs, schema);
                let rt = infer_type(rhs, schema);
                if lt == DataType::Int64 && rt == DataType::Int64 {
                    DataType::Int64
                } else {
                    DataType::Float64
                }
            }
            Div => DataType::Float64,
        },
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn indent(f: &mut fmt::Formatter<'_>, node: &PlanNode, depth: usize) -> fmt::Result {
            let pad = "  ".repeat(depth);
            match node {
                PlanNode::TableScan { table } => writeln!(f, "{pad}TableScan({table})"),
                PlanNode::RandomTable(spec) => writeln!(
                    f,
                    "{pad}RandomTable({} FOR EACH {} WITH {})",
                    spec.name,
                    spec.param_table,
                    spec.vg.name()
                ),
                PlanNode::Filter { input, predicate } => {
                    writeln!(f, "{pad}Filter({predicate})")?;
                    indent(f, input, depth + 1)
                }
                PlanNode::Project { input, exprs } => {
                    let list: Vec<String> =
                        exprs.iter().map(|(n, e)| format!("{n} := {e}")).collect();
                    writeln!(f, "{pad}Project({})", list.join(", "))?;
                    indent(f, input, depth + 1)
                }
                PlanNode::Join {
                    left, right, on, ..
                } => {
                    let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                    writeln!(f, "{pad}Join({})", keys.join(" AND "))?;
                    indent(f, left, depth + 1)?;
                    indent(f, right, depth + 1)
                }
                PlanNode::Split { input, column } => {
                    writeln!(f, "{pad}Split({column})")?;
                    indent(f, input, depth + 1)
                }
            }
        }
        indent(f, self, 0)
    }
}

/// Convenience constructor for the common "scalar uncertain attribute"
/// pattern of paper §2: one parameter table, a scalar VG function, keep some
/// parameter columns and attach the VG value under `value_name`.
pub fn scalar_random_table(
    name: impl Into<String>,
    param_table: impl Into<String>,
    vg: Arc<dyn VgFunction>,
    vg_params: Vec<Expr>,
    keep_params: &[&str],
    value_name: impl Into<String>,
    table_tag: u64,
) -> RandomTableSpec {
    let mut columns: Vec<OutputColumn> = keep_params
        .iter()
        .map(|p| OutputColumn::Param {
            source: p.to_string(),
            as_name: p.to_string(),
        })
        .collect();
    columns.push(OutputColumn::Vg {
        vg_col: 0,
        as_name: value_name.into(),
    });
    RandomTableSpec {
        name: name.into(),
        param_table: param_table.into(),
        vg,
        vg_params,
        columns,
        table_tag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_storage::{Field, Table, TableBuilder, Value};
    use mcdbr_vg::NormalVg;

    fn catalog_with_means() -> Catalog {
        let means = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
            .row([Value::Int64(1), Value::Float64(3.0)])
            .row([Value::Int64(2), Value::Float64(4.0)])
            .build()
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.register("means", means).unwrap();
        catalog
    }

    fn losses_spec() -> RandomTableSpec {
        scalar_random_table(
            "Losses",
            "means",
            Arc::new(NormalVg),
            vec![Expr::col("m"), Expr::lit(1.0)],
            &["cid"],
            "val",
            1,
        )
    }

    #[test]
    fn random_table_schema() {
        let catalog = catalog_with_means();
        let schema = losses_spec().schema(&catalog).unwrap();
        assert_eq!(schema.names(), vec!["cid", "val"]);
        assert_eq!(schema.field(0).data_type, DataType::Int64);
        assert_eq!(schema.field(1).data_type, DataType::Float64);
    }

    #[test]
    fn plan_schema_propagation() {
        let catalog = catalog_with_means();
        let plan = PlanNode::random_table(losses_spec())
            .filter(Expr::col("cid").lt(Expr::lit(10i64)))
            .project(vec![
                ("loss", Expr::col("val")),
                ("double_loss", Expr::col("val").mul(Expr::lit(2.0))),
            ]);
        let schema = plan.schema(&catalog).unwrap();
        assert_eq!(schema.names(), vec!["loss", "double_loss"]);
        assert_eq!(schema.field(1).data_type, DataType::Float64);
    }

    #[test]
    fn join_schema_renames_duplicates() {
        let mut catalog = catalog_with_means();
        let sup = TableBuilder::new(Schema::new(vec![
            Field::int64("cid"),
            Field::utf8("region"),
        ]))
        .row([Value::Int64(1), Value::str("EU")])
        .build()
        .unwrap();
        catalog.register("sup", sup).unwrap();
        let plan = PlanNode::scan("means").join(PlanNode::scan("sup"), vec![("cid", "cid")]);
        let schema = plan.schema(&catalog).unwrap();
        assert_eq!(schema.names(), vec!["cid", "m", "cid_1", "region"]);
    }

    #[test]
    fn type_inference_for_projection() {
        let catalog = catalog_with_means();
        let plan = PlanNode::scan("means").project(vec![
            ("is_big", Expr::col("m").gt(Expr::lit(3.5))),
            ("cid2", Expr::col("cid").add(Expr::col("cid"))),
            ("ratio", Expr::col("m").div(Expr::lit(2.0))),
        ]);
        let schema = plan.schema(&catalog).unwrap();
        assert_eq!(schema.field(0).data_type, DataType::Bool);
        assert_eq!(schema.field(1).data_type, DataType::Int64);
        assert_eq!(schema.field(2).data_type, DataType::Float64);
    }

    #[test]
    fn random_tables_are_collected() {
        let plan =
            PlanNode::random_table(losses_spec()).filter(Expr::col("cid").lt(Expr::lit(10i64)));
        assert_eq!(plan.random_tables().len(), 1);
        assert_eq!(plan.random_tables()[0].name, "Losses");
        assert!(PlanNode::scan("means").random_tables().is_empty());
    }

    #[test]
    fn split_and_scan_schema_passthrough() {
        let catalog = catalog_with_means();
        let plan = PlanNode::random_table(losses_spec()).split("val");
        assert_eq!(plan.schema(&catalog).unwrap().names(), vec!["cid", "val"]);
        assert!(PlanNode::scan("missing").schema(&catalog).is_err());
    }

    #[test]
    fn display_shows_tree() {
        let plan =
            PlanNode::random_table(losses_spec()).filter(Expr::col("cid").lt(Expr::lit(10i64)));
        let text = plan.to_string();
        assert!(text.contains("Filter"));
        assert!(text.contains("RandomTable(Losses FOR EACH means WITH Normal)"));
    }

    #[test]
    fn fingerprints_are_stable_and_structural() {
        let a = PlanNode::random_table(losses_spec()).filter(Expr::col("cid").lt(Expr::lit(3i64)));
        let b = PlanNode::random_table(losses_spec()).filter(Expr::col("cid").lt(Expr::lit(3i64)));
        assert_eq!(a.fingerprint(), b.fingerprint(), "same structure, same fp");

        // Literal *types* matter (Int64 vs Float64 arithmetic differ).
        let float_lit =
            PlanNode::random_table(losses_spec()).filter(Expr::col("cid").lt(Expr::lit(3.0)));
        assert_ne!(a.fingerprint(), float_lit.fingerprint());

        // Operator structure, table tags, and VG configuration all matter.
        assert_ne!(
            a.fingerprint(),
            PlanNode::random_table(losses_spec()).fingerprint()
        );
        let mut retagged = losses_spec();
        retagged.table_tag = 2;
        assert_ne!(
            PlanNode::random_table(losses_spec()).fingerprint(),
            PlanNode::random_table(retagged).fingerprint()
        );
        let mut multi = losses_spec();
        multi.vg = Arc::new(mcdbr_vg::MultiNormalVg::new(3, 0.5));
        let mut multi2 = losses_spec();
        multi2.vg = Arc::new(mcdbr_vg::MultiNormalVg::new(4, 0.5));
        assert_ne!(
            PlanNode::random_table(multi).fingerprint(),
            PlanNode::random_table(multi2).fingerprint()
        );

        // The diagnostic table name is execution-irrelevant and excluded.
        let mut renamed = losses_spec();
        renamed.name = "Gains".into();
        assert_eq!(
            PlanNode::random_table(losses_spec()).fingerprint(),
            PlanNode::random_table(renamed).fingerprint()
        );

        // Join keys and split columns discriminate.
        let j1 = PlanNode::scan("means").join(PlanNode::scan("sup"), vec![("cid", "cid")]);
        let j2 = PlanNode::scan("means").join(PlanNode::scan("sup"), vec![("m", "cid")]);
        assert_ne!(j1.fingerprint(), j2.fingerprint());
        assert_ne!(
            PlanNode::scan("means").split("cid").fingerprint(),
            PlanNode::scan("means").split("m").fingerprint()
        );
    }

    #[test]
    fn missing_param_column_is_an_error() {
        let catalog = catalog_with_means();
        let mut spec = losses_spec();
        spec.columns.insert(
            0,
            OutputColumn::Param {
                source: "nonexistent".into(),
                as_name: "x".into(),
            },
        );
        assert!(spec.schema(&catalog).is_err());
        // And a plain missing table propagates too.
        let empty = Catalog::new();
        assert!(losses_spec().schema(&empty).is_err());
        let _ = Table::empty(Schema::empty());
    }
}
