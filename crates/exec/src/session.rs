//! Two-phase execution sessions: run deterministic plan work once,
//! re-instantiate streams per block.
//!
//! MCDB-R's central performance claim (paper §1, §9) is that deterministic
//! query work — scans, joins on deterministic attributes, constant-only
//! predicates — happens *exactly once*, no matter how many Monte Carlo
//! repetitions or Gibbs replenishment blocks are run.  [`Executor`] keeps
//! that promise within a single execution but not across executions: a
//! replenishing caller that re-runs the plan per block pays for the scans and
//! joins every time.  [`ExecSession`] closes the gap by splitting execution
//! into two phases:
//!
//! * **Phase 1 — [`ExecSession::prepare`]** runs the *deterministic skeleton*
//!   of a plan over the catalog exactly once, producing a cached
//!   [`DeterministicPrefix`]: the output schema, the stream registry (every
//!   seed with its VG function and bound parameter row), and one *symbolic
//!   bundle* per output tuple.  A symbolic bundle is a [`TupleBundle`] whose
//!   random attributes are lineage-only — `(seed, vg_row, vg_col)` with no
//!   materialized values — and whose value-dependent residue (predicates over
//!   random attributes, computed projections) is recorded as small expression
//!   closures to replay per block.
//! * **Phase 2 — [`ExecSession::instantiate_block`]** materializes the stream
//!   values for positions `base_pos .. base_pos + num_values` against the
//!   cached prefix: per-seed VG blocks are generated (in parallel — the
//!   position-addressable streams of `mcdbr-prng` make any split of the work
//!   bit-identical), the symbolic residue is evaluated, and a full
//!   [`BundleSet`] comes back.  No scan, join, or deterministic predicate is
//!   ever re-evaluated.
//!
//! The output of `instantiate_block(catalog, b, n)` is bit-identical to
//! `Executor::execute` with `ExecOptions { base_pos: b, num_values: n, .. }`
//! — the determinism suite in `tests/session_determinism.rs` asserts this
//! bundle-for-bundle, including across replenishment boundaries and thread
//! counts.
//!
//! **Cacheability.** One plan shape makes bundle *structure* depend on stream
//! *values*: `Split` applied to a column that is random in some bundle
//! (paper §8) — the number of output bundles equals the number of distinct
//! values in the block.  Such plans have no block-invariant deterministic
//! prefix; `prepare` detects this and the session falls back to re-running
//! the full plan per block through an inner [`Executor`], reporting the cost
//! honestly via [`ExecSession::plan_executions`].  Everything else — scans,
//! random tables, filters (deterministic or random), projections, joins,
//! `Split` over already-deterministic columns — is prefix-cacheable.

use std::collections::BTreeMap;

use mcdbr_prng::SeedId;
use mcdbr_storage::{Catalog, Error, Result, Schema, Tuple, Value};

use crate::bundle::{BundleSet, BundleValue, TupleBundle};
use crate::executor::{join_key, ExecOptions, Executor, JoinKey};
use crate::expr::Expr;
use crate::par;
use crate::plan::{OutputColumn, PlanNode};
use crate::stream_registry::StreamRegistry;

/// A symbolic attribute value: what phase 1 knows about an output column
/// before any stream values exist.
#[derive(Debug, Clone)]
enum SymValue {
    /// Deterministic: the same value in every DB instance.
    Const(Value),
    /// A random attribute with lineage only; phase 2 reads the block.
    Stream {
        seed: SeedId,
        vg_row: usize,
        vg_col: usize,
    },
    /// A projected expression over (possibly random) inputs; phase 2
    /// evaluates it once per block offset.
    Expr(Box<SymExpr>),
}

/// A deferred expression: the operator's input schema, one symbolic value per
/// input column, and the expression itself.
#[derive(Debug, Clone)]
struct SymExpr {
    schema: Schema,
    inputs: Vec<SymValue>,
    expr: Expr,
}

/// A deferred presence predicate (a `Filter` over random attributes,
/// paper §5): evaluated per block offset into an `isPres` mask.
#[derive(Debug, Clone)]
struct SymPred {
    schema: Schema,
    inputs: Vec<SymValue>,
    predicate: Expr,
}

/// One output tuple of the deterministic skeleton.
#[derive(Debug, Clone)]
struct SymBundle {
    values: Vec<SymValue>,
    preds: Vec<SymPred>,
}

impl SymBundle {
    fn constant(values: Vec<Value>) -> Self {
        SymBundle {
            values: values.into_iter().map(SymValue::Const).collect(),
            preds: Vec::new(),
        }
    }

    fn concat(&self, other: &SymBundle) -> SymBundle {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        let mut preds = self.preds.clone();
        preds.extend(other.preds.iter().cloned());
        SymBundle { values, preds }
    }
}

/// The cached result of phase 1: everything about a plan execution that does
/// not depend on which stream positions are materialized.
#[derive(Debug, Clone)]
pub struct DeterministicPrefix {
    schema: Schema,
    registry: StreamRegistry,
    bundles: Vec<SymBundle>,
    /// Rows produced by each stream's VG function per invocation (probed once
    /// during phase 1, validated against every materialized block).
    vg_rows: BTreeMap<SeedId, usize>,
    /// Streams actually referenced by surviving bundles.  Deterministic
    /// filters (paper §2's `WHERE CID < 10010`) drop bundles during phase 1;
    /// phase 2 never generates values for the dropped streams — a structural
    /// saving the one-shot executor (which instantiates before filtering)
    /// cannot make.
    active_seeds: Vec<SeedId>,
}

impl DeterministicPrefix {
    /// The output schema of the plan.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The stream registry: every seed with its VG function and parameters.
    pub fn registry(&self) -> &StreamRegistry {
        &self.registry
    }

    /// Number of symbolic bundles in the skeleton.
    pub fn num_bundles(&self) -> usize {
        self.bundles.len()
    }

    /// Number of registered random streams.
    pub fn num_streams(&self) -> usize {
        self.registry.len()
    }

    /// Number of streams referenced by surviving bundles — the streams a
    /// block materialization actually generates values for.
    pub fn num_active_streams(&self) -> usize {
        self.active_seeds.len()
    }
}

/// Collect every stream seed reachable from a symbolic bundle: its direct
/// attributes, plus streams referenced inside deferred expressions and
/// presence predicates.
fn collect_seeds(bundle: &SymBundle, out: &mut std::collections::BTreeSet<SeedId>) {
    fn walk(value: &SymValue, out: &mut std::collections::BTreeSet<SeedId>) {
        match value {
            SymValue::Const(_) => {}
            SymValue::Stream { seed, .. } => {
                out.insert(*seed);
            }
            SymValue::Expr(e) => {
                for input in &e.inputs {
                    walk(input, out);
                }
            }
        }
    }
    for value in &bundle.values {
        walk(value, out);
    }
    for pred in &bundle.preds {
        for input in &pred.inputs {
            walk(input, out);
        }
    }
}

/// Why phase 1 ran the plan through the fallback path instead of caching.
#[derive(Debug)]
enum Mode {
    /// The deterministic prefix is cached; blocks only materialize streams.
    Cached(Box<DeterministicPrefix>),
    /// The plan's bundle structure depends on stream values; every block
    /// re-runs the full plan through an inner executor.
    Fallback { executor: Executor, reason: String },
}

/// A two-phase execution session over one `(plan, catalog, master_seed)`.
///
/// ```text
/// let mut session = ExecSession::prepare(&plan, &catalog, seed)?;   // phase 1: once
/// let b0 = session.instantiate_block(&catalog, 0, 1000)?;           // phase 2: per block
/// let b1 = session.instantiate_block(&catalog, 1000, 1000)?;        // ... no plan re-run
/// ```
#[derive(Debug)]
pub struct ExecSession {
    plan: PlanNode,
    master_seed: u64,
    threads: usize,
    mode: Mode,
    plan_executions: usize,
    blocks_materialized: usize,
    values_materialized: u64,
}

impl ExecSession {
    /// Phase 1: run the deterministic skeleton of `plan` once, caching the
    /// [`DeterministicPrefix`].  Plans whose bundle structure depends on
    /// stream values (a `Split` over a random column) fall back to
    /// per-block full execution; see the module docs.
    pub fn prepare(plan: &PlanNode, catalog: &Catalog, master_seed: u64) -> Result<Self> {
        let mut registry = StreamRegistry::new();
        let mut vg_rows = BTreeMap::new();
        match exec_sym(plan, catalog, master_seed, &mut registry, &mut vg_rows) {
            Ok((schema, bundles)) => {
                let mut active = std::collections::BTreeSet::new();
                for bundle in &bundles {
                    collect_seeds(bundle, &mut active);
                }
                Ok(ExecSession {
                    plan: plan.clone(),
                    master_seed,
                    threads: par::default_threads(),
                    mode: Mode::Cached(Box::new(DeterministicPrefix {
                        schema,
                        registry,
                        bundles,
                        vg_rows,
                        active_seeds: active.into_iter().collect(),
                    })),
                    // The deterministic skeleton ran exactly once, here.
                    plan_executions: 1,
                    blocks_materialized: 0,
                    values_materialized: 0,
                })
            }
            Err(PrepError::Uncacheable(reason)) => Ok(ExecSession {
                plan: plan.clone(),
                master_seed,
                threads: par::default_threads(),
                mode: Mode::Fallback {
                    executor: Executor::new(),
                    reason,
                },
                plan_executions: 0,
                blocks_materialized: 0,
                values_materialized: 0,
            }),
            Err(PrepError::Fail(e)) => Err(e),
        }
    }

    /// Override the worker-thread count used by phase 2 (defaults to
    /// `MCDBR_THREADS` / available parallelism).  Results are bit-identical
    /// for every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Whether the deterministic prefix is cached (`false` means every block
    /// re-runs the full plan; see the module docs on cacheability).
    pub fn is_cached(&self) -> bool {
        matches!(self.mode, Mode::Cached(_))
    }

    /// The cached prefix, when the plan is cacheable.
    pub fn prefix(&self) -> Option<&DeterministicPrefix> {
        match &self.mode {
            Mode::Cached(prefix) => Some(prefix),
            Mode::Fallback { .. } => None,
        }
    }

    /// Why the session fell back to per-block full execution, if it did.
    pub fn fallback_reason(&self) -> Option<&str> {
        match &self.mode {
            Mode::Cached(_) => None,
            Mode::Fallback { reason, .. } => Some(reason),
        }
    }

    /// The master seed every stream seed is derived from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// How many times deterministic plan work has run: 1 for a cached
    /// session (phase 1), or one per materialized block in fallback mode.
    /// This is the counter the Appendix D plan-execution experiments report.
    pub fn plan_executions(&self) -> usize {
        self.plan_executions
    }

    /// Number of blocks materialized through phase 2.
    pub fn blocks_materialized(&self) -> usize {
        self.blocks_materialized
    }

    /// Total stream values materialized across all blocks (streams × block
    /// positions).
    pub fn values_materialized(&self) -> u64 {
        self.values_materialized
    }

    /// Phase 2: materialize stream positions `base_pos .. base_pos +
    /// num_values` against the cached prefix, returning a full [`BundleSet`]
    /// bit-identical to `Executor::execute` at the same options.
    ///
    /// `catalog` is only consulted in fallback mode (the cached prefix has
    /// already absorbed all catalog reads).
    pub fn instantiate_block(
        &mut self,
        catalog: &Catalog,
        base_pos: u64,
        num_values: usize,
    ) -> Result<BundleSet> {
        self.blocks_materialized += 1;
        match &mut self.mode {
            Mode::Fallback { executor, .. } => {
                self.plan_executions += 1;
                let opts = ExecOptions {
                    master_seed: self.master_seed,
                    num_values,
                    base_pos,
                };
                let set = executor.execute(&self.plan, catalog, &opts)?;
                self.values_materialized += (set.registry.len() * num_values) as u64;
                Ok(set)
            }
            Mode::Cached(prefix) => {
                self.values_materialized += (prefix.active_seeds.len() * num_values) as u64;
                instantiate_cached(prefix, self.threads, base_pos, num_values)
            }
        }
    }
}

// ===== Phase 2: block materialization against a cached prefix =====

/// Per-seed materialized VG outputs for one block: `blocks[seed][offset]` is
/// the VG output table at stream position `base_pos + offset`.
type BlockData = BTreeMap<SeedId, Vec<Vec<Tuple>>>;

fn instantiate_cached(
    prefix: &DeterministicPrefix,
    threads: usize,
    base_pos: u64,
    num_values: usize,
) -> Result<BundleSet> {
    // Generate the block of every stream still referenced by a surviving
    // bundle (deterministically-filtered streams cost nothing), fanned out
    // across seeds.  Each `(seed, position)` value is independent of all
    // others, so the split is bit-deterministic (see `crate::par`).
    let seeds = &prefix.active_seeds;
    let generated: Vec<Vec<Vec<Tuple>>> =
        par::try_par_map_threads(seeds, threads, |&seed| -> Result<Vec<Vec<Tuple>>> {
            let source = prefix.registry.source(seed)?;
            let expected = prefix.vg_rows.get(&seed).copied();
            let mut per_pos = Vec::with_capacity(num_values);
            for i in 0..num_values {
                let rows = source.generate_at(seed, base_pos + i as u64)?;
                if let Some(expected) = expected {
                    if rows.len() != expected {
                        return Err(Error::Invalid(format!(
                            "VG function {} produced {} output rows at stream position {} \
                             but {} during session prepare; the bundle executor requires a \
                             fixed row count",
                            source.vg.name(),
                            rows.len(),
                            base_pos + i as u64,
                            expected
                        )));
                    }
                }
                per_pos.push(rows);
            }
            Ok(per_pos)
        })?;
    let blocks: BlockData = seeds.iter().copied().zip(generated).collect();

    // Replay the symbolic residue of every bundle over the block, fanned out
    // across bundles.  Dropping never-present bundles afterwards preserves
    // the relative order `Executor::execute` produces.
    let converted: Vec<Option<TupleBundle>> =
        par::try_par_map_threads(&prefix.bundles, threads, |bundle| {
            materialize_bundle(bundle, &blocks, base_pos, num_values)
        })?;
    let bundles: Vec<TupleBundle> = converted.into_iter().flatten().collect();

    Ok(BundleSet {
        schema: prefix.schema.clone(),
        bundles,
        registry: prefix.registry.clone(),
        num_reps: num_values,
    })
}

/// Materialize one symbolic bundle for a block; `None` when its presence
/// mask is false everywhere (the executor drops such bundles at the filter
/// that produced them — dropping here, after the fact, yields the same
/// output sequence).
fn materialize_bundle(
    bundle: &SymBundle,
    blocks: &BlockData,
    base_pos: u64,
    num_values: usize,
) -> Result<Option<TupleBundle>> {
    let mut values = Vec::with_capacity(bundle.values.len());
    for sym in &bundle.values {
        values.push(materialize_value(sym, blocks, base_pos, num_values)?);
    }
    let is_pres = match bundle.preds.as_slice() {
        [] => None,
        preds => {
            let mut mask = Vec::with_capacity(num_values);
            for offset in 0..num_values {
                let mut present = true;
                for pred in preds {
                    let row = eval_row(&pred.inputs, blocks, offset)?;
                    if !pred.predicate.eval_bool(&pred.schema, &row)? {
                        present = false;
                        break;
                    }
                }
                mask.push(present);
            }
            if mask.iter().all(|&p| !p) {
                return Ok(None);
            }
            Some(mask)
        }
    };
    Ok(Some(TupleBundle { values, is_pres }))
}

fn materialize_value(
    sym: &SymValue,
    blocks: &BlockData,
    base_pos: u64,
    num_values: usize,
) -> Result<BundleValue> {
    match sym {
        SymValue::Const(v) => Ok(BundleValue::Const(v.clone())),
        SymValue::Stream {
            seed,
            vg_row,
            vg_col,
        } => {
            let per_pos = block_for(blocks, *seed)?;
            let values: Vec<Value> = per_pos
                .iter()
                .map(|rows| rows[*vg_row].value(*vg_col).clone())
                .collect();
            Ok(BundleValue::Random {
                seed: *seed,
                vg_row: *vg_row,
                vg_col: *vg_col,
                base_pos,
                values,
            })
        }
        SymValue::Expr(e) => {
            let mut computed = Vec::with_capacity(num_values);
            for offset in 0..num_values {
                let row = eval_row(&e.inputs, blocks, offset)?;
                computed.push(e.expr.eval(&e.schema, &row)?);
            }
            Ok(BundleValue::Computed(computed))
        }
    }
}

/// Evaluate one symbolic value at a single block offset.
fn eval_sym(sym: &SymValue, blocks: &BlockData, offset: usize) -> Result<Value> {
    match sym {
        SymValue::Const(v) => Ok(v.clone()),
        SymValue::Stream {
            seed,
            vg_row,
            vg_col,
        } => Ok(block_for(blocks, *seed)?[offset][*vg_row]
            .value(*vg_col)
            .clone()),
        SymValue::Expr(e) => {
            let row = eval_row(&e.inputs, blocks, offset)?;
            e.expr.eval(&e.schema, &row)
        }
    }
}

fn eval_row(inputs: &[SymValue], blocks: &BlockData, offset: usize) -> Result<Vec<Value>> {
    inputs
        .iter()
        .map(|sym| eval_sym(sym, blocks, offset))
        .collect()
}

fn block_for(blocks: &BlockData, seed: SeedId) -> Result<&Vec<Vec<Tuple>>> {
    blocks
        .get(&seed)
        .ok_or_else(|| Error::Invalid(format!("stream {seed} missing from materialized block")))
}

// ===== Phase 1: the symbolic (deterministic-skeleton) plan pass =====

enum PrepError {
    /// The plan's bundle structure depends on stream values.
    Uncacheable(String),
    /// An ordinary execution error (missing table/column, illegal join, ...).
    Fail(Error),
}

impl From<Error> for PrepError {
    fn from(e: Error) -> Self {
        PrepError::Fail(e)
    }
}

type SymResult = std::result::Result<(Schema, Vec<SymBundle>), PrepError>;

/// The symbolic mirror of `executor::exec_node`: identical traversal order,
/// identical per-bundle decisions, but random attributes stay lineage-only.
fn exec_sym(
    plan: &PlanNode,
    catalog: &Catalog,
    master_seed: u64,
    registry: &mut StreamRegistry,
    vg_rows: &mut BTreeMap<SeedId, usize>,
) -> SymResult {
    match plan {
        PlanNode::TableScan { table } => {
            let t = catalog.get(table)?;
            let bundles = t
                .rows()
                .iter()
                .map(|row| SymBundle::constant(row.values().to_vec()))
                .collect();
            Ok((t.schema().clone(), bundles))
        }
        PlanNode::RandomTable(spec) => {
            let param_table = catalog.get(&spec.param_table)?;
            let param_schema = param_table.schema();
            let out_schema = spec.schema(catalog)?;

            let mut bundles = Vec::new();
            for (row_idx, param_row) in param_table.rows().iter().enumerate() {
                // Seed operator: derive and register this tuple's stream.
                let seed = mcdbr_prng::seed_for(master_seed, spec.table_tag, row_idx as u64);
                let params: Vec<Value> = spec
                    .vg_params
                    .iter()
                    .map(|e| e.eval(param_schema, param_row.values()))
                    .collect::<Result<_>>()?;
                registry.register(seed, spec.vg.clone(), params);

                // Probe one VG invocation to learn the output-row count; the
                // probe is deterministic and every block validates against it.
                // A zero-row VG output emits no bundles, exactly like the
                // one-shot executor's `0..vg_rows` loop.
                let probe = registry.source(seed)?.generate_at(seed, 0)?;
                let num_rows = probe.len();
                vg_rows.insert(seed, num_rows);

                for vg_row in 0..num_rows {
                    let mut values = Vec::with_capacity(spec.columns.len());
                    for col in &spec.columns {
                        match col {
                            OutputColumn::Param { source, .. } => {
                                let idx = param_schema.index_of(source)?;
                                values.push(SymValue::Const(param_row.value(idx).clone()));
                            }
                            OutputColumn::Vg { vg_col, .. } => {
                                values.push(SymValue::Stream {
                                    seed,
                                    vg_row,
                                    vg_col: *vg_col,
                                });
                            }
                        }
                    }
                    bundles.push(SymBundle {
                        values,
                        preds: Vec::new(),
                    });
                }
            }
            Ok((out_schema, bundles))
        }
        PlanNode::Filter { input, predicate } => {
            let (schema, bundles) = exec_sym(input, catalog, master_seed, registry, vg_rows)?;
            let referenced = predicate.referenced_columns();
            let ref_indices: Vec<usize> = referenced
                .iter()
                .map(|c| schema.index_of(c))
                .collect::<Result<_>>()?;

            let mut out = Vec::with_capacity(bundles.len());
            for mut bundle in bundles {
                let touches_random = ref_indices
                    .iter()
                    .any(|&i| !matches!(bundle.values[i], SymValue::Const(_)));
                if !touches_random {
                    // Deterministic for this bundle: decide once, now.
                    let row = const_row(&bundle.values);
                    if predicate.eval_bool(&schema, &row)? {
                        out.push(bundle);
                    }
                } else {
                    // Random: defer into a per-block presence predicate.
                    // Only referenced columns are captured; the rest become
                    // `Null` placeholders so phase 2 never evaluates them.
                    let inputs = pruned_inputs(&bundle.values, &ref_indices);
                    bundle.preds.push(SymPred {
                        schema: schema.clone(),
                        inputs,
                        predicate: predicate.clone(),
                    });
                    out.push(bundle);
                }
            }
            Ok((schema, out))
        }
        PlanNode::Project { input, exprs } => {
            let (in_schema, bundles) = exec_sym(input, catalog, master_seed, registry, vg_rows)?;
            let out_schema = plan.schema(catalog)?;
            let mut out = Vec::with_capacity(bundles.len());
            for bundle in bundles {
                let mut values = Vec::with_capacity(exprs.len());
                for (_, expr) in exprs {
                    if let Expr::Column(name) = expr {
                        let idx = in_schema.index_of(name)?;
                        values.push(bundle.values[idx].clone());
                        continue;
                    }
                    let referenced = expr.referenced_columns();
                    let ref_indices: Vec<usize> = referenced
                        .iter()
                        .map(|c| in_schema.index_of(c))
                        .collect::<Result<Vec<_>>>()?;
                    let all_const = ref_indices
                        .iter()
                        .all(|&i| matches!(bundle.values[i], SymValue::Const(_)));
                    if all_const {
                        let row = const_row(&bundle.values);
                        values.push(SymValue::Const(expr.eval(&in_schema, &row)?));
                    } else {
                        values.push(SymValue::Expr(Box::new(SymExpr {
                            schema: in_schema.clone(),
                            inputs: pruned_inputs(&bundle.values, &ref_indices),
                            expr: expr.clone(),
                        })));
                    }
                }
                out.push(SymBundle {
                    values,
                    preds: bundle.preds,
                });
            }
            Ok((out_schema, out))
        }
        PlanNode::Join {
            left, right, on, ..
        } => {
            let (ls, lb) = exec_sym(left, catalog, master_seed, registry, vg_rows)?;
            let (rs, rb) = exec_sym(right, catalog, master_seed, registry, vg_rows)?;
            let out_schema = ls.join(&rs);
            if on.is_empty() {
                return Err(Error::Invalid("join requires at least one key pair".into()).into());
            }
            let left_keys: Vec<usize> = on
                .iter()
                .map(|(l, _)| ls.index_of(l))
                .collect::<Result<_>>()?;
            let right_keys: Vec<usize> = on
                .iter()
                .map(|(_, r)| rs.index_of(r))
                .collect::<Result<_>>()?;

            // Identical algorithm (and therefore output order) to the
            // executor's hash join: build on the right, probe in left order,
            // emit matches in right-insertion order.
            let mut table: std::collections::HashMap<Vec<JoinKey>, Vec<usize>> =
                std::collections::HashMap::with_capacity(rb.len());
            for (idx, bundle) in rb.iter().enumerate() {
                let key = sym_key(bundle, &right_keys, "right")?;
                if key.iter().any(|k| matches!(k, JoinKey::Null)) {
                    continue;
                }
                table.entry(key).or_default().push(idx);
            }
            let mut out = Vec::new();
            for bundle in &lb {
                let key = sym_key(bundle, &left_keys, "left")?;
                if key.iter().any(|k| matches!(k, JoinKey::Null)) {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    for &ridx in matches {
                        out.push(bundle.concat(&rb[ridx]));
                    }
                }
            }
            Ok((out_schema, out))
        }
        PlanNode::Split { input, column } => {
            let (schema, bundles) = exec_sym(input, catalog, master_seed, registry, vg_rows)?;
            let idx = schema.index_of(column)?;
            if bundles
                .iter()
                .any(|b| !matches!(b.values[idx], SymValue::Const(_)))
            {
                // The number of post-Split bundles equals the number of
                // distinct values in the block — structure depends on values.
                return Err(PrepError::Uncacheable(format!(
                    "Split({column}) over a random attribute enumerates block values; \
                     the plan has no block-invariant deterministic prefix (paper §8)"
                )));
            }
            // Split over an already-deterministic column is the executor's
            // passthrough case.
            Ok((schema, bundles))
        }
    }
}

/// Capture only the columns a deferred expression references; every other
/// input becomes a `Null` placeholder that phase 2 clones trivially instead
/// of re-evaluating (expressions only read their referenced columns).
fn pruned_inputs(values: &[SymValue], ref_indices: &[usize]) -> Vec<SymValue> {
    values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if ref_indices.contains(&i) {
                v.clone()
            } else {
                SymValue::Const(Value::Null)
            }
        })
        .collect()
}

/// The row a deterministic predicate/projection sees: constants in place,
/// `Null` elsewhere (the expression never reads the non-constant columns —
/// callers have already checked its referenced columns).
fn const_row(values: &[SymValue]) -> Vec<Value> {
    values
        .iter()
        .map(|v| match v {
            SymValue::Const(value) => value.clone(),
            _ => Value::Null,
        })
        .collect()
}

fn sym_key(
    bundle: &SymBundle,
    key_cols: &[usize],
    side: &str,
) -> std::result::Result<Vec<JoinKey>, PrepError> {
    key_cols
        .iter()
        .map(|&i| match &bundle.values[i] {
            SymValue::Const(v) => Ok(join_key(v)),
            _ => Err(PrepError::Fail(Error::InvalidOperation(format!(
                "{side} join key column {i} is a random attribute; apply Split before joining \
                 on a random attribute (paper §8)"
            )))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::scalar_random_table;
    use mcdbr_storage::{Field, TableBuilder};
    use mcdbr_vg::{DiscreteVg, NormalVg};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let means = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
            .row([Value::Int64(1), Value::Float64(3.0)])
            .row([Value::Int64(2), Value::Float64(4.0)])
            .row([Value::Int64(3), Value::Float64(5.0)])
            .build()
            .unwrap();
        let regions = TableBuilder::new(Schema::new(vec![
            Field::int64("cid"),
            Field::utf8("region"),
        ]))
        .row([Value::Int64(1), Value::str("EU")])
        .row([Value::Int64(2), Value::str("US")])
        .row([Value::Int64(2), Value::str("APAC")])
        .build()
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.register("means", means).unwrap();
        catalog.register("regions", regions).unwrap();
        catalog
    }

    fn losses_plan() -> PlanNode {
        PlanNode::random_table(scalar_random_table(
            "Losses",
            "means",
            Arc::new(NormalVg),
            vec![Expr::col("m"), Expr::lit(1.0)],
            &["cid"],
            "val",
            1,
        ))
    }

    fn assert_sets_identical(a: &BundleSet, b: &BundleSet) {
        assert_eq!(a.schema, b.schema);
        assert_eq!(a.num_reps, b.num_reps);
        assert_eq!(a.bundles, b.bundles);
    }

    #[test]
    fn prepare_caches_and_counts_once() {
        let catalog = catalog();
        let mut session = ExecSession::prepare(&losses_plan(), &catalog, 7).unwrap();
        assert!(session.is_cached());
        assert_eq!(session.plan_executions(), 1);
        assert_eq!(session.prefix().unwrap().num_streams(), 3);
        assert_eq!(session.prefix().unwrap().num_bundles(), 3);
        let _ = session.instantiate_block(&catalog, 0, 5).unwrap();
        let _ = session.instantiate_block(&catalog, 5, 5).unwrap();
        assert_eq!(
            session.plan_executions(),
            1,
            "blocks must not re-run the plan"
        );
        assert_eq!(session.blocks_materialized(), 2);
        assert_eq!(session.values_materialized(), 30);
    }

    #[test]
    fn block_matches_executor_bit_for_bit() {
        let catalog = catalog();
        let plan = losses_plan()
            .filter(Expr::col("cid").lt(Expr::lit(3i64)))
            .join(PlanNode::scan("regions"), vec![("cid", "cid")])
            .filter(Expr::col("val").gt(Expr::lit(3.5)))
            .project(vec![
                ("cid", Expr::col("cid")),
                ("loss", Expr::col("val")),
                ("double", Expr::col("val").mul(Expr::lit(2.0))),
                ("region", Expr::col("region")),
            ]);
        let mut session = ExecSession::prepare(&plan, &catalog, 11).unwrap();
        assert!(session.is_cached());
        for (base, n) in [(0u64, 16usize), (16, 8), (1000, 4)] {
            let block = session.instantiate_block(&catalog, base, n).unwrap();
            let from_scratch = Executor::new()
                .execute(
                    &plan,
                    &catalog,
                    &ExecOptions {
                        master_seed: 11,
                        num_values: n,
                        base_pos: base,
                    },
                )
                .unwrap();
            assert_sets_identical(&block, &from_scratch);
        }
        assert_eq!(session.plan_executions(), 1);
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let catalog = catalog();
        let plan = losses_plan().filter(Expr::col("val").gt(Expr::lit(4.0)));
        let mut seq = ExecSession::prepare(&plan, &catalog, 3)
            .unwrap()
            .with_threads(1);
        let mut par = ExecSession::prepare(&plan, &catalog, 3)
            .unwrap()
            .with_threads(8);
        let a = seq.instantiate_block(&catalog, 0, 64).unwrap();
        let b = par.instantiate_block(&catalog, 0, 64).unwrap();
        assert_sets_identical(&a, &b);
    }

    #[test]
    fn random_split_falls_back_to_full_execution() {
        let mut catalog = Catalog::new();
        let param = TableBuilder::new(Schema::new(vec![
            Field::int64("id"),
            Field::float64("w_young"),
            Field::float64("w_old"),
        ]))
        .row([Value::Int64(1), Value::Float64(0.5), Value::Float64(0.5)])
        .build()
        .unwrap();
        catalog.register("people", param).unwrap();
        let spec = crate::plan::RandomTableSpec {
            name: "ages".into(),
            param_table: "people".into(),
            vg: Arc::new(DiscreteVg::new(vec![Value::Int64(20), Value::Int64(21)])),
            vg_params: vec![Expr::col("w_young"), Expr::col("w_old")],
            columns: vec![
                OutputColumn::Param {
                    source: "id".into(),
                    as_name: "id".into(),
                },
                OutputColumn::Vg {
                    vg_col: 0,
                    as_name: "age".into(),
                },
            ],
            table_tag: 3,
        };
        let plan = PlanNode::random_table(spec).split("age");
        let mut session = ExecSession::prepare(&plan, &catalog, 11).unwrap();
        assert!(!session.is_cached());
        assert!(session.fallback_reason().unwrap().contains("Split"));
        assert_eq!(session.plan_executions(), 0);
        let block = session.instantiate_block(&catalog, 0, 32).unwrap();
        let from_scratch = Executor::new()
            .execute(&plan, &catalog, &ExecOptions::monte_carlo(11, 32))
            .unwrap();
        assert_sets_identical(&block, &from_scratch);
        assert_eq!(session.plan_executions(), 1, "fallback mode pays per block");
        let _ = session.instantiate_block(&catalog, 32, 32).unwrap();
        assert_eq!(session.plan_executions(), 2);
    }

    #[test]
    fn deterministic_filters_deactivate_dropped_streams() {
        // §2's `WHERE CID < 10010` pattern: the filter drops two of three
        // uncertain tuples during phase 1, so phase 2 generates values for
        // one stream only — while the one-shot executor generates all three
        // before filtering.  Results are still identical.
        let catalog = catalog();
        let plan = losses_plan().filter(Expr::col("cid").lt(Expr::lit(2i64)));
        let mut session = ExecSession::prepare(&plan, &catalog, 7).unwrap();
        let prefix = session.prefix().unwrap();
        assert_eq!(prefix.num_streams(), 3, "registry keeps every stream");
        assert_eq!(
            prefix.num_active_streams(),
            1,
            "only the survivor is generated"
        );
        let block = session.instantiate_block(&catalog, 0, 10).unwrap();
        assert_eq!(session.values_materialized(), 10);
        let from_scratch = Executor::new()
            .execute(&plan, &catalog, &ExecOptions::monte_carlo(7, 10))
            .unwrap();
        assert_sets_identical(&block, &from_scratch);
    }

    #[test]
    fn split_on_deterministic_column_stays_cacheable() {
        let catalog = catalog();
        let plan = losses_plan().split("cid");
        let session = ExecSession::prepare(&plan, &catalog, 7).unwrap();
        assert!(session.is_cached());
    }

    #[test]
    fn errors_still_surface_during_prepare() {
        let catalog = catalog();
        assert!(ExecSession::prepare(&PlanNode::scan("nope"), &catalog, 1).is_err());
        let join_random = losses_plan().join(PlanNode::scan("regions"), vec![("val", "cid")]);
        assert!(ExecSession::prepare(&join_random, &catalog, 1).is_err());
    }

    #[test]
    fn deterministic_only_plans_have_empty_registries() {
        let catalog = catalog();
        let mut session = ExecSession::prepare(&PlanNode::scan("means"), &catalog, 9).unwrap();
        let block = session.instantiate_block(&catalog, 0, 4).unwrap();
        assert_eq!(block.len(), 3);
        assert!(block.registry.is_empty());
        assert!(block.bundles.iter().all(|b| b.is_fully_const()));
    }
}
