//! Two-phase execution sessions: run deterministic plan work once,
//! re-instantiate streams per block — and share the deterministic part
//! across master seeds.
//!
//! MCDB-R's central performance claim (paper §1, §9) is that deterministic
//! query work — scans, joins on deterministic attributes, constant-only
//! predicates — happens *exactly once*, no matter how many Monte Carlo
//! repetitions or Gibbs replenishment blocks are run.  [`Executor`] keeps
//! that promise within a single execution but not across executions; this
//! module closes the gap with a three-layer split:
//!
//! * **[`PlanSkeleton`]** — the *seed-independent* result of running the
//!   deterministic skeleton of a plan over a catalog: the output schema, a
//!   [`SkeletonRegistry`] (every stream keyed by its `(table_tag, row)`
//!   [`StreamKey`] with its VG function and bound parameter row), and one
//!   *symbolic bundle* per output tuple.  A symbolic bundle's random
//!   attributes are lineage-only — `(stream key, vg_row, vg_col)` with no
//!   materialized values — and its value-dependent residue (predicates over
//!   random attributes, computed projections) is recorded as small
//!   expression closures to replay per block.  Nothing in the skeleton
//!   mentions a concrete PRNG seed, so one skeleton serves every master
//!   seed; [`crate::SessionCache`] exploits exactly this.
//! * **[`DeterministicPrefix`]** — a skeleton *bound* to one master seed:
//!   every stream key is mapped to its concrete [`mcdbr_prng::SeedId`] via
//!   [`mcdbr_prng::seed_for`].  Binding costs one hash mix per stream — no
//!   catalog reads, no VG probes, no plan traversal.
//! * **[`ExecSession`]** — the two-phase driver.  **Phase 1**
//!   ([`ExecSession::prepare`]) builds the skeleton and binds it.  **Phase
//!   2** ([`ExecSession::instantiate_block`]) materializes the stream
//!   values for positions `base_pos .. base_pos + num_values` against the
//!   prefix: per-stream VG blocks are generated (in parallel — the
//!   position-addressable streams of `mcdbr-prng` make any split of the
//!   work bit-identical), the symbolic residue is evaluated, and a full
//!   [`BundleSet`] comes back.  No scan, join, or deterministic predicate
//!   is ever re-evaluated.
//!
//! The output of `instantiate_block(catalog, b, n)` is bit-identical to
//! `Executor::execute` with `ExecOptions { base_pos: b, num_values: n, .. }`
//! — the determinism suite in `tests/session_determinism.rs` asserts this
//! bundle-for-bundle, including across replenishment boundaries, thread
//! counts, and skeleton re-binding to fresh master seeds.
//!
//! **Cacheability.** One plan shape makes bundle *structure* depend on stream
//! *values*: `Split` applied to a column that is random in some bundle
//! (paper §8) — the number of output bundles equals the number of distinct
//! values in the block.  Such plans have no block-invariant deterministic
//! prefix; skeleton construction detects this and the session falls back to
//! re-running the full plan per block through an inner [`Executor`],
//! reporting the cost honestly via [`ExecSession::plan_executions`].
//! Everything else — scans, random tables, filters (deterministic or
//! random), projections, joins, `Split` over already-deterministic columns —
//! is prefix-cacheable.
//!
//! **Seed-independence contract.** The skeleton probes each VG function once
//! (under a fixed probe seed) to learn its output-row count, because that
//! count shapes the bundle structure.  The executor contract — enforced at
//! every block materialization — is that a VG function's output-row count
//! depends only on its parameters and construction-time configuration, never
//! on the random draw; all built-in VG functions satisfy this, and a
//! violation surfaces as an explicit error, never as silently wrong data.

use std::collections::BTreeMap;
use std::sync::Arc;

use mcdbr_prng::{SeedId, StreamKey};
use mcdbr_storage::{
    BufferPool, Catalog, ColumnBlock, Error, Mask, PageCacheStats, Pager, PagerStats, Result,
    Schema, SelVec, Tuple, Value,
};

use crate::backend::ExecBackend;
use crate::bundle::{BundleSet, BundleValue, TupleBundle, ValueChain};
use crate::executor::{join_key, ExecOptions, Executor, JoinKey};
use crate::expr::Expr;
use crate::kernels::{self, Lane};
use crate::par;
use crate::plan::{OutputColumn, PlanNode};
use crate::pool::BlockBufferPool;
use crate::stream_registry::{SkeletonRegistry, StreamRegistry, StreamSource};

/// The master seed used only to probe VG output-row counts during skeleton
/// construction (the probed values are discarded; only the row count is
/// kept, and it must be seed-independent — see the module docs).
const PROBE_MASTER_SEED: u64 = 0;

/// A symbolic attribute value: what the skeleton pass knows about an output
/// column before any stream values exist.
#[derive(Debug, Clone)]
enum SymValue {
    /// Deterministic: the same value in every DB instance.
    Const(Value),
    /// A random attribute with seed-independent lineage only; phase 2 reads
    /// the materialized block of the bound stream.
    Stream {
        key: StreamKey,
        vg_row: usize,
        vg_col: usize,
    },
    /// A projected expression over (possibly random) inputs; phase 2
    /// evaluates it once per block offset.
    Expr(Box<SymExpr>),
}

/// A deferred expression: the operator's input schema, one symbolic value per
/// input column, and the expression itself.
#[derive(Debug, Clone)]
struct SymExpr {
    schema: Schema,
    inputs: Vec<SymValue>,
    expr: Expr,
}

/// A deferred presence predicate (a `Filter` over random attributes,
/// paper §5): evaluated per block offset into an `isPres` mask.
#[derive(Debug, Clone)]
struct SymPred {
    schema: Schema,
    inputs: Vec<SymValue>,
    predicate: Expr,
}

/// One output tuple of the deterministic skeleton.
#[derive(Debug, Clone)]
pub(crate) struct SymBundle {
    values: Vec<SymValue>,
    preds: Vec<SymPred>,
}

impl SymBundle {
    fn constant(values: Vec<Value>) -> Self {
        SymBundle {
            values: values.into_iter().map(SymValue::Const).collect(),
            preds: Vec::new(),
        }
    }

    fn concat(&self, other: &SymBundle) -> SymBundle {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        let mut preds = self.preds.clone();
        preds.extend(other.preds.iter().cloned());
        SymBundle { values, preds }
    }
}

/// The seed-independent result of the deterministic skeleton pass: everything
/// about a plan execution that depends only on the plan and the catalog —
/// never on the master seed or on which stream positions are materialized.
///
/// A skeleton is the unit [`crate::SessionCache`] stores: binding it to a
/// master seed ([`DeterministicPrefix`]) costs one seed derivation per
/// stream, so a cache hit skips scans, joins, constant predicates, and VG
/// probes entirely.
#[derive(Debug, Clone)]
pub struct PlanSkeleton {
    schema: Schema,
    registry: SkeletonRegistry,
    pub(crate) bundles: Vec<SymBundle>,
    /// Rows produced by each stream's VG function per invocation (probed once
    /// during the skeleton pass, validated against every materialized block).
    vg_rows: BTreeMap<StreamKey, usize>,
    /// Streams actually referenced by surviving bundles.  Deterministic
    /// filters (paper §2's `WHERE CID < 10010`) drop bundles during the
    /// skeleton pass; phase 2 never generates values for the dropped streams
    /// — a structural saving the one-shot executor (which instantiates before
    /// filtering) cannot make.
    active_keys: Vec<StreamKey>,
    /// Per-active-key generation recipe — the registry source plus the
    /// probed per-invocation row count — aligned with `active_keys`.
    /// Precomputed once here so the per-block generation fan-out indexes a
    /// slice instead of probing two `BTreeMap`s per stream per block (the
    /// registry may hold thousands of streams while only a filtered few are
    /// active).
    active_sources: Vec<(StreamSource, Option<usize>)>,
    /// Per-bundle sorted stream keys (first key = the bundle's shard anchor),
    /// computed once here so shard ownership decisions never re-walk the
    /// symbolic bundles per shard per block.
    pub(crate) bundle_keys: Vec<Vec<StreamKey>>,
    /// The distinct bundle anchors, sorted — what the shard planner
    /// partitions.  Partitioning anchors (rather than all active keys)
    /// balances the work shards actually *own*: on a multi-table join every
    /// bundle anchors at its smallest key, so ranges drawn over non-anchor
    /// keys would own nothing.
    anchor_keys: Vec<StreamKey>,
}

impl PlanSkeleton {
    /// The output schema of the plan.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The seed-independent stream registry: every `(table_tag, row)` key
    /// with its VG function and bound parameter row.
    pub fn registry(&self) -> &SkeletonRegistry {
        &self.registry
    }

    /// Number of symbolic bundles in the skeleton.
    pub fn num_bundles(&self) -> usize {
        self.bundles.len()
    }

    /// Number of registered random streams.
    pub fn num_streams(&self) -> usize {
        self.registry.len()
    }

    /// Number of streams referenced by surviving bundles — the streams a
    /// block materialization actually generates values for.
    pub fn num_active_streams(&self) -> usize {
        self.active_keys.len()
    }

    /// The streams referenced by surviving bundles, in increasing
    /// `(table_tag, row)` order — the streams a block materialization
    /// generates values for.
    pub fn active_keys(&self) -> &[StreamKey] {
        &self.active_keys
    }

    /// The distinct bundle anchor keys (each surviving bundle's smallest
    /// stream key), sorted — the key list a sharded backend's planner
    /// partitions into [`mcdbr_prng::StreamKeyRange`]s so every range owns
    /// an even share of bundles.
    pub fn anchor_keys(&self) -> &[StreamKey] {
        &self.anchor_keys
    }

    /// Bind this skeleton to a master seed, deriving every stream's concrete
    /// [`SeedId`] via [`mcdbr_prng::seed_for`].  This is the whole per-seed
    /// cost of reusing a skeleton: no catalog reads, no VG probes, no plan
    /// traversal.
    pub fn bind(self: &Arc<Self>, master_seed: u64) -> DeterministicPrefix {
        DeterministicPrefix {
            skeleton: Arc::clone(self),
            master_seed,
            registry: self.registry.bind(master_seed),
        }
    }

    /// Bind this skeleton for shard-internal use, with an **empty** bound
    /// registry: the whole shard path derives seeds purely
    /// (`key.bind(master_seed)`) and reads VG recipes from the skeleton
    /// registry, so a shard never consults a bound registry — paying
    /// per-block binding for state nothing reads would be waste.  The
    /// merged [`BundleSet`]'s registry comes from the session's own fully
    /// bound prefix; this prefix never escapes the shard.
    pub(crate) fn bind_for_shard(self: &Arc<Self>, master_seed: u64) -> DeterministicPrefix {
        DeterministicPrefix {
            skeleton: Arc::clone(self),
            master_seed,
            registry: StreamRegistry::new(),
        }
    }
}

/// A [`PlanSkeleton`] bound to one master seed: the cached result of phase 1
/// that phase 2 materializes blocks against.
///
/// The prefix holds the concrete seed of every stream (the skeleton's keys
/// mapped through [`mcdbr_prng::seed_for`]) and the seed-addressed
/// [`StreamRegistry`] carried by every emitted [`BundleSet`].
#[derive(Debug, Clone)]
pub struct DeterministicPrefix {
    skeleton: Arc<PlanSkeleton>,
    master_seed: u64,
    registry: StreamRegistry,
}

impl DeterministicPrefix {
    /// The output schema of the plan.
    pub fn schema(&self) -> &Schema {
        self.skeleton.schema()
    }

    /// The bound stream registry: every concrete seed with its VG function
    /// and parameters.
    pub fn registry(&self) -> &StreamRegistry {
        &self.registry
    }

    /// The seed-independent skeleton this prefix binds.
    pub fn skeleton(&self) -> &Arc<PlanSkeleton> {
        &self.skeleton
    }

    /// The master seed the skeleton is bound to.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Number of symbolic bundles in the skeleton.
    pub fn num_bundles(&self) -> usize {
        self.skeleton.num_bundles()
    }

    /// Number of registered random streams.
    pub fn num_streams(&self) -> usize {
        self.skeleton.num_streams()
    }

    /// Number of streams referenced by surviving bundles — the streams a
    /// block materialization actually generates values for.
    pub fn num_active_streams(&self) -> usize {
        self.skeleton.num_active_streams()
    }

    /// The concrete seed `key`'s stream is bound to — a pure function of
    /// `(master_seed, key)`, so no per-binding map is needed.
    fn seed_of(&self, key: StreamKey) -> SeedId {
        key.bind(self.master_seed)
    }
}

/// Collect every stream key reachable from a symbolic bundle: its direct
/// attributes, plus streams referenced inside deferred expressions and
/// presence predicates.
fn collect_keys(bundle: &SymBundle, out: &mut std::collections::BTreeSet<StreamKey>) {
    fn walk(value: &SymValue, out: &mut std::collections::BTreeSet<StreamKey>) {
        match value {
            SymValue::Const(_) => {}
            SymValue::Stream { key, .. } => {
                out.insert(*key);
            }
            SymValue::Expr(e) => {
                for input in &e.inputs {
                    walk(input, out);
                }
            }
        }
    }
    for value in &bundle.values {
        walk(value, out);
    }
    for pred in &bundle.preds {
        for input in &pred.inputs {
            walk(input, out);
        }
    }
}

/// Why phase 1 ran the plan through the fallback path instead of caching.
#[derive(Debug)]
enum Mode {
    /// The deterministic prefix is cached; blocks only materialize streams.
    Cached(Box<DeterministicPrefix>),
    /// The plan's bundle structure depends on stream values; every block
    /// re-runs the full plan through an inner executor.
    Fallback { executor: Executor, reason: String },
}

/// A two-phase execution session over one `(plan, catalog, master_seed)`.
///
/// ```text
/// let mut session = ExecSession::prepare(&plan, &catalog, seed)?;   // phase 1: once
/// let b0 = session.instantiate_block(&catalog, 0, 1000)?;           // phase 2: per block
/// let b1 = session.instantiate_block(&catalog, 1000, 1000)?;        // ... no plan re-run
/// ```
///
/// Sessions are usually obtained from a [`crate::SessionCache`], which skips
/// phase 1 entirely when a structurally identical `(plan, catalog)` pair was
/// prepared before — even under a different master seed.
#[derive(Debug)]
pub struct ExecSession {
    plan: PlanNode,
    master_seed: u64,
    threads: usize,
    backend: Arc<dyn ExecBackend>,
    pool: Arc<BlockBufferPool>,
    /// The pool's `(bytes_materialized, buffer_reuses)` when this session
    /// adopted it, so a shared pool's earlier work is not misattributed to
    /// this session (the `ShardStats::since` windowing pattern).
    pool_baseline: (u64, u64),
    /// The global page cache's counters when this session was built, so
    /// `pages_read` / `pool_evictions` report paged-scan activity since
    /// then (same windowing pattern as `pool_baseline`).
    page_baseline: PageCacheStats,
    /// The global pager's disk counters when this session was built, so
    /// `disk_reads` / `spilled_bytes` report this session's disk traffic
    /// (zeros when `MCDBR_DATA_DIR` is off).
    pager_baseline: PagerStats,
    mode: Mode,
    skeleton_hit: bool,
    plan_executions: usize,
    blocks_materialized: usize,
    values_materialized: u64,
}

impl ExecSession {
    /// Phase 1: run the deterministic skeleton of `plan` once and bind it to
    /// `master_seed`, caching the resulting [`DeterministicPrefix`] inside
    /// the session.  Plans whose bundle structure depends on stream values
    /// (a `Split` over a random column) fall back to per-block full
    /// execution; see the module docs.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use mcdbr_exec::plan::scalar_random_table;
    /// use mcdbr_exec::{ExecSession, Expr, PlanNode};
    /// use mcdbr_storage::{Catalog, Field, Schema, TableBuilder, Value};
    /// use mcdbr_vg::NormalVg;
    ///
    /// # fn main() -> mcdbr_storage::Result<()> {
    /// let mut catalog = Catalog::new();
    /// let means =
    ///     TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
    ///         .row([Value::Int64(1), Value::Float64(3.0)])
    ///         .row([Value::Int64(2), Value::Float64(4.0)])
    ///         .build()?;
    /// catalog.register("means", means)?;
    /// // SELECT cid, val FROM Losses — val ~ Normal(m, 1) per customer.
    /// let plan = PlanNode::random_table(scalar_random_table(
    ///     "Losses",
    ///     "means",
    ///     Arc::new(NormalVg),
    ///     vec![Expr::col("m"), Expr::lit(1.0)],
    ///     &["cid"],
    ///     "val",
    ///     1,
    /// ));
    ///
    /// // Phase 1 runs the deterministic plan work exactly once...
    /// let mut session = ExecSession::prepare(&plan, &catalog, 42)?;
    /// // ...and every phase-2 block materializes stream values only.
    /// let block = session.instantiate_block(&catalog, 0, 100)?;
    /// assert_eq!(block.len(), 2);
    /// let _next = session.instantiate_block(&catalog, 100, 100)?;
    /// assert_eq!(session.plan_executions(), 1);
    /// assert_eq!(session.blocks_materialized(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn prepare(plan: &PlanNode, catalog: &Catalog, master_seed: u64) -> Result<Self> {
        match build_skeleton(plan, catalog) {
            Ok(skeleton) => Ok(Self::from_skeleton(
                plan,
                Arc::new(skeleton),
                master_seed,
                false,
            )),
            Err(PrepError::Uncacheable(reason)) => {
                Ok(Self::fallback(plan, master_seed, reason, false))
            }
            Err(PrepError::Fail(e)) => Err(e),
        }
    }

    /// Build a session from an already-constructed skeleton.  `cache_hit`
    /// records whether the skeleton came out of a [`crate::SessionCache`]
    /// (in which case no deterministic plan work ran for this session).
    pub(crate) fn from_skeleton(
        plan: &PlanNode,
        skeleton: Arc<PlanSkeleton>,
        master_seed: u64,
        cache_hit: bool,
    ) -> Self {
        let prefix = skeleton.bind(master_seed);
        ExecSession {
            plan: plan.clone(),
            master_seed,
            threads: par::default_threads(),
            backend: crate::backend::default_backend(),
            pool: Arc::new(BlockBufferPool::new()),
            pool_baseline: (0, 0),
            page_baseline: BufferPool::global().stats(),
            pager_baseline: Pager::global_stats(),
            mode: Mode::Cached(Box::new(prefix)),
            skeleton_hit: cache_hit,
            // The deterministic skeleton ran exactly once — during this
            // session's prepare, or not at all on a cache hit.
            plan_executions: usize::from(!cache_hit),
            blocks_materialized: 0,
            values_materialized: 0,
        }
    }

    /// Build a fallback session for an uncacheable plan.  `cache_hit`
    /// records whether the (cached) uncacheability verdict spared this
    /// session the detection pass.
    pub(crate) fn fallback(
        plan: &PlanNode,
        master_seed: u64,
        reason: String,
        cache_hit: bool,
    ) -> Self {
        ExecSession {
            plan: plan.clone(),
            master_seed,
            threads: par::default_threads(),
            backend: crate::backend::default_backend(),
            pool: Arc::new(BlockBufferPool::new()),
            pool_baseline: (0, 0),
            page_baseline: BufferPool::global().stats(),
            pager_baseline: Pager::global_stats(),
            mode: Mode::Fallback {
                executor: Executor::new(),
                reason,
            },
            skeleton_hit: cache_hit,
            plan_executions: 0,
            blocks_materialized: 0,
            values_materialized: 0,
        }
    }

    /// Override the worker-thread count used by phase 2 (defaults to
    /// `MCDBR_THREADS` / available parallelism).  Results are bit-identical
    /// for every thread count.  The count applies to whichever
    /// [`ExecBackend`] the session runs on: workers for the in-process pool,
    /// concurrent shard slots for a sharded backend.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Run phase 2 on an explicit [`ExecBackend`] (defaults to
    /// [`crate::backend::default_backend`]: the in-process thread pool, or a
    /// [`crate::shard::ShardedBackend`] when `MCDBR_SHARDS` asks for one).
    /// Results are bit-identical for every backend and shard count.
    pub fn with_backend(mut self, backend: Arc<dyn ExecBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// The execution backend phase 2 runs on.
    pub fn backend(&self) -> &Arc<dyn ExecBackend> {
        &self.backend
    }

    /// Use an explicit [`BlockBufferPool`] for phase-2 columnar buffers —
    /// engines share one across queries so repeated queries reuse warm
    /// buffers.  The session's `bytes_materialized` / `buffer_reuses`
    /// counters report activity *since adoption*, so a shared pool's
    /// earlier work is not misattributed (sessions running concurrently on
    /// one pool still blur each other's windows, like [`ShardStats`](crate::ShardStats)).
    pub fn with_pool(mut self, pool: Arc<BlockBufferPool>) -> Self {
        self.pool_baseline = (pool.bytes_materialized(), pool.buffer_reuses());
        self.pool = pool;
        self
    }

    /// The columnar buffer pool phase 2 materializes blocks through.
    pub fn pool(&self) -> &Arc<BlockBufferPool> {
        &self.pool
    }

    /// Logical bytes this session wrote into columnar block buffers (pool
    /// activity since the session adopted it; 0 in fallback mode, which
    /// never materializes columnar blocks).  Sharded backends release
    /// per-task buffers through the same pool, so cross-shard regeneration
    /// is included.
    pub fn bytes_materialized(&self) -> u64 {
        self.pool
            .bytes_materialized()
            .saturating_sub(self.pool_baseline.0)
    }

    /// Block-buffer acquisitions this session served by recycling a pooled
    /// buffer rather than allocating — rises with every replenishment round
    /// or repeated block once the pool is warm.
    pub fn buffer_reuses(&self) -> u64 {
        self.pool
            .buffer_reuses()
            .saturating_sub(self.pool_baseline.1)
    }

    /// Sealed pages decoded from bytes because the global page cache had no
    /// resident frame for them (misses, i.e. actual decode work) since this
    /// session was built.  Table scans go page-at-a-time through
    /// [`BufferPool::global`], so this counts the paged-storage I/O the
    /// session's phase-2 work caused.  Concurrent sessions sharing the
    /// process blur each other's windows, like `bytes_materialized`.
    pub fn pages_read(&self) -> u64 {
        BufferPool::global()
            .stats()
            .since(&self.page_baseline)
            .pages_read
    }

    /// Frames the global page cache evicted to stay within its budget
    /// (`MCDBR_PAGE_CACHE`) since this session was built.  Nonzero
    /// evictions with correct results is the point of the pool: scans
    /// stay bit-identical no matter how small the frame budget is.
    pub fn pool_evictions(&self) -> u64 {
        BufferPool::global()
            .stats()
            .since(&self.page_baseline)
            .pool_evictions
    }

    /// Disk reads the pager served since this session was built — page
    /// cache misses whose sealed bytes had been spilled to a heap file.
    /// Always 0 when `MCDBR_DATA_DIR` is off; windowed like
    /// [`ExecSession::pages_read`], with the same shared-process blur.
    pub fn disk_reads(&self) -> u64 {
        Pager::global_stats().since(&self.pager_baseline).disk_reads
    }

    /// Sealed bytes spilling moved out of memory since this session was
    /// built (0 when `MCDBR_DATA_DIR` is off).
    pub fn spilled_bytes(&self) -> u64 {
        Pager::global_stats()
            .since(&self.pager_baseline)
            .spilled_bytes
    }

    /// Whether the deterministic prefix is cached (`false` means every block
    /// re-runs the full plan; see the module docs on cacheability).
    pub fn is_cached(&self) -> bool {
        matches!(self.mode, Mode::Cached(_))
    }

    /// Whether this session skipped phase 1 because a [`crate::SessionCache`]
    /// already held the plan's skeleton (possibly built under a different
    /// master seed).
    pub fn skeleton_hit(&self) -> bool {
        self.skeleton_hit
    }

    /// The cached prefix, when the plan is cacheable.
    pub fn prefix(&self) -> Option<&DeterministicPrefix> {
        match &self.mode {
            Mode::Cached(prefix) => Some(prefix),
            Mode::Fallback { .. } => None,
        }
    }

    /// Why the session fell back to per-block full execution, if it did.
    pub fn fallback_reason(&self) -> Option<&str> {
        match &self.mode {
            Mode::Cached(_) => None,
            Mode::Fallback { reason, .. } => Some(reason),
        }
    }

    /// The master seed every stream seed is derived from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// How many times deterministic plan work has run *in this session*: 1
    /// when phase 1 ran here, 0 when a cache hit skipped it, or one per
    /// materialized block in fallback mode.  This is the counter the
    /// Appendix D plan-execution experiments report.
    pub fn plan_executions(&self) -> usize {
        self.plan_executions
    }

    /// Number of blocks materialized through phase 2.
    pub fn blocks_materialized(&self) -> usize {
        self.blocks_materialized
    }

    /// Total stream values materialized across all blocks (active streams ×
    /// block positions) — the *logical* count the plan requires, independent
    /// of backend.  A sharded backend may regenerate cross-shard streams on
    /// top of this; that duplication is reported separately as
    /// [`crate::ShardStats::cross_shard_regens`].
    pub fn values_materialized(&self) -> u64 {
        self.values_materialized
    }

    /// Phase 2: materialize stream positions `base_pos .. base_pos +
    /// num_values` against the cached prefix, returning a full [`BundleSet`]
    /// bit-identical to `Executor::execute` at the same options.  Cacheable
    /// plans delegate the materialization to the session's [`ExecBackend`];
    /// fallback plans re-run the full plan inline (there is no prefix to
    /// partition, so backends — and their shard counters — never see them).
    ///
    /// `catalog` is only consulted in fallback mode (the cached prefix has
    /// already absorbed all catalog reads) and by dispatching backends,
    /// which snapshot it — together with the plan — for cold worker
    /// processes ([`ExecBackend::prepare_dispatch`]); pass the same catalog
    /// the session was prepared against.
    pub fn instantiate_block(
        &mut self,
        catalog: &Catalog,
        base_pos: u64,
        num_values: usize,
    ) -> Result<BundleSet> {
        self.blocks_materialized += 1;
        match &mut self.mode {
            Mode::Fallback { executor, .. } => {
                self.plan_executions += 1;
                let opts = ExecOptions {
                    master_seed: self.master_seed,
                    num_values,
                    base_pos,
                };
                let set = executor.execute(&self.plan, catalog, &opts)?;
                self.values_materialized += (set.registry.len() * num_values) as u64;
                Ok(set)
            }
            Mode::Cached(prefix) => {
                self.values_materialized += (prefix.num_active_streams() * num_values) as u64;
                self.backend.prepare_dispatch(&self.plan, catalog, prefix)?;
                self.backend.instantiate_block(
                    prefix,
                    &self.pool,
                    self.threads,
                    base_pos,
                    num_values,
                )
            }
        }
    }
}

// ===== Phase 2: block materialization against a cached prefix =====

/// One stream's generated block as shared, immutable per-cell columns.
///
/// The pooled [`ColumnBlock`] a VG kernel fills is a *reused* buffer; bundle
/// values must outlive it.  Converting *moves* each cell column out of the
/// pooled buffer into a recycled `Arc` ([`BlockBufferPool::adopt_cell`] —
/// a swap, not a copy) and lets the pooled buffer go straight back to the
/// pool — after which every bundle referencing the cell shares the same
/// `Arc` ([`crate::bundle::ValueChain`] segments), so a join fanning a
/// stream out to `m` bundles clones `m` refcounts, never `m` value vectors,
/// and dispatch partial frames encode the column bytes directly.
pub(crate) struct CellCols {
    rows: usize,
    cols: usize,
    cells: Cells,
}

/// Cell storage: scalar VG functions (one output row, one output column —
/// the dominant shape) store their single cell inline, skipping the
/// per-stream grid `Vec` allocation.
enum Cells {
    Single(Arc<mcdbr_storage::Column>),
    Grid(Vec<Arc<mcdbr_storage::Column>>),
}

impl CellCols {
    /// Move a generated block's cells out of the pooled buffer (see the
    /// type docs; the caller releases `block` immediately afterwards — its
    /// cells now hold the recycled Arcs' cleared warm storage).
    pub(crate) fn from_block(block: &mut ColumnBlock, pool: &BlockBufferPool) -> CellCols {
        let rows = block.rows_per_pos();
        let cols = block.cols();
        let cells = if rows * cols == 1 {
            Cells::Single(pool.adopt_cell(block.column_mut(0, 0)))
        } else {
            let mut grid = Vec::with_capacity(rows * cols);
            for row in 0..rows {
                for col in 0..cols {
                    grid.push(pool.adopt_cell(block.column_mut(row, col)));
                }
            }
            Cells::Grid(grid)
        };
        CellCols { rows, cols, cells }
    }

    /// The shared column for VG output cell `(row, col)`.
    pub(crate) fn cell(&self, row: usize, col: usize) -> Result<&Arc<mcdbr_storage::Column>> {
        if row >= self.rows || col >= self.cols {
            return Err(Error::Invalid(format!(
                "VG output cell ({row}, {col}) outside the {}x{} block shape",
                self.rows, self.cols
            )));
        }
        match &self.cells {
            Cells::Single(cell) => Ok(cell),
            Cells::Grid(grid) => Ok(&grid[row * self.cols + col]),
        }
    }

    /// The boxed value at block offset `pos` of cell `(row, col)`.
    pub(crate) fn value_at(&self, row: usize, col: usize, pos: usize) -> Result<Value> {
        Ok(self.cell(row, col)?.value_at(pos))
    }
}

/// Per-stream shared cell columns for one generated block window.
///
/// A sorted vec rather than a `BTreeMap`: both builders insert keys in
/// ascending order (the in-process fan-out walks the skeleton's sorted
/// `active_keys`; shard tasks walk a sorted needed-set), so building is an
/// append and lookup a cache-friendly binary search over one contiguous
/// allocation instead of pointer-chasing per-entry tree nodes.
#[derive(Default)]
pub(crate) struct CellData {
    entries: Vec<(StreamKey, CellCols)>,
}

impl CellData {
    pub(crate) fn with_capacity(n: usize) -> CellData {
        CellData {
            entries: Vec::with_capacity(n),
        }
    }

    /// Insert `key`'s cells.  Ascending-order inserts (the only order the
    /// engine produces) append; anything else falls back to a sorted insert
    /// so the invariant holds for arbitrary callers.
    pub(crate) fn insert(&mut self, key: StreamKey, cells: CellCols) {
        match self.entries.last() {
            Some((last, _)) if *last >= key => {
                match self.entries.binary_search_by_key(&key, |(k, _)| *k) {
                    Ok(i) => self.entries[i] = (key, cells),
                    Err(i) => self.entries.insert(i, (key, cells)),
                }
            }
            _ => self.entries.push((key, cells)),
        }
    }

    fn get(&self, key: StreamKey) -> Option<&CellCols> {
        self.entries
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| &self.entries[i].1)
    }
}

/// Generate one stream's VG outputs for positions `base_pos .. base_pos +
/// num_values` into a pooled columnar buffer, via the VG function's batched
/// [`mcdbr_vg::VgFunction::generate_block_into`] path (the default trait
/// implementation falls back to per-position generation, so third-party VG
/// functions keep working).  Pure in `(skeleton, master_seed, key, base_pos,
/// num_values)`, so any split of a block's streams across threads — or
/// shards — regenerates exactly the same values.
///
/// The VG output-row-count contract is validated **once per block** against
/// the batched generator's reported shape (the row path checked it per
/// position): raggedness within the block errors inside
/// [`ColumnBlock::push_position`] / [`ColumnBlock::validate`], and a uniform
/// shape that contradicts the skeleton probe errors here.
pub(crate) fn generate_stream_block(
    prefix: &DeterministicPrefix,
    key: StreamKey,
    base_pos: u64,
    num_values: usize,
    pool: &BlockBufferPool,
) -> Result<ColumnBlock> {
    let skeleton = prefix.skeleton();
    // Resolve through the precomputed active-key recipes when the key is
    // active (a sorted-slice probe); fall back to the registry maps for
    // keys outside the active set.
    let (source, expected) = match skeleton.active_keys.binary_search(&key) {
        Ok(idx) => {
            let (source, expected) = &skeleton.active_sources[idx];
            (source, *expected)
        }
        Err(_) => (
            skeleton.registry.source(key)?,
            skeleton.vg_rows.get(&key).copied(),
        ),
    };
    generate_source_block(
        source,
        expected,
        prefix.seed_of(key),
        base_pos,
        num_values,
        pool,
    )
}

/// [`generate_stream_block`] for the `idx`-th active stream, using the
/// skeleton's precomputed recipe directly — the per-block fan-out path,
/// which must not probe shared maps per stream.
pub(crate) fn generate_active_stream_block(
    prefix: &DeterministicPrefix,
    idx: usize,
    base_pos: u64,
    num_values: usize,
    pool: &BlockBufferPool,
) -> Result<ColumnBlock> {
    let skeleton = prefix.skeleton();
    let key = skeleton.active_keys[idx];
    let (source, expected) = &skeleton.active_sources[idx];
    generate_source_block(
        source,
        *expected,
        prefix.seed_of(key),
        base_pos,
        num_values,
        pool,
    )
}

fn generate_source_block(
    source: &crate::stream_registry::StreamSource,
    expected_rows: Option<usize>,
    seed: mcdbr_prng::SeedId,
    base_pos: u64,
    num_values: usize,
    pool: &BlockBufferPool,
) -> Result<ColumnBlock> {
    let mut block = pool.acquire();
    match fill_stream_block(
        source,
        expected_rows,
        seed,
        base_pos,
        num_values,
        &mut block,
    ) {
        Ok(()) => Ok(block),
        Err(e) => {
            // Back to the pool even on failure, so partial work is metered
            // and the buffer is not lost.
            pool.release(block);
            Err(e)
        }
    }
}

/// The fallible body of [`generate_stream_block`]: batched generation plus
/// the hoisted once-per-block shape validation.
fn fill_stream_block(
    source: &crate::stream_registry::StreamSource,
    expected_rows: Option<usize>,
    seed: mcdbr_prng::SeedId,
    base_pos: u64,
    num_values: usize,
    block: &mut ColumnBlock,
) -> Result<()> {
    source
        .vg
        .generate_block_into(&source.params, seed, base_pos, num_values, block)?;
    block.validate(num_values)?;
    if num_values > 0 {
        if let Some(expected) = expected_rows {
            if block.rows_per_pos() != expected {
                return Err(Error::Invalid(format!(
                    "VG function {} produced {} output rows per position in block [{}, {}) \
                     but {} during the skeleton probe; the bundle executor requires a \
                     seed-independent, fixed row count per parameter row",
                    source.vg.name(),
                    block.rows_per_pos(),
                    base_pos,
                    base_pos + num_values as u64,
                    expected
                )));
            }
        }
    }
    Ok(())
}

pub(crate) fn instantiate_cached(
    prefix: &DeterministicPrefix,
    pool: &BlockBufferPool,
    threads: usize,
    base_pos: u64,
    num_values: usize,
) -> Result<BundleSet> {
    // Generate the block of every stream still referenced by a surviving
    // bundle (deterministically-filtered streams cost nothing), fanned out
    // across streams into pooled columnar buffers.  Each `(seed, position)`
    // value is independent of all others, so the split is bit-deterministic
    // (see `crate::par`).
    let skeleton = prefix.skeleton();
    let keys = &skeleton.active_keys;
    // Reclaim cell storage freed since the last block (dropped results,
    // previous replenishment rounds) before adopting this block's cells.
    pool.sweep_cells();
    let idxs: Vec<u32> = (0..keys.len() as u32).collect();
    let generated: Vec<Result<ColumnBlock>> = par::par_map_threads(&idxs, threads, |&idx| {
        generate_active_stream_block(prefix, idx as usize, base_pos, num_values, pool)
    });
    // Copy each generated cell once into shared columns and return the
    // pooled buffer immediately — on errors too, so partial work is metered
    // and buffers survive for the next block (replenishment round, repeated
    // query, or a neighboring shard task).  The first error in input order
    // wins (the `crate::par` determinism contract).
    let mut cells = CellData::with_capacity(keys.len());
    let mut first_err = None;
    for (&key, result) in keys.iter().zip(generated) {
        match result {
            Ok(mut block) => {
                if first_err.is_none() {
                    cells.insert(key, CellCols::from_block(&mut block, pool));
                }
                pool.release(block);
            }
            Err(e) => {
                first_err.get_or_insert(e);
            }
        }
    }

    // Replay the symbolic residue of every bundle over the block, fanned out
    // across bundles.  The bundles share the cell columns by refcount.
    // Dropping never-present bundles afterwards preserves the relative order
    // `Executor::execute` produces.
    let converted: Result<Vec<Option<TupleBundle>>> = match first_err {
        Some(e) => Err(e),
        None => par::try_par_map_threads(&skeleton.bundles, threads, |bundle| {
            materialize_bundle(bundle, prefix, &cells, base_pos, num_values)
        }),
    };
    let bundles: Vec<TupleBundle> = converted?.into_iter().flatten().collect();

    Ok(BundleSet {
        schema: skeleton.schema.clone(),
        bundles,
        registry: prefix.registry.clone(),
        num_reps: num_values,
    })
}

/// Materialize one symbolic bundle for a block; `None` when its presence
/// mask is false everywhere (the executor drops such bundles at the filter
/// that produced them — dropping here, after the fact, yields the same
/// output sequence).
///
/// Random attributes become refcount clones of the shared cell columns.
/// Presence predicates run through the vectorized kernels
/// ([`crate::kernels::predicate_mask`]) whenever the expression compiles:
/// one packed mask per predicate, no row materialization.  Predicates
/// outside the vectorizable subset replay the scalar row loop — but only at
/// the offsets still present, which both preserves the scalar path's
/// cross-predicate short-circuit (a row failing an earlier predicate never
/// evaluates a later one) and makes the fallback selection-driven.
pub(crate) fn materialize_bundle(
    bundle: &SymBundle,
    prefix: &DeterministicPrefix,
    blocks: &CellData,
    base_pos: u64,
    num_values: usize,
) -> Result<Option<TupleBundle>> {
    let mut values = Vec::with_capacity(bundle.values.len());
    for sym in &bundle.values {
        values.push(materialize_value(
            sym, prefix, blocks, base_pos, num_values,
        )?);
    }
    let is_pres = match bundle.preds.as_slice() {
        [] => None,
        preds => {
            let mut present = Mask::ones(num_values);
            let mut row: Vec<Value> = Vec::new();
            for pred in preds {
                if let Some(mask) = vector_pred_mask(pred, blocks, num_values) {
                    present.and_assign(&mask);
                } else {
                    let sel = SelVec::from_mask(&present);
                    for &off in sel.indices() {
                        let offset = off as usize;
                        eval_row_into(&pred.inputs, blocks, offset, &mut row)?;
                        if !pred.predicate.eval_bool(&pred.schema, &row)? {
                            present.set(offset, false);
                        }
                    }
                }
            }
            if present.none() {
                return Ok(None);
            }
            Some(present.to_bools())
        }
    };
    Ok(Some(TupleBundle { values, is_pres }))
}

/// Try the vectorized kernel path for one deferred predicate: every input
/// must be a constant or a direct stream-cell column (deferred
/// sub-expressions stay on the scalar path), and the predicate itself must
/// compile (see [`crate::kernels`] for the subset and the bit-identity
/// argument).
fn vector_pred_mask(pred: &SymPred, blocks: &CellData, num_values: usize) -> Option<Mask> {
    let mut lanes: Vec<Lane<'_>> = Vec::with_capacity(pred.inputs.len());
    for sym in &pred.inputs {
        match sym {
            SymValue::Const(v) => lanes.push(Lane::Const(v)),
            SymValue::Stream {
                key,
                vg_row,
                vg_col,
            } => {
                let cell = blocks.get(*key)?.cell(*vg_row, *vg_col).ok()?;
                lanes.push(Lane::Col(cell));
            }
            SymValue::Expr(_) => return None,
        }
    }
    kernels::predicate_mask(&pred.predicate, &pred.schema, &lanes, num_values)
}

/// The vectorized path for a deferred projection expression: same lane
/// construction as [`vector_pred_mask`], compiled to a whole output column.
fn vector_computed(
    e: &SymExpr,
    blocks: &CellData,
    num_values: usize,
) -> Option<mcdbr_storage::Column> {
    let mut lanes: Vec<Lane<'_>> = Vec::with_capacity(e.inputs.len());
    for sym in &e.inputs {
        match sym {
            SymValue::Const(v) => lanes.push(Lane::Const(v)),
            SymValue::Stream {
                key,
                vg_row,
                vg_col,
            } => {
                let cell = blocks.get(*key)?.cell(*vg_row, *vg_col).ok()?;
                lanes.push(Lane::Col(cell));
            }
            SymValue::Expr(_) => return None,
        }
    }
    kernels::computed_column(&e.expr, &e.schema, &lanes, num_values)
}

fn materialize_value(
    sym: &SymValue,
    prefix: &DeterministicPrefix,
    blocks: &CellData,
    base_pos: u64,
    num_values: usize,
) -> Result<BundleValue> {
    match sym {
        SymValue::Const(v) => Ok(BundleValue::Const(v.clone())),
        SymValue::Stream {
            key,
            vg_row,
            vg_col,
        } => Ok(BundleValue::Random {
            seed: prefix.seed_of(*key),
            vg_row: *vg_row,
            vg_col: *vg_col,
            base_pos,
            // A zero-position block may be legitimately unshaped (the
            // generic fallback path learns its shape from the first
            // position); the empty chain is well-formed either way.  The
            // non-empty case is the columnar payoff: a refcount clone of
            // the shared cell column, shared across every bundle (and every
            // join fan-out) reading this cell.
            values: if num_values == 0 {
                ValueChain::new()
            } else {
                ValueChain::from_arc(Arc::clone(cells_for(blocks, *key)?.cell(*vg_row, *vg_col)?))
            },
        }),
        SymValue::Expr(e) => {
            if let Some(col) = vector_computed(e, blocks, num_values) {
                return Ok(BundleValue::Computed(ValueChain::from_column(col)));
            }
            let mut col = mcdbr_storage::Column::default();
            let mut row: Vec<Value> = Vec::new();
            for offset in 0..num_values {
                eval_row_into(&e.inputs, blocks, offset, &mut row)?;
                col.push_value(&e.expr.eval(&e.schema, &row)?);
            }
            Ok(BundleValue::Computed(ValueChain::from_column(col)))
        }
    }
}

/// Evaluate one symbolic value at a single block offset.
fn eval_sym(sym: &SymValue, blocks: &CellData, offset: usize) -> Result<Value> {
    match sym {
        SymValue::Const(v) => Ok(v.clone()),
        SymValue::Stream {
            key,
            vg_row,
            vg_col,
        } => cells_for(blocks, *key)?.value_at(*vg_row, *vg_col, offset),
        SymValue::Expr(e) => {
            let mut row = Vec::new();
            eval_row_into(&e.inputs, blocks, offset, &mut row)?;
            e.expr.eval(&e.schema, &row)
        }
    }
}

/// Build the input row at `offset` into a reusable scratch buffer (one
/// buffer serves every offset of a bundle's residue replay).
fn eval_row_into(
    inputs: &[SymValue],
    blocks: &CellData,
    offset: usize,
    row: &mut Vec<Value>,
) -> Result<()> {
    row.clear();
    for sym in inputs {
        row.push(eval_sym(sym, blocks, offset)?);
    }
    Ok(())
}

fn cells_for(blocks: &CellData, key: StreamKey) -> Result<&CellCols> {
    blocks
        .get(key)
        .ok_or_else(|| Error::Invalid(format!("stream {key} missing from materialized block")))
}

// ===== The retained row-path reference implementation =====
//
// The pre-columnar phase 2, kept verbatim as (a) the referee the
// determinism suite compares the columnar path against and (b) the baseline
// the `ablation_columnar` bench quantifies the win over.  Nothing in the
// engine calls it.

/// Per-stream row-wise VG outputs: `blocks[key][offset]` is the VG output
/// table at stream position `base_pos + offset` (the retired representation).
type RowBlockData = BTreeMap<StreamKey, Vec<Vec<Tuple>>>;

fn generate_stream_block_rows(
    prefix: &DeterministicPrefix,
    key: StreamKey,
    base_pos: u64,
    num_values: usize,
) -> Result<Vec<Vec<Tuple>>> {
    let skeleton = prefix.skeleton();
    let seed = prefix.seed_of(key);
    let source = skeleton.registry.source(key)?;
    let expected = skeleton.vg_rows.get(&key).copied();
    let mut per_pos = Vec::with_capacity(num_values);
    for i in 0..num_values {
        let rows = source.generate_at(seed, base_pos + i as u64)?;
        if let Some(expected) = expected {
            if rows.len() != expected {
                return Err(Error::Invalid(format!(
                    "VG function {} produced {} output rows at stream position {} \
                     but {} during the skeleton probe; the bundle executor requires \
                     a seed-independent, fixed row count per parameter row",
                    source.vg.name(),
                    rows.len(),
                    base_pos + i as u64,
                    expected
                )));
            }
        }
        per_pos.push(rows);
    }
    Ok(per_pos)
}

/// The pre-columnar block materialization (row-of-boxed-`Value` buffers, no
/// pooling): bit-identical to [`ExecSession::instantiate_block`] on a
/// cacheable plan, retained as the determinism referee and the
/// `ablation_columnar` baseline.
pub fn instantiate_block_rows(
    prefix: &DeterministicPrefix,
    threads: usize,
    base_pos: u64,
    num_values: usize,
) -> Result<BundleSet> {
    let skeleton = prefix.skeleton();
    let keys = &skeleton.active_keys;
    let generated: Vec<Vec<Vec<Tuple>>> = par::try_par_map_threads(keys, threads, |&key| {
        generate_stream_block_rows(prefix, key, base_pos, num_values)
    })?;
    let blocks: RowBlockData = keys.iter().copied().zip(generated).collect();

    let converted: Vec<Option<TupleBundle>> =
        par::try_par_map_threads(&skeleton.bundles, threads, |bundle| {
            materialize_bundle_rows(bundle, prefix, &blocks, base_pos, num_values)
        })?;
    let bundles: Vec<TupleBundle> = converted.into_iter().flatten().collect();

    Ok(BundleSet {
        schema: skeleton.schema.clone(),
        bundles,
        registry: prefix.registry.clone(),
        num_reps: num_values,
    })
}

fn materialize_bundle_rows(
    bundle: &SymBundle,
    prefix: &DeterministicPrefix,
    blocks: &RowBlockData,
    base_pos: u64,
    num_values: usize,
) -> Result<Option<TupleBundle>> {
    let mut values = Vec::with_capacity(bundle.values.len());
    for sym in &bundle.values {
        values.push(materialize_value_rows(
            sym, prefix, blocks, base_pos, num_values,
        )?);
    }
    let is_pres = match bundle.preds.as_slice() {
        [] => None,
        preds => {
            let mut mask = Vec::with_capacity(num_values);
            for offset in 0..num_values {
                let mut present = true;
                for pred in preds {
                    let row = eval_row_rows(&pred.inputs, blocks, offset)?;
                    if !pred.predicate.eval_bool(&pred.schema, &row)? {
                        present = false;
                        break;
                    }
                }
                mask.push(present);
            }
            if mask.iter().all(|&p| !p) {
                return Ok(None);
            }
            Some(mask)
        }
    };
    Ok(Some(TupleBundle { values, is_pres }))
}

fn materialize_value_rows(
    sym: &SymValue,
    prefix: &DeterministicPrefix,
    blocks: &RowBlockData,
    base_pos: u64,
    num_values: usize,
) -> Result<BundleValue> {
    match sym {
        SymValue::Const(v) => Ok(BundleValue::Const(v.clone())),
        SymValue::Stream {
            key,
            vg_row,
            vg_col,
        } => {
            let per_pos = row_block_for(blocks, *key)?;
            let values: Vec<Value> = per_pos
                .iter()
                .map(|rows| rows[*vg_row].value(*vg_col).clone())
                .collect();
            Ok(BundleValue::Random {
                seed: prefix.seed_of(*key),
                vg_row: *vg_row,
                vg_col: *vg_col,
                base_pos,
                values: ValueChain::from_values(&values),
            })
        }
        SymValue::Expr(e) => {
            let mut computed = Vec::with_capacity(num_values);
            for offset in 0..num_values {
                let row = eval_row_rows(&e.inputs, blocks, offset)?;
                computed.push(e.expr.eval(&e.schema, &row)?);
            }
            Ok(BundleValue::Computed(ValueChain::from_values(&computed)))
        }
    }
}

fn eval_sym_rows(sym: &SymValue, blocks: &RowBlockData, offset: usize) -> Result<Value> {
    match sym {
        SymValue::Const(v) => Ok(v.clone()),
        SymValue::Stream {
            key,
            vg_row,
            vg_col,
        } => Ok(row_block_for(blocks, *key)?[offset][*vg_row]
            .value(*vg_col)
            .clone()),
        SymValue::Expr(e) => {
            let row = eval_row_rows(&e.inputs, blocks, offset)?;
            e.expr.eval(&e.schema, &row)
        }
    }
}

fn eval_row_rows(inputs: &[SymValue], blocks: &RowBlockData, offset: usize) -> Result<Vec<Value>> {
    inputs
        .iter()
        .map(|sym| eval_sym_rows(sym, blocks, offset))
        .collect()
}

fn row_block_for(blocks: &RowBlockData, key: StreamKey) -> Result<&Vec<Vec<Tuple>>> {
    blocks
        .get(&key)
        .ok_or_else(|| Error::Invalid(format!("stream {key} missing from materialized block")))
}

// ===== Phase 1: the symbolic (deterministic-skeleton) plan pass =====

pub(crate) enum PrepError {
    /// The plan's bundle structure depends on stream values.
    Uncacheable(String),
    /// An ordinary execution error (missing table/column, illegal join, ...).
    Fail(Error),
}

impl From<Error> for PrepError {
    fn from(e: Error) -> Self {
        PrepError::Fail(e)
    }
}

/// Run the seed-independent deterministic-skeleton pass over `plan`.
///
/// Returns `Err(PrepError::Uncacheable)` for plans whose bundle structure
/// depends on stream values (a `Split` over a random column, paper §8) and
/// `Err(PrepError::Fail)` for ordinary execution errors.
pub(crate) fn build_skeleton(
    plan: &PlanNode,
    catalog: &Catalog,
) -> std::result::Result<PlanSkeleton, PrepError> {
    let mut registry = SkeletonRegistry::new();
    let mut vg_rows = BTreeMap::new();
    let (schema, bundles) = exec_sym(plan, catalog, &mut registry, &mut vg_rows)?;
    let mut active = std::collections::BTreeSet::new();
    let mut anchors = std::collections::BTreeSet::new();
    let mut bundle_keys = Vec::with_capacity(bundles.len());
    for bundle in &bundles {
        let mut keys = std::collections::BTreeSet::new();
        collect_keys(bundle, &mut keys);
        active.extend(keys.iter().copied());
        if let Some(&anchor) = keys.iter().next() {
            anchors.insert(anchor);
        }
        bundle_keys.push(keys.into_iter().collect::<Vec<_>>());
    }
    let active_keys: Vec<StreamKey> = active.into_iter().collect();
    let active_sources = active_keys
        .iter()
        .map(|&key| {
            let source = registry
                .source(key)
                .expect("every bundle key was registered during the skeleton pass")
                .clone();
            (source, vg_rows.get(&key).copied())
        })
        .collect();
    Ok(PlanSkeleton {
        schema,
        registry,
        bundles,
        vg_rows,
        active_keys,
        active_sources,
        bundle_keys,
        anchor_keys: anchors.into_iter().collect(),
    })
}

type SymResult = std::result::Result<(Schema, Vec<SymBundle>), PrepError>;

/// The symbolic mirror of `executor::exec_node`: identical traversal order,
/// identical per-bundle decisions, but random attributes stay lineage-only
/// and streams are identified by seed-independent keys.
fn exec_sym(
    plan: &PlanNode,
    catalog: &Catalog,
    registry: &mut SkeletonRegistry,
    vg_rows: &mut BTreeMap<StreamKey, usize>,
) -> SymResult {
    match plan {
        PlanNode::TableScan { table } => {
            let t = catalog.get(table)?;
            // Paged scan: rows stream out of the buffer pool one pinned
            // frame at a time (see `Table::iter`).
            let bundles = t
                .iter()
                .map(|row| SymBundle::constant(row.into_values()))
                .collect();
            Ok((t.schema().clone(), bundles))
        }
        PlanNode::RandomTable(spec) => {
            let param_table = catalog.get(&spec.param_table)?;
            let param_schema = param_table.schema();
            let out_schema = spec.schema(catalog)?;

            let mut bundles = Vec::new();
            for (row_idx, param_row) in param_table.iter().enumerate() {
                // Seed operator, seed-independently: record this tuple's
                // stream by its `(table_tag, row)` key; concrete seeds are
                // derived at binding time.
                let key = StreamKey::new(spec.table_tag, row_idx as u64);
                let params: Vec<Value> = spec
                    .vg_params
                    .iter()
                    .map(|e| e.eval(param_schema, param_row.values()))
                    .collect::<Result<_>>()?;
                registry.register(key, spec.vg.clone(), params);

                // Probe one VG invocation to learn the output-row count; the
                // count is seed-independent by contract (see module docs) and
                // every materialized block validates against it.  A zero-row
                // VG output emits no bundles, exactly like the one-shot
                // executor's `0..vg_rows` loop.
                let probe = registry
                    .source(key)?
                    .generate_at(key.bind(PROBE_MASTER_SEED), 0)?;
                let num_rows = probe.len();
                vg_rows.insert(key, num_rows);

                for vg_row in 0..num_rows {
                    let mut values = Vec::with_capacity(spec.columns.len());
                    for col in &spec.columns {
                        match col {
                            OutputColumn::Param { source, .. } => {
                                let idx = param_schema.index_of(source)?;
                                values.push(SymValue::Const(param_row.value(idx).clone()));
                            }
                            OutputColumn::Vg { vg_col, .. } => {
                                values.push(SymValue::Stream {
                                    key,
                                    vg_row,
                                    vg_col: *vg_col,
                                });
                            }
                        }
                    }
                    bundles.push(SymBundle {
                        values,
                        preds: Vec::new(),
                    });
                }
            }
            Ok((out_schema, bundles))
        }
        PlanNode::Filter { input, predicate } => {
            let (schema, bundles) = exec_sym(input, catalog, registry, vg_rows)?;
            let referenced = predicate.referenced_columns();
            let ref_indices: Vec<usize> = referenced
                .iter()
                .map(|c| schema.index_of(c))
                .collect::<Result<_>>()?;

            let mut out = Vec::with_capacity(bundles.len());
            for mut bundle in bundles {
                let touches_random = ref_indices
                    .iter()
                    .any(|&i| !matches!(bundle.values[i], SymValue::Const(_)));
                if !touches_random {
                    // Deterministic for this bundle: decide once, now.
                    let row = const_row(&bundle.values);
                    if predicate.eval_bool(&schema, &row)? {
                        out.push(bundle);
                    }
                } else {
                    // Random: defer into a per-block presence predicate.
                    // Only referenced columns are captured; the rest become
                    // `Null` placeholders so phase 2 never evaluates them.
                    let inputs = pruned_inputs(&bundle.values, &ref_indices);
                    bundle.preds.push(SymPred {
                        schema: schema.clone(),
                        inputs,
                        predicate: predicate.clone(),
                    });
                    out.push(bundle);
                }
            }
            Ok((schema, out))
        }
        PlanNode::Project { input, exprs } => {
            let (in_schema, bundles) = exec_sym(input, catalog, registry, vg_rows)?;
            let out_schema = plan.schema(catalog)?;
            let mut out = Vec::with_capacity(bundles.len());
            for bundle in bundles {
                let mut values = Vec::with_capacity(exprs.len());
                for (_, expr) in exprs {
                    if let Expr::Column(name) = expr {
                        let idx = in_schema.index_of(name)?;
                        values.push(bundle.values[idx].clone());
                        continue;
                    }
                    let referenced = expr.referenced_columns();
                    let ref_indices: Vec<usize> = referenced
                        .iter()
                        .map(|c| in_schema.index_of(c))
                        .collect::<Result<Vec<_>>>()?;
                    let all_const = ref_indices
                        .iter()
                        .all(|&i| matches!(bundle.values[i], SymValue::Const(_)));
                    if all_const {
                        let row = const_row(&bundle.values);
                        values.push(SymValue::Const(expr.eval(&in_schema, &row)?));
                    } else {
                        values.push(SymValue::Expr(Box::new(SymExpr {
                            schema: in_schema.clone(),
                            inputs: pruned_inputs(&bundle.values, &ref_indices),
                            expr: expr.clone(),
                        })));
                    }
                }
                out.push(SymBundle {
                    values,
                    preds: bundle.preds,
                });
            }
            Ok((out_schema, out))
        }
        PlanNode::Join {
            left, right, on, ..
        } => {
            let (ls, lb) = exec_sym(left, catalog, registry, vg_rows)?;
            let (rs, rb) = exec_sym(right, catalog, registry, vg_rows)?;
            let out_schema = ls.join(&rs);
            if on.is_empty() {
                return Err(Error::Invalid("join requires at least one key pair".into()).into());
            }
            let left_keys: Vec<usize> = on
                .iter()
                .map(|(l, _)| ls.index_of(l))
                .collect::<Result<_>>()?;
            let right_keys: Vec<usize> = on
                .iter()
                .map(|(_, r)| rs.index_of(r))
                .collect::<Result<_>>()?;

            // Identical algorithm (and therefore output order) to the
            // executor's hash join: build on the right, probe in left order,
            // emit matches in right-insertion order.
            let mut table: std::collections::HashMap<Vec<JoinKey>, Vec<usize>> =
                std::collections::HashMap::with_capacity(rb.len());
            for (idx, bundle) in rb.iter().enumerate() {
                let key = sym_key(bundle, &right_keys, "right")?;
                if key.iter().any(|k| matches!(k, JoinKey::Null)) {
                    continue;
                }
                table.entry(key).or_default().push(idx);
            }
            let mut out = Vec::new();
            for bundle in &lb {
                let key = sym_key(bundle, &left_keys, "left")?;
                if key.iter().any(|k| matches!(k, JoinKey::Null)) {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    for &ridx in matches {
                        out.push(bundle.concat(&rb[ridx]));
                    }
                }
            }
            Ok((out_schema, out))
        }
        PlanNode::Split { input, column } => {
            let (schema, bundles) = exec_sym(input, catalog, registry, vg_rows)?;
            let idx = schema.index_of(column)?;
            if bundles
                .iter()
                .any(|b| !matches!(b.values[idx], SymValue::Const(_)))
            {
                // The number of post-Split bundles equals the number of
                // distinct values in the block — structure depends on values.
                return Err(PrepError::Uncacheable(format!(
                    "Split({column}) over a random attribute enumerates block values; \
                     the plan has no block-invariant deterministic prefix (paper §8)"
                )));
            }
            // Split over an already-deterministic column is the executor's
            // passthrough case.
            Ok((schema, bundles))
        }
    }
}

/// Capture only the columns a deferred expression references; every other
/// input becomes a `Null` placeholder that phase 2 clones trivially instead
/// of re-evaluating (expressions only read their referenced columns).
fn pruned_inputs(values: &[SymValue], ref_indices: &[usize]) -> Vec<SymValue> {
    values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if ref_indices.contains(&i) {
                v.clone()
            } else {
                SymValue::Const(Value::Null)
            }
        })
        .collect()
}

/// The row a deterministic predicate/projection sees: constants in place,
/// `Null` elsewhere (the expression never reads the non-constant columns —
/// callers have already checked its referenced columns).
fn const_row(values: &[SymValue]) -> Vec<Value> {
    values
        .iter()
        .map(|v| match v {
            SymValue::Const(value) => value.clone(),
            _ => Value::Null,
        })
        .collect()
}

fn sym_key(
    bundle: &SymBundle,
    key_cols: &[usize],
    side: &str,
) -> std::result::Result<Vec<JoinKey>, PrepError> {
    key_cols
        .iter()
        .map(|&i| match &bundle.values[i] {
            SymValue::Const(v) => Ok(join_key(v)),
            _ => Err(PrepError::Fail(Error::InvalidOperation(format!(
                "{side} join key column {i} is a random attribute; apply Split before joining \
                 on a random attribute (paper §8)"
            )))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::scalar_random_table;
    use mcdbr_storage::{Field, TableBuilder};
    use mcdbr_vg::{DiscreteVg, NormalVg};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let means = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
            .row([Value::Int64(1), Value::Float64(3.0)])
            .row([Value::Int64(2), Value::Float64(4.0)])
            .row([Value::Int64(3), Value::Float64(5.0)])
            .build()
            .unwrap();
        let regions = TableBuilder::new(Schema::new(vec![
            Field::int64("cid"),
            Field::utf8("region"),
        ]))
        .row([Value::Int64(1), Value::str("EU")])
        .row([Value::Int64(2), Value::str("US")])
        .row([Value::Int64(2), Value::str("APAC")])
        .build()
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.register("means", means).unwrap();
        catalog.register("regions", regions).unwrap();
        catalog
    }

    fn losses_plan() -> PlanNode {
        PlanNode::random_table(scalar_random_table(
            "Losses",
            "means",
            Arc::new(NormalVg),
            vec![Expr::col("m"), Expr::lit(1.0)],
            &["cid"],
            "val",
            1,
        ))
    }

    fn assert_sets_identical(a: &BundleSet, b: &BundleSet) {
        assert_eq!(a.schema, b.schema);
        assert_eq!(a.num_reps, b.num_reps);
        assert_eq!(a.bundles, b.bundles);
    }

    #[test]
    fn prepare_caches_and_counts_once() {
        let catalog = catalog();
        let mut session = ExecSession::prepare(&losses_plan(), &catalog, 7).unwrap();
        assert!(session.is_cached());
        assert!(!session.skeleton_hit());
        assert_eq!(session.plan_executions(), 1);
        assert_eq!(session.prefix().unwrap().num_streams(), 3);
        assert_eq!(session.prefix().unwrap().num_bundles(), 3);
        let _ = session.instantiate_block(&catalog, 0, 5).unwrap();
        let _ = session.instantiate_block(&catalog, 5, 5).unwrap();
        assert_eq!(
            session.plan_executions(),
            1,
            "blocks must not re-run the plan"
        );
        assert_eq!(session.blocks_materialized(), 2);
        assert_eq!(session.values_materialized(), 30);
    }

    #[test]
    fn block_matches_executor_bit_for_bit() {
        let catalog = catalog();
        let plan = losses_plan()
            .filter(Expr::col("cid").lt(Expr::lit(3i64)))
            .join(PlanNode::scan("regions"), vec![("cid", "cid")])
            .filter(Expr::col("val").gt(Expr::lit(3.5)))
            .project(vec![
                ("cid", Expr::col("cid")),
                ("loss", Expr::col("val")),
                ("double", Expr::col("val").mul(Expr::lit(2.0))),
                ("region", Expr::col("region")),
            ]);
        let mut session = ExecSession::prepare(&plan, &catalog, 11).unwrap();
        assert!(session.is_cached());
        for (base, n) in [(0u64, 16usize), (16, 8), (1000, 4)] {
            let block = session.instantiate_block(&catalog, base, n).unwrap();
            let from_scratch = Executor::new()
                .execute(
                    &plan,
                    &catalog,
                    &ExecOptions {
                        master_seed: 11,
                        num_values: n,
                        base_pos: base,
                    },
                )
                .unwrap();
            assert_sets_identical(&block, &from_scratch);
        }
        assert_eq!(session.plan_executions(), 1);
    }

    #[test]
    fn one_skeleton_serves_many_master_seeds() {
        // The seed-independence property the session cache is built on: a
        // skeleton constructed once can be bound to any master seed, and
        // every binding is bit-identical to a from-scratch prepare at that
        // seed.
        let catalog = catalog();
        let plan = losses_plan()
            .filter(Expr::col("cid").lt(Expr::lit(3i64)))
            .filter(Expr::col("val").gt(Expr::lit(3.5)));
        let skeleton = Arc::new(build_skeleton(&plan, &catalog).unwrap_or_else(|_| panic!()));
        for seed in [7u64, 11, 42, 0xDEAD_BEEF] {
            let mut rebound = ExecSession::from_skeleton(&plan, Arc::clone(&skeleton), seed, true);
            assert!(rebound.skeleton_hit());
            assert_eq!(
                rebound.plan_executions(),
                0,
                "a cache hit skips phase 1 entirely"
            );
            let mut fresh = ExecSession::prepare(&plan, &catalog, seed).unwrap();
            let a = rebound.instantiate_block(&catalog, 0, 32).unwrap();
            let b = fresh.instantiate_block(&catalog, 0, 32).unwrap();
            assert_sets_identical(&a, &b);
        }
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let catalog = catalog();
        let plan = losses_plan().filter(Expr::col("val").gt(Expr::lit(4.0)));
        let mut seq = ExecSession::prepare(&plan, &catalog, 3)
            .unwrap()
            .with_threads(1);
        let mut par = ExecSession::prepare(&plan, &catalog, 3)
            .unwrap()
            .with_threads(8);
        let a = seq.instantiate_block(&catalog, 0, 64).unwrap();
        let b = par.instantiate_block(&catalog, 0, 64).unwrap();
        assert_sets_identical(&a, &b);
    }

    #[test]
    fn random_split_falls_back_to_full_execution() {
        let mut catalog = Catalog::new();
        let param = TableBuilder::new(Schema::new(vec![
            Field::int64("id"),
            Field::float64("w_young"),
            Field::float64("w_old"),
        ]))
        .row([Value::Int64(1), Value::Float64(0.5), Value::Float64(0.5)])
        .build()
        .unwrap();
        catalog.register("people", param).unwrap();
        let spec = crate::plan::RandomTableSpec {
            name: "ages".into(),
            param_table: "people".into(),
            vg: Arc::new(DiscreteVg::new(vec![Value::Int64(20), Value::Int64(21)])),
            vg_params: vec![Expr::col("w_young"), Expr::col("w_old")],
            columns: vec![
                OutputColumn::Param {
                    source: "id".into(),
                    as_name: "id".into(),
                },
                OutputColumn::Vg {
                    vg_col: 0,
                    as_name: "age".into(),
                },
            ],
            table_tag: 3,
        };
        let plan = PlanNode::random_table(spec).split("age");
        let mut session = ExecSession::prepare(&plan, &catalog, 11).unwrap();
        assert!(!session.is_cached());
        assert!(session.fallback_reason().unwrap().contains("Split"));
        assert_eq!(session.plan_executions(), 0);
        let block = session.instantiate_block(&catalog, 0, 32).unwrap();
        let from_scratch = Executor::new()
            .execute(&plan, &catalog, &ExecOptions::monte_carlo(11, 32))
            .unwrap();
        assert_sets_identical(&block, &from_scratch);
        assert_eq!(session.plan_executions(), 1, "fallback mode pays per block");
        let _ = session.instantiate_block(&catalog, 32, 32).unwrap();
        assert_eq!(session.plan_executions(), 2);
    }

    #[test]
    fn deterministic_filters_deactivate_dropped_streams() {
        // §2's `WHERE CID < 10010` pattern: the filter drops two of three
        // uncertain tuples during phase 1, so phase 2 generates values for
        // one stream only — while the one-shot executor generates all three
        // before filtering.  Results are still identical.
        let catalog = catalog();
        let plan = losses_plan().filter(Expr::col("cid").lt(Expr::lit(2i64)));
        let mut session = ExecSession::prepare(&plan, &catalog, 7).unwrap();
        let prefix = session.prefix().unwrap();
        assert_eq!(prefix.num_streams(), 3, "registry keeps every stream");
        assert_eq!(
            prefix.num_active_streams(),
            1,
            "only the survivor is generated"
        );
        let block = session.instantiate_block(&catalog, 0, 10).unwrap();
        assert_eq!(session.values_materialized(), 10);
        let from_scratch = Executor::new()
            .execute(&plan, &catalog, &ExecOptions::monte_carlo(7, 10))
            .unwrap();
        assert_sets_identical(&block, &from_scratch);
    }

    #[test]
    fn split_on_deterministic_column_stays_cacheable() {
        let catalog = catalog();
        let plan = losses_plan().split("cid");
        let session = ExecSession::prepare(&plan, &catalog, 7).unwrap();
        assert!(session.is_cached());
    }

    #[test]
    fn errors_still_surface_during_prepare() {
        let catalog = catalog();
        assert!(ExecSession::prepare(&PlanNode::scan("nope"), &catalog, 1).is_err());
        let join_random = losses_plan().join(PlanNode::scan("regions"), vec![("val", "cid")]);
        assert!(ExecSession::prepare(&join_random, &catalog, 1).is_err());
    }

    /// A VG whose batched path claims a different (but uniform) output
    /// shape than its scalar path reports to the skeleton probe — the
    /// contract violation the hoisted once-per-block shape check catches.
    #[derive(Debug)]
    struct ShapeShiftVg;

    impl mcdbr_vg::VgFunction for ShapeShiftVg {
        fn name(&self) -> &str {
            "ShapeShift"
        }
        fn cache_token(&self) -> String {
            self.name().to_string()
        }
        fn output_fields(&self) -> Vec<mcdbr_storage::Field> {
            vec![Field::float64("value")]
        }
        fn generate(&self, _params: &[Value], gen: &mut mcdbr_prng::Pcg64) -> Result<Vec<Tuple>> {
            // The probe (and any scalar regeneration) sees one row...
            Ok(vec![Tuple::from_iter_values([gen.next_f64()])])
        }
        fn generate_block_into(
            &self,
            _params: &[Value],
            seed: SeedId,
            base_pos: u64,
            num_values: usize,
            out: &mut ColumnBlock,
        ) -> Result<()> {
            // ...but the batched path writes two (uniformly, so the ragged
            // check inside ColumnBlock cannot catch it — only the per-block
            // probe comparison can).
            out.reset(2, 1, num_values);
            let stream = mcdbr_prng::RandomStream::new(seed);
            for i in 0..num_values {
                let mut gen = stream.generator_at(base_pos + i as u64);
                let v = gen.next_f64();
                out.column_mut(0, 0).push_f64(v);
                out.column_mut(1, 0).push_f64(v);
            }
            Ok(())
        }
    }

    #[test]
    fn block_shape_mismatches_against_the_probe_error_once_per_block() {
        let catalog = catalog();
        let plan = PlanNode::random_table(scalar_random_table(
            "Shifty",
            "means",
            Arc::new(ShapeShiftVg),
            vec![Expr::col("m")],
            &["cid"],
            "val",
            9,
        ));
        let mut session = ExecSession::prepare(&plan, &catalog, 3).unwrap();
        let err = session.instantiate_block(&catalog, 0, 8).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("during the skeleton probe"),
            "unexpected error: {msg}"
        );
        assert!(msg.contains("2 output rows per position"), "{msg}");
        // The failed block's buffers went back to the pool: the work that
        // ran before the error is metered, not lost.
        assert!(session.bytes_materialized() > 0);
        assert!(session.pool().idle() > 0);
    }

    #[test]
    fn zero_value_blocks_are_well_formed() {
        let catalog = catalog();
        let plan = losses_plan();
        let mut session = ExecSession::prepare(&plan, &catalog, 7).unwrap();
        let block = session.instantiate_block(&catalog, 0, 0).unwrap();
        assert_eq!(block.num_reps, 0);
        assert_eq!(block.len(), 3, "bundle structure is position-independent");
        for bundle in &block.bundles {
            for value in &bundle.values {
                assert_ne!(value.materialized_len(), Some(1));
                if let BundleValue::Random { values, .. } = value {
                    assert!(values.is_empty());
                }
            }
        }
        assert_eq!(block.schema, *session.prefix().unwrap().schema());
    }

    #[test]
    fn sessions_recycle_pooled_buffers_across_blocks() {
        // Pinned to the in-process backend: it holds all of a block's
        // buffers live until the bundles are materialized, so the reuse
        // counts are exact (a sharded backend adds timing-dependent
        // intra-block reuses; covered by the looper/engine lower bounds).
        let in_process = || Arc::new(crate::backend::InProcessBackend::new());
        let catalog = catalog();
        let mut session = ExecSession::prepare(&losses_plan(), &catalog, 7)
            .unwrap()
            .with_threads(2)
            .with_backend(in_process());
        let _ = session.instantiate_block(&catalog, 0, 16).unwrap();
        assert_eq!(session.buffer_reuses(), 0, "cold pool allocates");
        let bytes_one = session.bytes_materialized();
        assert_eq!(bytes_one, 3 * 16 * 8, "3 streams x 16 f64 positions");
        let _ = session.instantiate_block(&catalog, 16, 16).unwrap();
        assert_eq!(session.buffer_reuses(), 3, "warm pool recycles per stream");
        assert_eq!(session.bytes_materialized(), 2 * bytes_one);

        // An explicitly shared pool warms across sessions too.
        let pool = Arc::new(crate::pool::BlockBufferPool::new());
        let mut a = ExecSession::prepare(&losses_plan(), &catalog, 7)
            .unwrap()
            .with_backend(in_process())
            .with_pool(Arc::clone(&pool));
        let _ = a.instantiate_block(&catalog, 0, 8).unwrap();
        let mut b = ExecSession::prepare(&losses_plan(), &catalog, 8)
            .unwrap()
            .with_backend(in_process())
            .with_pool(Arc::clone(&pool));
        let _ = b.instantiate_block(&catalog, 0, 8).unwrap();
        assert_eq!(pool.buffer_reuses(), 3);
    }

    #[test]
    fn deterministic_only_plans_have_empty_registries() {
        let catalog = catalog();
        let mut session = ExecSession::prepare(&PlanNode::scan("means"), &catalog, 9).unwrap();
        let block = session.instantiate_block(&catalog, 0, 4).unwrap();
        assert_eq!(block.len(), 3);
        assert!(block.registry.is_empty());
        assert!(block.bundles.iter().all(|b| b.is_fully_const()));
    }
}
