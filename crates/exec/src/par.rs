//! Deterministic parallel fan-out for block instantiation and aggregation.
//!
//! The parallelism contract everywhere in this crate is *bit-identical
//! results regardless of thread count*: every parallel call maps independent
//! inputs to pre-assigned output slots, so scheduling can never reorder or
//! merge floating-point work.  The position-addressable PRNG streams
//! (`mcdbr-prng`) make the inputs themselves order-free — the value of stream
//! `s` at position `i` does not depend on who generated positions `< i` — so
//! splitting a block across threads is safe by construction.
//!
//! Implementation note: this module plays the role a `rayon` parallel
//! iterator would play; the build environment is offline, so the fan-out is
//! written against `std::thread::scope` instead of adding the dependency.
//! `par_map_threads` is semantically `items.par_iter().map(f).collect()` with
//! a fixed chunking policy.  The thread count comes from the `MCDBR_THREADS`
//! environment variable when set, else from the machine's available
//! parallelism.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// The default worker count: `MCDBR_THREADS` if set and positive, otherwise
/// the machine's available parallelism, otherwise 1.
///
/// The environment variable is read and parsed once per process (sessions
/// consult this on every construction, and a Gibbs run constructs many); the
/// memoized value is what every later call returns, so changing
/// `MCDBR_THREADS` mid-process has no effect.
pub fn default_threads() -> usize {
    static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();
    *DEFAULT_THREADS
        .get_or_init(|| threads_from_env(std::env::var("MCDBR_THREADS").ok().as_deref()))
}

/// The pure resolution rule behind [`default_threads`]: a positive integer in
/// the variable wins; anything else — unset, unparsable, or zero — falls back
/// to the machine's available parallelism (or 1 when even that is unknown).
fn threads_from_env(raw: Option<&str>) -> usize {
    if let Some(v) = raw {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `threads` worker threads, preserving input
/// order in the output.  With `threads <= 1` (or trivially small inputs) the
/// map runs inline on the calling thread; results are identical either way.
pub fn par_map_threads<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n < 2 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads.min(n));
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let f = &f;
    std::thread::scope(|scope| {
        for (out_chunk, in_chunk) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|u| u.expect("every slot filled by its worker"))
        .collect()
}

/// Fallible variant of [`par_map_threads`]: every item is mapped, then the
/// first error in input order (if any) is returned, so error selection is as
/// deterministic as the values themselves.
pub fn try_par_map_threads<T, U, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    par_map_threads(items, threads, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..1000).collect();
        let seq = par_map_threads(&items, 1, |&x| x * x);
        for threads in [2, 3, 8, 64] {
            assert_eq!(par_map_threads(&items, threads, |&x| x * x), seq);
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_threads(&empty, 8, |&x| x).is_empty());
        assert_eq!(par_map_threads(&[5u32], 8, |&x| x + 1), vec![6]);
    }

    #[test]
    fn fallible_map_returns_first_error_in_input_order() {
        let items: Vec<i32> = (0..100).collect();
        let r = try_par_map_threads(&items, 7, |&x| if x >= 40 { Err(x) } else { Ok(x) });
        assert_eq!(r, Err(40));
        let ok = try_par_map_threads(&items, 7, |&x| Ok::<_, ()>(x * 2));
        assert_eq!(ok.unwrap()[50], 100);
    }

    #[test]
    fn float_results_are_bit_identical() {
        // The real guarantee the engine relies on: no accumulation-order
        // dependence because each slot is computed independently.
        let items: Vec<u64> = (0..512).collect();
        let a = par_map_threads(&items, 1, |&x| (x as f64).sqrt().sin());
        let b = par_map_threads(&items, 16, |&x| (x as f64).sqrt().sin());
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn default_threads_is_positive_and_memoized() {
        assert!(default_threads() >= 1);
        // The OnceLock hands back the same resolution on every call.
        assert_eq!(default_threads(), default_threads());
    }

    #[test]
    fn invalid_thread_overrides_fall_back_to_machine_parallelism() {
        let fallback = threads_from_env(None);
        assert!(fallback >= 1);
        // Garbage, zero, negative, and empty values all fall back...
        for bad in ["abc", "0", "-3", "", "1.5", "  4"] {
            assert_eq!(threads_from_env(Some(bad)), fallback, "value {bad:?}");
        }
        // ...while positive integers win.
        assert_eq!(threads_from_env(Some("7")), 7);
        assert_eq!(threads_from_env(Some("1")), 1);
    }
}
