//! Result-distribution statistics over Monte Carlo samples.
//!
//! MCDB "uses Monte Carlo techniques to estimate interesting features of the
//! query-result distribution — the expected value, variance, and quantiles of
//! the query answer — along with probabilistic error bounds on the estimates"
//! (paper §1).  [`ResultDistribution`] packages those estimators, and also
//! implements the `DOMAIN` conditioning and `FREQUENCYTABLE` output of the
//! MCDB-R query surface (paper §2).

use mcdbr_storage::{Error, Result};

/// Summary of a set of Monte Carlo query-result samples.
#[derive(Debug, Clone)]
pub struct ResultDistribution {
    /// The samples, sorted ascending.  NaN samples (e.g. AVG over an empty
    /// instance) are excluded and counted separately.
    sorted: Vec<f64>,
    /// Number of NaN samples dropped.
    dropped_nan: usize,
}

impl ResultDistribution {
    /// Build from raw per-repetition samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        let dropped_nan = samples.len() - sorted.len();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ResultDistribution {
            sorted,
            dropped_nan,
        }
    }

    /// Number of (finite) samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Number of NaN samples that were dropped.
    pub fn dropped_nan(&self) -> usize {
        self.dropped_nan
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Sample mean (the MCDB estimator of the expected query result).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        let n = self.sorted.len();
        if n < 2 {
            return f64::NAN;
        }
        let mean = self.mean();
        self.sorted
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (n - 1) as f64
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(f64::NAN)
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(f64::NAN)
    }

    /// Empirical `q`-quantile (0 < q < 1), using the inverse-CDF convention
    /// `x_(⌈qn⌉)`: the same order-statistic convention Algorithm 3 uses when
    /// it keeps the "(p·|S|)-largest element".
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if self.sorted.is_empty() {
            return Err(Error::InvalidOperation(
                "quantile of an empty sample set".into(),
            ));
        }
        if !(0.0..=1.0).contains(&q) {
            return Err(Error::InvalidOperation(format!(
                "quantile level {q} outside [0,1]"
            )));
        }
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Ok(self.sorted[rank - 1])
    }

    /// A CLT confidence interval for the mean at the given confidence level
    /// (e.g. 0.95), returned as `(lo, hi)`.
    pub fn mean_confidence_interval(&self, confidence: f64) -> Result<(f64, f64)> {
        if self.sorted.len() < 2 {
            return Err(Error::InvalidOperation(
                "need at least two samples for a confidence interval".into(),
            ));
        }
        if !(0.0..1.0).contains(&confidence) {
            return Err(Error::InvalidOperation(format!(
                "confidence {confidence} outside (0,1)"
            )));
        }
        let z = mcdbr_vg::math::std_normal_quantile(0.5 + confidence / 2.0);
        let half = z * self.std_dev() / (self.sorted.len() as f64).sqrt();
        let mean = self.mean();
        Ok((mean - half, mean + half))
    }

    /// Distribution-free confidence interval for the `q`-quantile based on
    /// order statistics (binomial / normal-approximation bracketing), as in
    /// the standard quantile-estimation techniques the paper cites (ref.
    /// \[19\], Sec. 2.6).  Returns `(lo, hi)` sample values.
    pub fn quantile_confidence_interval(&self, q: f64, confidence: f64) -> Result<(f64, f64)> {
        let n = self.sorted.len();
        if n < 2 {
            return Err(Error::InvalidOperation(
                "need at least two samples for a quantile interval".into(),
            ));
        }
        if !(0.0..1.0).contains(&q) || !(0.0..1.0).contains(&confidence) {
            return Err(Error::InvalidOperation(
                "q and confidence must lie in (0,1)".into(),
            ));
        }
        let z = mcdbr_vg::math::std_normal_quantile(0.5 + confidence / 2.0);
        let nf = n as f64;
        let half = z * (nf * q * (1.0 - q)).sqrt();
        let lo_rank = ((nf * q - half).floor().max(1.0)) as usize;
        let hi_rank = ((nf * q + half).ceil().min(nf)) as usize;
        Ok((self.sorted[lo_rank - 1], self.sorted[hi_rank - 1]))
    }

    /// Empirical CDF evaluated at `x`: fraction of samples `<= x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Condition on a `DOMAIN` restriction (paper §2): keep only samples for
    /// which `domain` holds and renormalize.  Returns the conditional
    /// distribution and the fraction of samples retained.
    pub fn condition(&self, domain: impl Fn(f64) -> bool) -> (ResultDistribution, f64) {
        let kept: Vec<f64> = self.sorted.iter().copied().filter(|&x| domain(x)).collect();
        let frac = if self.sorted.is_empty() {
            0.0
        } else {
            kept.len() as f64 / self.sorted.len() as f64
        };
        (ResultDistribution::from_samples(&kept), frac)
    }

    /// The `FREQUENCYTABLE` of paper §2: distinct observed values and the
    /// fraction of samples taking each value, in increasing value order.
    /// Values within `tolerance` of each other are merged (the paper's C++
    /// prototype compares exact doubles; a tolerance of 0.0 reproduces that).
    pub fn frequency_table(&self, tolerance: f64) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() {
            return Vec::new();
        }
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, usize)> = Vec::new();
        for &x in &self.sorted {
            match out.last_mut() {
                Some((v, count)) if (x - *v).abs() <= tolerance => *count += 1,
                _ => out.push((x, 1)),
            }
        }
        out.into_iter().map(|(v, c)| (v, c as f64 / n)).collect()
    }

    /// Expected shortfall given the samples already lie in the tail: the
    /// sample mean (paper §2 computes it as `SUM(totalLoss * FRAC)` over the
    /// frequency table, which is the same number).
    pub fn expected_shortfall_of_tail(&self) -> f64 {
        self.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(samples: &[f64]) -> ResultDistribution {
        ResultDistribution::from_samples(samples)
    }

    #[test]
    fn moments() {
        let d = dist(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(d.len(), 5);
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.variance(), 2.5);
        assert!((d.std_dev() - 2.5f64.sqrt()).abs() < 1e-12);
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 5.0);
    }

    #[test]
    fn nan_samples_are_dropped_and_counted() {
        let d = dist(&[1.0, f64::NAN, 3.0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.dropped_nan(), 1);
        assert_eq!(d.mean(), 2.0);
        let empty = dist(&[]);
        assert!(empty.is_empty());
        assert!(empty.mean().is_nan());
        assert!(empty.cdf(0.0).is_nan());
    }

    #[test]
    fn quantiles_use_ceil_rank_convention() {
        let d = dist(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(d.quantile(0.25).unwrap(), 10.0);
        assert_eq!(d.quantile(0.26).unwrap(), 20.0);
        assert_eq!(d.quantile(0.5).unwrap(), 20.0);
        assert_eq!(d.quantile(0.75).unwrap(), 30.0);
        assert_eq!(d.quantile(1.0).unwrap(), 40.0);
        assert_eq!(d.quantile(0.0).unwrap(), 10.0);
        assert!(d.quantile(1.5).is_err());
        assert!(dist(&[]).quantile(0.5).is_err());
    }

    #[test]
    fn empirical_cdf() {
        let d = dist(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(1.0), 0.25);
        assert_eq!(d.cdf(2.0), 0.75);
        assert_eq!(d.cdf(10.0), 1.0);
    }

    #[test]
    fn mean_confidence_interval_covers_truth() {
        // Samples from a known normal; the CI should cover the mean for this
        // fixed seed and have the right width scale.
        let mut gen = mcdbr_prng::Pcg64::new(5);
        let d = mcdbr_vg::Distribution::Normal {
            mean: 10.0,
            sd: 2.0,
        };
        let samples: Vec<f64> = (0..10_000).map(|_| d.sample(&mut gen)).collect();
        let rd = dist(&samples);
        let (lo, hi) = rd.mean_confidence_interval(0.95).unwrap();
        assert!(lo < 10.0 && 10.0 < hi, "CI ({lo}, {hi}) should cover 10");
        let width = hi - lo;
        let expected_width = 2.0 * 1.96 * 2.0 / (10_000f64).sqrt();
        assert!((width - expected_width).abs() < 0.02 * expected_width + 1e-3);
        assert!(dist(&[1.0]).mean_confidence_interval(0.95).is_err());
        assert!(rd.mean_confidence_interval(1.5).is_err());
    }

    #[test]
    fn quantile_confidence_interval_brackets_estimate() {
        let mut gen = mcdbr_prng::Pcg64::new(6);
        let d = mcdbr_vg::Distribution::Normal { mean: 0.0, sd: 1.0 };
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut gen)).collect();
        let rd = dist(&samples);
        let q = rd.quantile(0.99).unwrap();
        let (lo, hi) = rd.quantile_confidence_interval(0.99, 0.95).unwrap();
        assert!(lo <= q && q <= hi);
        // The true 0.99 quantile of N(0,1) is about 2.326; the bracket should
        // cover it at this sample size.
        assert!(lo < 2.326 && 2.326 < hi, "bracket ({lo}, {hi})");
        assert!(dist(&[1.0])
            .quantile_confidence_interval(0.5, 0.95)
            .is_err());
    }

    #[test]
    fn conditioning_matches_domain_clause() {
        // §2: DOMAIN totalLoss >= QUANTILE(0.99) — conditioning keeps the top 1%.
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let rd = dist(&samples);
        let cutoff = rd.quantile(0.99).unwrap();
        let (tail, frac) = rd.condition(|x| x >= cutoff);
        assert!((frac - 0.01).abs() < 0.002);
        assert!(tail.min() >= cutoff);
        // With the ceil-rank convention the 0.99 cutoff of 0..999 is 989, so
        // eleven samples (989..=999) lie in the conditioned domain.
        assert_eq!(tail.len(), 11);
        // Expected shortfall of the tail = mean of retained samples.
        assert_eq!(tail.expected_shortfall_of_tail(), tail.mean());
    }

    #[test]
    fn frequency_table_sums_to_one() {
        let d = dist(&[5.0, 5.0, 7.0, 9.0, 9.0, 9.0]);
        let ft = d.frequency_table(0.0);
        assert_eq!(ft.len(), 3);
        assert_eq!(ft[0], (5.0, 2.0 / 6.0));
        assert_eq!(ft[1], (7.0, 1.0 / 6.0));
        assert_eq!(ft[2], (9.0, 0.5));
        let total: f64 = ft.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(dist(&[]).frequency_table(0.0).is_empty());
        // With a tolerance, nearby values merge.
        let d = dist(&[1.0, 1.0000001, 2.0]);
        assert_eq!(d.frequency_table(1e-3).len(), 2);
    }
}
