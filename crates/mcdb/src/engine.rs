//! The naive-MCDB query engine.
//!
//! [`McdbEngine`] runs a [`MonteCarloQuery`] — a plan, an aggregate, an
//! optional final selection predicate and optional grouping — for `n` Monte
//! Carlo repetitions using the tuple-bundle executor, and summarizes the
//! per-repetition results.  It also implements the *naive tail sampling*
//! strategy that MCDB-R is compared against in Appendix D: keep generating
//! batches of repetitions until `l` of them fall beyond a target quantile.

use std::sync::Arc;

use mcdbr_exec::{
    par, AggregateSpec, BlockBufferPool, ExecBackend, ExecSession, Expr, PlanNode,
    QueryResultSamples, SessionCache,
};
use mcdbr_storage::{Catalog, Result, Value};

use crate::result::ResultDistribution;

/// A Monte Carlo aggregation query: the plan-level form of the §2 query
/// surface (`SELECT agg(...) FROM ... WHERE ... GROUP BY ... WITH
/// RESULTDISTRIBUTION MONTECARLO(n)`).
#[derive(Debug, Clone)]
pub struct MonteCarloQuery {
    /// The plan producing the tuples to aggregate.
    pub plan: PlanNode,
    /// The aggregate to compute.
    pub aggregate: AggregateSpec,
    /// Optional final selection predicate (applied per repetition before
    /// aggregation; this is where predicates over multi-stream random
    /// attributes live).
    pub final_predicate: Option<Expr>,
    /// Grouping columns (must be deterministic).
    pub group_by: Vec<String>,
}

impl MonteCarloQuery {
    /// An ungrouped query with no final predicate.
    pub fn new(plan: PlanNode, aggregate: AggregateSpec) -> Self {
        MonteCarloQuery {
            plan,
            aggregate,
            final_predicate: None,
            group_by: Vec::new(),
        }
    }

    /// Attach a final selection predicate.
    pub fn with_final_predicate(mut self, predicate: Expr) -> Self {
        self.final_predicate = Some(predicate);
        self
    }

    /// Attach grouping columns.
    pub fn with_group_by(mut self, columns: Vec<String>) -> Self {
        self.group_by = columns;
        self
    }
}

/// Counters from one [`run_query_shared`] call, for callers (the resident
/// server) that account per-query rather than per-engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedRunStats {
    /// Whether phase 1 was skipped via the shared cache.
    pub skeleton_hit: bool,
    /// Full plan executions this run cost (0 on a cache hit).
    pub plan_executions: usize,
    /// Blocks materialized by this run.
    pub blocks_materialized: usize,
    /// Bytes of stream values this run materialized.
    pub bytes_materialized: u64,
    /// Pooled buffers this run reused instead of allocating.
    pub buffer_reuses: u64,
}

/// Run `query` for `n` repetitions against **shared** infrastructure — a
/// cache, buffer pool, and backend owned by a long-lived service rather
/// than a per-run engine — returning the raw samples plus this run's
/// counters.
///
/// This is the query entry point `mcdbr-server` serves connections
/// through: every concurrent client session goes through the same
/// `Arc<SessionCache>` (so one client's phase 1 is every client's cache
/// hit — single-flight under races) and the same `Arc<BlockBufferPool>`
/// (so buffers recycle across queries regardless of which connection ran
/// them).  The result is bit-identical to
/// [`McdbEngine::run_samples`] with the same backend: both bind the same
/// skeleton, materialize the same block window `0..n`, and aggregate in
/// the same repetition order.
pub fn run_query_shared(
    query: &MonteCarloQuery,
    catalog: &Catalog,
    n: usize,
    master_seed: u64,
    cache: &SessionCache,
    pool: &Arc<BlockBufferPool>,
    backend: &Arc<dyn ExecBackend>,
) -> Result<(QueryResultSamples, SharedRunStats)> {
    let mut session = cache
        .session(&query.plan, catalog, master_seed)?
        .with_backend(Arc::clone(backend))
        .with_pool(Arc::clone(pool));
    let set = session.instantiate_block(catalog, 0, n)?;
    let samples = backend.aggregate(
        &set,
        &query.aggregate,
        &query.group_by,
        query.final_predicate.as_ref(),
        par::default_threads(),
    )?;
    Ok((
        samples,
        SharedRunStats {
            skeleton_hit: session.skeleton_hit(),
            plan_executions: session.plan_executions(),
            blocks_materialized: session.blocks_materialized(),
            bytes_materialized: session.bytes_materialized(),
            buffer_reuses: session.buffer_reuses(),
        },
    ))
}

/// Report from a naive tail-sampling run (the MCDB baseline for the
/// Appendix D comparison).
#[derive(Debug, Clone)]
pub struct NaiveTailReport {
    /// The quantile estimate used to define the tail.
    pub quantile_estimate: f64,
    /// Samples that landed in the tail.
    pub tail_samples: Vec<f64>,
    /// Total Monte Carlo repetitions generated.
    pub repetitions: usize,
    /// Number of times deterministic plan work ran.  The whole tail hunt
    /// shares one execution session, so for cacheable plans this is at most
    /// 1 — and 0 when the engine's session cache already held the plan's
    /// skeleton.
    pub plan_executions: usize,
    /// Number of repetition blocks materialized (calibration + batches).
    pub blocks_materialized: usize,
    /// Whether the hunt's session skipped phase 1 because the engine's
    /// [`SessionCache`] already held the plan's skeleton.
    pub skeleton_hit: bool,
    /// Logical bytes written into pooled columnar block buffers during the
    /// hunt (calibration + batches; includes cross-shard regeneration on a
    /// sharded backend).
    pub bytes_materialized: u64,
    /// Columnar buffer acquisitions the hunt served by recycling its
    /// session's pool instead of allocating — every batch past calibration
    /// reuses the warm buffers.
    pub buffer_reuses: u64,
    /// Shard tasks the hunt spawned through the engine's execution backend
    /// (block materializations and aggregate partials; 0 on the in-process
    /// backend).
    pub shards_spawned: usize,
    /// Nanoseconds the hunt's backend spent merging per-shard partials
    /// (0 on the in-process backend).
    pub shard_merge_ns: u64,
    /// Streams shards regenerated outside their own key ranges during the
    /// hunt (cross-shard joins; 0 on the in-process backend).
    pub cross_shard_regens: usize,
    /// Worker OS processes spawned during the hunt (multi-process backend
    /// only: pool fills + crash respawns).
    pub workers_spawned: usize,
    /// Shard tasks serialized and dispatched to worker processes during
    /// the hunt (0 on in-process backends).
    pub tasks_dispatched: usize,
    /// Bytes written to worker processes during the hunt.
    pub wire_bytes_sent: u64,
    /// Bytes read back from worker processes during the hunt.
    pub wire_bytes_received: u64,
    /// Workers respawned after a crash during the hunt, with their tasks
    /// re-dispatched.
    pub worker_respawns: usize,
    /// Per-task read deadlines that expired during the hunt, reclassifying
    /// silent workers as dead (multi-process backend only).
    pub deadline_timeouts: usize,
    /// Task dispatches retried after crash-class worker failures during
    /// the hunt.
    pub task_retries: usize,
    /// Per-worker circuit breakers tripped open during the hunt.
    pub circuit_trips: usize,
    /// Page records the pager appended to heap files during the hunt (0
    /// when `MCDBR_DATA_DIR` is off).
    pub pages_written: u64,
    /// Page payloads read back from disk during the hunt — buffer-pool
    /// misses the disk tier served.
    pub disk_reads: u64,
    /// Nanoseconds spent in those disk reads.
    pub disk_read_ns: u64,
    /// Sealed bytes spilling moved out of memory during the hunt.
    pub spilled_bytes: u64,
    /// Worker table-store memory-tier evictions reported by the hunt's
    /// dispatched tasks (multi-process backend only).
    pub store_evictions: u64,
}

/// The naive-MCDB engine.
///
/// Every entry point runs through a two-phase [`ExecSession`] obtained from
/// the engine's plan-keyed [`SessionCache`]: deterministic plan work (scans,
/// joins, constant predicates) happens once per *distinct* `(plan, catalog)`
/// pair, not once per query — a repeated query under a fresh master seed
/// skips phase 1 entirely and only re-derives stream seeds.  Repetitions are
/// materialized as blocks of stream positions against the cached prefix.
/// Block materialization and per-repetition aggregation both run on the
/// engine's pluggable [`ExecBackend`] ([`McdbEngine::with_backend`]) —
/// in-process threads by default, shard-partitioned when asked — with
/// bit-identical results either way.  The engine accumulates all counters
/// across sessions so the experiment binaries can report the cost structure
/// directly.
#[derive(Debug)]
pub struct McdbEngine {
    cache: SessionCache,
    backend: Arc<dyn ExecBackend>,
    /// One buffer pool shared by every session this engine creates, so a
    /// repeated query reuses the previous query's warm columnar buffers
    /// (sessions report windowed counters, so per-query attribution stays
    /// correct).
    pool: Arc<BlockBufferPool>,
    /// The backend's cumulative stats when this engine adopted it.  The
    /// default backend is one process-shared instance, so engine-level
    /// counters report activity *since adoption* — this engine's own work —
    /// rather than whatever other components already ran through it.
    backend_baseline: mcdbr_exec::ShardStats,
    plans_executed: usize,
    blocks_materialized: usize,
    bytes_materialized: u64,
    buffer_reuses: u64,
}

impl Default for McdbEngine {
    fn default() -> Self {
        // Routed through the dispatch crate so `MCDBR_BACKEND=process`
        // resolves to a multi-process backend (exec alone cannot construct
        // one); any other environment defers to exec's own rules.
        let backend = mcdbr_dispatch::default_backend();
        let backend_baseline = backend.shard_stats();
        McdbEngine {
            cache: SessionCache::new(),
            backend,
            pool: Arc::new(BlockBufferPool::new()),
            backend_baseline,
            plans_executed: 0,
            blocks_materialized: 0,
            bytes_materialized: 0,
            buffer_reuses: 0,
        }
    }
}

impl McdbEngine {
    /// Create a new engine (with an empty session cache and the default
    /// execution backend: in-process unless `MCDBR_BACKEND` /
    /// `MCDBR_SHARDS` select sharded or multi-process execution).
    pub fn new() -> Self {
        McdbEngine::default()
    }

    /// Run every entry point — [`McdbEngine::run`],
    /// [`McdbEngine::run_samples`], [`McdbEngine::naive_tail_sample`] — on
    /// an explicit execution backend.  Results are bit-identical for every
    /// backend and shard count; only the shard counters differ.
    pub fn with_backend(mut self, backend: Arc<dyn ExecBackend>) -> Self {
        self.backend_baseline = backend.shard_stats();
        self.backend = backend;
        self
    }

    /// The execution backend block materialization and aggregation run on.
    pub fn backend(&self) -> &Arc<dyn ExecBackend> {
        &self.backend
    }

    /// This engine's window of its backend's shard stats: activity since the
    /// engine adopted the backend, so a process-shared default backend's
    /// earlier work is not misattributed here.  (Concurrent users of a
    /// deliberately shared backend still blur the window; see the
    /// [`mcdbr_exec::ShardStats`] caveat.)
    fn backend_window(&self) -> mcdbr_exec::ShardStats {
        self.backend.shard_stats().since(self.backend_baseline)
    }

    /// Shard tasks spawned through this engine (0 when the backend never
    /// shards).
    pub fn shards_spawned(&self) -> usize {
        self.backend_window().shards_spawned
    }

    /// Nanoseconds this engine's backend spent merging per-shard partials
    /// on the engine's behalf.
    pub fn shard_merge_ns(&self) -> u64 {
        self.backend_window().shard_merge_ns
    }

    /// Streams shards regenerated outside their own key ranges through this
    /// engine (cross-shard joins; 0 when the backend never shards).
    pub fn cross_shard_regens(&self) -> usize {
        self.backend_window().cross_shard_regens
    }

    /// Worker OS processes this engine's backend spawned on its behalf
    /// (multi-process backend only).
    pub fn workers_spawned(&self) -> usize {
        self.backend_window().workers_spawned
    }

    /// Shard tasks this engine's backend serialized and dispatched to
    /// worker processes (0 on in-process backends).
    pub fn tasks_dispatched(&self) -> usize {
        self.backend_window().tasks_dispatched
    }

    /// Wire bytes this engine's backend sent to / received from worker
    /// processes.
    pub fn wire_bytes(&self) -> (u64, u64) {
        let window = self.backend_window();
        (window.wire_bytes_sent, window.wire_bytes_received)
    }

    /// Workers respawned (and their tasks re-dispatched) after crashes
    /// during this engine's runs.
    pub fn worker_respawns(&self) -> usize {
        self.backend_window().worker_respawns
    }

    /// Per-task read deadlines that expired during this engine's runs,
    /// each reclassifying a silent worker as dead.
    pub fn deadline_timeouts(&self) -> usize {
        self.backend_window().deadline_timeouts
    }

    /// Task dispatches this engine's backend retried after crash-class
    /// worker failures.
    pub fn task_retries(&self) -> usize {
        self.backend_window().task_retries
    }

    /// Per-worker circuit breakers tripped open during this engine's runs
    /// (each trip degrades the slot to local execution for a cooldown).
    pub fn circuit_trips(&self) -> usize {
        self.backend_window().circuit_trips
    }

    /// Disk activity during this engine's runs, as
    /// `(pages_written, disk_reads, disk_read_ns, spilled_bytes)` — all 0
    /// when `MCDBR_DATA_DIR` is off.  Process-global pager counters
    /// windowed like every other backend stat, so a disk-mode engine can
    /// report how much of its working set lived on disk.
    pub fn disk_stats(&self) -> (u64, u64, u64, u64) {
        let window = self.backend_window();
        (
            window.pages_written,
            window.disk_reads,
            window.disk_read_ns,
            window.spilled_bytes,
        )
    }

    /// Worker table-store memory-tier evictions reported by tasks this
    /// engine dispatched (0 on in-process backends; disk copies survive
    /// eviction when the workers run with `MCDBR_DATA_DIR`).
    pub fn store_evictions(&self) -> u64 {
        self.backend_window().store_evictions
    }

    /// Total plan executions performed through this engine.  With the
    /// session cache this stays flat across repeated queries: only the first
    /// session per `(plan, catalog)` pair pays the skeleton pass.
    pub fn plans_executed(&self) -> usize {
        self.plans_executed
    }

    /// Total repetition blocks materialized through this engine.
    pub fn blocks_materialized(&self) -> usize {
        self.blocks_materialized
    }

    /// Total logical bytes written into pooled columnar block buffers
    /// through this engine's sessions.
    pub fn bytes_materialized(&self) -> u64 {
        self.bytes_materialized
    }

    /// Total columnar buffer acquisitions served by recycling a session
    /// pool instead of allocating.
    pub fn buffer_reuses(&self) -> u64 {
        self.buffer_reuses
    }

    /// Number of sessions that skipped phase 1 because the plan's skeleton
    /// was already cached.
    pub fn skeleton_hits(&self) -> usize {
        self.cache.skeleton_hits()
    }

    /// Number of sessions that had to run the deterministic skeleton pass.
    pub fn skeleton_misses(&self) -> usize {
        self.cache.skeleton_misses()
    }

    /// The engine's plan-keyed session cache.
    pub fn cache(&self) -> &SessionCache {
        &self.cache
    }

    fn absorb(&mut self, session: &ExecSession) {
        self.plans_executed += session.plan_executions();
        self.blocks_materialized += session.blocks_materialized();
        self.bytes_materialized += session.bytes_materialized();
        self.buffer_reuses += session.buffer_reuses();
    }

    /// Run `query` for `n` Monte Carlo repetitions, returning the raw
    /// per-group, per-repetition samples.
    pub fn run_samples(
        &mut self,
        query: &MonteCarloQuery,
        catalog: &Catalog,
        n: usize,
        master_seed: u64,
    ) -> Result<QueryResultSamples> {
        let mut session = self
            .cache
            .session(&query.plan, catalog, master_seed)?
            .with_backend(Arc::clone(&self.backend))
            .with_pool(Arc::clone(&self.pool));
        let set = session.instantiate_block(catalog, 0, n)?;
        self.absorb(&session);
        self.backend.aggregate(
            &set,
            &query.aggregate,
            &query.group_by,
            query.final_predicate.as_ref(),
            par::default_threads(),
        )
    }

    /// Run `query` for `n` repetitions and summarize each group's result
    /// distribution.
    pub fn run(
        &mut self,
        query: &MonteCarloQuery,
        catalog: &Catalog,
        n: usize,
        master_seed: u64,
    ) -> Result<Vec<(Vec<Value>, ResultDistribution)>> {
        let samples = self.run_samples(query, catalog, n, master_seed)?;
        Ok(samples
            .groups
            .into_iter()
            .map(|(key, xs)| (key, ResultDistribution::from_samples(&xs)))
            .collect())
    }

    /// Naive tail sampling (the Appendix D baseline): generate repetitions in
    /// batches of `batch` until `l` samples exceed the `(1-p)`-quantile.
    ///
    /// The quantile itself is estimated from an initial calibration block of
    /// `calibration_reps` repetitions (naive MCDB has no other way to locate
    /// the tail), then batches continue until enough tail samples are
    /// collected.  The whole hunt shares one [`ExecSession`]: batch `i`
    /// materializes stream positions `calibration_reps + i·batch ..` against
    /// the cached prefix, so even the naive strategy pays for scans and joins
    /// only once — the remaining (huge) cost Appendix D charges it is the
    /// `l / p` repetitions it must generate and aggregate.  `max_repetitions`
    /// bounds the total work so tests and benchmarks terminate; hitting the
    /// bound is reported, not an error.
    #[allow(clippy::too_many_arguments)]
    pub fn naive_tail_sample(
        &mut self,
        query: &MonteCarloQuery,
        catalog: &Catalog,
        p: f64,
        l: usize,
        calibration_reps: usize,
        batch: usize,
        max_repetitions: usize,
        master_seed: u64,
    ) -> Result<NaiveTailReport> {
        let backend_stats_before = self.backend.shard_stats();
        let mut session = self
            .cache
            .session(&query.plan, catalog, master_seed)?
            .with_backend(Arc::clone(&self.backend))
            .with_pool(Arc::clone(&self.pool));
        // Absorb the session's counters whether the hunt succeeds or errors
        // mid-way: plan work that ran is plan work the engine must report.
        let hunt = Self::tail_hunt(
            &mut session,
            &self.backend,
            query,
            catalog,
            p,
            l,
            calibration_reps,
            batch,
            max_repetitions,
        );
        self.absorb(&session);
        let (quantile_estimate, tail_samples, repetitions) = hunt?;
        let backend_stats = self.backend.shard_stats().since(backend_stats_before);
        Ok(NaiveTailReport {
            quantile_estimate,
            tail_samples,
            repetitions,
            plan_executions: session.plan_executions(),
            blocks_materialized: session.blocks_materialized(),
            skeleton_hit: session.skeleton_hit(),
            bytes_materialized: session.bytes_materialized(),
            buffer_reuses: session.buffer_reuses(),
            shards_spawned: backend_stats.shards_spawned,
            shard_merge_ns: backend_stats.shard_merge_ns,
            cross_shard_regens: backend_stats.cross_shard_regens,
            workers_spawned: backend_stats.workers_spawned,
            tasks_dispatched: backend_stats.tasks_dispatched,
            wire_bytes_sent: backend_stats.wire_bytes_sent,
            wire_bytes_received: backend_stats.wire_bytes_received,
            worker_respawns: backend_stats.worker_respawns,
            deadline_timeouts: backend_stats.deadline_timeouts,
            task_retries: backend_stats.task_retries,
            circuit_trips: backend_stats.circuit_trips,
            pages_written: backend_stats.pages_written,
            disk_reads: backend_stats.disk_reads,
            disk_read_ns: backend_stats.disk_read_ns,
            spilled_bytes: backend_stats.spilled_bytes,
            store_evictions: backend_stats.store_evictions,
        })
    }

    /// The fallible body of [`McdbEngine::naive_tail_sample`], split out so
    /// counter absorption can happen regardless of where an error surfaces.
    #[allow(clippy::too_many_arguments)]
    fn tail_hunt(
        session: &mut ExecSession,
        backend: &Arc<dyn ExecBackend>,
        query: &MonteCarloQuery,
        catalog: &Catalog,
        p: f64,
        l: usize,
        calibration_reps: usize,
        batch: usize,
        max_repetitions: usize,
    ) -> Result<(f64, Vec<f64>, usize)> {
        // Step 1: estimate the (1-p)-quantile from a calibration block.
        let calib_set = session.instantiate_block(catalog, 0, calibration_reps)?;
        let calib = backend.aggregate(
            &calib_set,
            &query.aggregate,
            &query.group_by,
            query.final_predicate.as_ref(),
            par::default_threads(),
        )?;
        let calib_dist = ResultDistribution::from_samples(calib.single()?);
        let quantile_estimate = calib_dist.quantile(1.0 - p)?;

        // Step 2: keep materializing batches (fresh stream positions) until
        // l tail samples are found.
        let mut tail_samples: Vec<f64> = calib_dist
            .samples()
            .iter()
            .copied()
            .filter(|&x| x >= quantile_estimate)
            .collect();
        let mut repetitions = calibration_reps;
        let mut next_pos = calibration_reps as u64;
        while tail_samples.len() < l && repetitions < max_repetitions {
            let set = session.instantiate_block(catalog, next_pos, batch)?;
            let samples = backend.aggregate(
                &set,
                &query.aggregate,
                &query.group_by,
                query.final_predicate.as_ref(),
                par::default_threads(),
            )?;
            next_pos += batch as u64;
            repetitions += batch;
            tail_samples.extend(
                samples
                    .single()?
                    .iter()
                    .copied()
                    .filter(|&x| x >= quantile_estimate),
            );
        }
        tail_samples.truncate(l);
        Ok((quantile_estimate, tail_samples, repetitions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_exec::plan::scalar_random_table;
    use mcdbr_storage::{Field, Schema, TableBuilder};
    use mcdbr_vg::NormalVg;
    use std::sync::Arc;

    /// Catalog with a `means` parameter table of 20 customers, mean loss i.
    fn catalog(n_customers: usize) -> Catalog {
        let mut b = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]));
        for i in 0..n_customers {
            b = b.row([Value::Int64(i as i64), Value::Float64(i as f64)]);
        }
        let mut catalog = Catalog::new();
        catalog.register("means", b.build().unwrap()).unwrap();
        catalog
    }

    fn losses_query() -> MonteCarloQuery {
        let plan = PlanNode::random_table(scalar_random_table(
            "Losses",
            "means",
            Arc::new(NormalVg),
            vec![Expr::col("m"), Expr::lit(1.0)],
            &["cid"],
            "val",
            1,
        ));
        MonteCarloQuery::new(plan, AggregateSpec::sum(Expr::col("val"), "totalLoss"))
    }

    #[test]
    fn sum_query_distribution_matches_theory() {
        // SUM of 20 independent Normal(i, 1) is Normal(190, 20).
        let catalog = catalog(20);
        let mut engine = McdbEngine::new();
        let results = engine.run(&losses_query(), &catalog, 2000, 42).unwrap();
        assert_eq!(results.len(), 1);
        let dist = &results[0].1;
        assert_eq!(dist.len(), 2000);
        assert!((dist.mean() - 190.0).abs() < 0.5, "mean = {}", dist.mean());
        assert!(
            (dist.variance() - 20.0).abs() < 2.5,
            "var = {}",
            dist.variance()
        );
    }

    #[test]
    fn results_are_reproducible_per_seed() {
        let catalog = catalog(5);
        let mut engine = McdbEngine::new();
        let a = engine
            .run_samples(&losses_query(), &catalog, 50, 7)
            .unwrap();
        let b = engine
            .run_samples(&losses_query(), &catalog, 50, 7)
            .unwrap();
        let c = engine
            .run_samples(&losses_query(), &catalog, 50, 8)
            .unwrap();
        assert_eq!(a.single().unwrap(), b.single().unwrap());
        assert_ne!(a.single().unwrap(), c.single().unwrap());
        // The session cache means the deterministic skeleton ran once for
        // all three queries — including the one under a fresh master seed.
        assert_eq!(engine.plans_executed(), 1);
        assert_eq!(engine.skeleton_misses(), 1);
        assert_eq!(engine.skeleton_hits(), 2);
        // The engine-level buffer pool means the second and third queries
        // recycled the first query's warm buffers (5 streams each; a
        // sharded default backend can only add intra-block reuses on top).
        // Under a multi-process default backend the buffers live in the
        // worker processes instead, so the coordinator-side pool stays
        // flat and the dispatch counters carry the evidence.
        if engine.backend().name() == "process" {
            assert!(engine.tasks_dispatched() >= 3);
        } else {
            assert!(engine.buffer_reuses() >= 10);
        }
    }

    #[test]
    fn where_clause_restricts_the_sum() {
        // §2 query: WHERE CID < 10010 — here, cid < 3 keeps means 0, 1, 2.
        let catalog = catalog(20);
        let mut engine = McdbEngine::new();
        let mut query = losses_query();
        query.plan = query.plan.filter(Expr::col("cid").lt(Expr::lit(3i64)));
        let results = engine.run(&query, &catalog, 1500, 11).unwrap();
        let dist = &results[0].1;
        assert!((dist.mean() - 3.0).abs() < 0.2, "mean = {}", dist.mean());
        assert!(
            (dist.variance() - 3.0).abs() < 0.4,
            "var = {}",
            dist.variance()
        );
    }

    #[test]
    fn final_predicate_changes_the_aggregand_set() {
        // Only count losses above 10: with means 0..20 and sd 1, roughly half
        // of the customers (those with mean > 10) contribute.
        let catalog = catalog(20);
        let mut engine = McdbEngine::new();
        let query = losses_query().with_final_predicate(Expr::col("val").gt(Expr::lit(10.0)));
        let results = engine.run(&query, &catalog, 500, 3).unwrap();
        let unrestricted = McdbEngine::new()
            .run(&losses_query(), &catalog, 500, 3)
            .unwrap();
        assert!(results[0].1.mean() < unrestricted[0].1.mean());
        assert!(results[0].1.mean() > 100.0, "most of the mass is above 10");
    }

    #[test]
    fn grouped_query_produces_one_distribution_per_group() {
        let mut catalog = catalog(6);
        // Attach a region table: customers 0-2 EU, 3-5 US.
        let regions = TableBuilder::new(Schema::new(vec![
            Field::int64("rcid"),
            Field::utf8("region"),
        ]))
        .row([Value::Int64(0), Value::str("EU")])
        .row([Value::Int64(1), Value::str("EU")])
        .row([Value::Int64(2), Value::str("EU")])
        .row([Value::Int64(3), Value::str("US")])
        .row([Value::Int64(4), Value::str("US")])
        .row([Value::Int64(5), Value::str("US")])
        .build()
        .unwrap();
        catalog.register("regions", regions).unwrap();
        let mut query = losses_query();
        query.plan = query
            .plan
            .join(PlanNode::scan("regions"), vec![("cid", "rcid")]);
        query.group_by = vec!["region".to_string()];
        let mut engine = McdbEngine::new();
        let results = engine.run(&query, &catalog, 1200, 19).unwrap();
        assert_eq!(results.len(), 2);
        let eu = results
            .iter()
            .find(|(k, _)| k[0] == Value::str("EU"))
            .unwrap();
        let us = results
            .iter()
            .find(|(k, _)| k[0] == Value::str("US"))
            .unwrap();
        assert!((eu.1.mean() - 3.0).abs() < 0.3, "EU mean = {}", eu.1.mean());
        assert!(
            (us.1.mean() - 12.0).abs() < 0.4,
            "US mean = {}",
            us.1.mean()
        );
    }

    #[test]
    fn sharded_engines_return_bit_identical_samples() {
        let catalog = catalog(12);
        let mut reference =
            McdbEngine::new().with_backend(Arc::new(mcdbr_exec::InProcessBackend::new()));
        let expected = reference
            .run_samples(&losses_query(), &catalog, 64, 5)
            .unwrap();
        assert_eq!(reference.shards_spawned(), 0);
        for shards in [1usize, 2, 3, 7] {
            let mut engine =
                McdbEngine::new().with_backend(Arc::new(mcdbr_exec::ShardedBackend::new(shards)));
            let samples = engine
                .run_samples(&losses_query(), &catalog, 64, 5)
                .unwrap();
            assert_eq!(samples.groups.len(), expected.groups.len());
            for ((ka, va), (kb, vb)) in samples.groups.iter().zip(&expected.groups) {
                assert_eq!(ka, kb);
                assert!(va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits()));
            }
            // One block over 12 streams plus the aggregate partials over 64
            // repetitions: min(shards, 12) + min(shards, 64) tasks.
            assert_eq!(engine.shards_spawned(), shards.min(12) + shards.min(64));
        }

        // The naive tail hunt reports its own shard window.
        let mut sharded =
            McdbEngine::new().with_backend(Arc::new(mcdbr_exec::ShardedBackend::new(3)));
        let report = sharded
            .naive_tail_sample(&losses_query(), &catalog, 0.05, 10, 200, 100, 2_000, 7)
            .unwrap();
        assert!(report.shards_spawned > 0);
        let in_process_report = McdbEngine::new()
            .with_backend(Arc::new(mcdbr_exec::InProcessBackend::new()))
            .naive_tail_sample(&losses_query(), &catalog, 0.05, 10, 200, 100, 2_000, 7)
            .unwrap();
        assert_eq!(in_process_report.shards_spawned, 0);
        assert_eq!(in_process_report.shard_merge_ns, 0);
        assert_eq!(report.tail_samples, in_process_report.tail_samples);
        assert_eq!(
            report.quantile_estimate,
            in_process_report.quantile_estimate
        );
        assert_eq!(report.repetitions, in_process_report.repetitions);
    }

    #[test]
    fn naive_tail_sampling_is_expensive() {
        // With p = 0.05 and a modest workload, naive tail sampling needs on
        // the order of l / p repetitions beyond calibration.
        let catalog = catalog(10);
        let mut engine = McdbEngine::new();
        let report = engine
            .naive_tail_sample(&losses_query(), &catalog, 0.05, 25, 400, 200, 20_000, 123)
            .unwrap();
        assert!(
            report.tail_samples.len() >= 25,
            "found {}",
            report.tail_samples.len()
        );
        assert!(
            report.repetitions >= 25_usize.saturating_mul(10),
            "reps = {}",
            report.repetitions
        );
        // Even the naive strategy shares one session: many blocks, one
        // deterministic plan execution.
        assert!(report.blocks_materialized > 1);
        assert_eq!(report.plan_executions, 1);
        // Every batch past calibration recycles the session's columnar
        // buffers: 10 streams per block, reused per extra block (a lower
        // bound — a sharded default backend adds intra-block reuses when an
        // early-finishing shard task's buffer serves a neighbor task).
        // Under a multi-process default backend the buffers live in the
        // worker processes, so the coordinator-side pool stays flat and
        // the dispatch counters carry the evidence instead.
        if engine.backend().name() == "process" {
            assert!(report.tasks_dispatched >= report.blocks_materialized);
            assert!(report.wire_bytes_received > 0);
        } else {
            assert!(report.buffer_reuses >= (10 * (report.blocks_materialized - 1)) as u64);
            assert!(report.bytes_materialized >= (report.repetitions * 10 * 8) as u64);
        }
        assert_eq!(engine.bytes_materialized(), report.bytes_materialized);
        assert_eq!(engine.buffer_reuses(), report.buffer_reuses);
        // Every reported tail sample really lies beyond the estimated quantile.
        assert!(report
            .tail_samples
            .iter()
            .all(|&x| x >= report.quantile_estimate));
    }

    #[test]
    fn naive_tail_sampling_respects_the_repetition_cap() {
        let catalog = catalog(10);
        let mut engine = McdbEngine::new();
        // Asking for many tail samples under a tiny cap stops at the cap.
        let report = engine
            .naive_tail_sample(&losses_query(), &catalog, 0.001, 1_000, 200, 100, 600, 9)
            .unwrap();
        assert!(report.repetitions <= 700);
        assert!(report.tail_samples.len() < 1_000);
    }
}
