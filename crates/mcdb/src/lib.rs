//! The MCDB baseline: naive Monte Carlo over tuple bundles.
//!
//! MCDB (Jampani et al., SIGMOD 2008) estimates features of a query-result
//! distribution by executing the query over `n` pseudorandomly generated
//! database instances — materialized cheaply through tuple bundles — and
//! treating the `n` query answers as i.i.d. samples.  MCDB-R keeps this
//! machinery for everything *except* tail exploration, and the paper's
//! headline comparison (Appendix D: ~18 hours of naive MCDB vs ~11 minutes of
//! MCDB-R for 100 samples beyond the 0.999-quantile) is against exactly this
//! baseline.
//!
//! This crate provides:
//!
//! * [`result`] — [`result::ResultDistribution`]: moments, quantiles with
//!   probabilistic (CLT / order-statistic) error bounds, frequency tables and
//!   empirical CDFs computed from Monte Carlo samples, plus conditioning on a
//!   `DOMAIN` restriction (paper §2).
//! * [`engine`] — [`engine::McdbEngine`] / [`engine::MonteCarloQuery`]: run an
//!   aggregation query plan for `n` Monte Carlo repetitions over bundles and
//!   return per-group samples.  The engine also supports the *naive tail
//!   sampling* strategy (keep generating repetitions until `l` of them land in
//!   the tail) so the Appendix D timing comparison can be measured rather
//!   than asserted.
//! * [`naive_cost`] — the closed-form cost model behind the introduction's
//!   motivating numbers (≈3.5 million repetitions per tail hit at μ+5σ,
//!   ≈130 billion repetitions to estimate the tail area to ±1%, ≈10 million
//!   to locate the 0.999-quantile).

#![warn(missing_docs)]

pub mod engine;
pub mod naive_cost;
pub mod result;

pub use engine::{run_query_shared, McdbEngine, MonteCarloQuery, NaiveTailReport, SharedRunStats};
pub use naive_cost::NaiveCostModel;
pub use result::ResultDistribution;
