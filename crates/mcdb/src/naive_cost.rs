//! The cost model behind the paper's motivating numbers (§1).
//!
//! The introduction quantifies why naive Monte Carlo cannot explore tails:
//! with a `Normal(10 M, (1 M)²)` total-loss distribution and interest in
//! losses of 15 M or more,
//!
//! * "roughly 3.5 million Monte Carlo repetitions are required before such an
//!   extremely high loss is observed even once",
//! * "130 billion repetitions are required to estimate the desired
//!   probability to within ±1 % with a confidence of 95 %", and
//! * "standard quantile-estimation techniques require roughly ten million
//!   Monte Carlo repetitions to estimate [the 0.999 quantile] to within ±1 %".
//!
//! [`NaiveCostModel`] reproduces all three numbers from first principles so
//! experiment E4 can print them next to the paper's figures.  The first two
//! use the exact binomial-sampling argument with a 95 % normal critical value;
//! the third follows the paper's (looser) convention of a 1 % relative
//! *standard error* on the tail probability induced by the quantile estimate,
//! which is what recovers the "ten million" figure.

use mcdbr_vg::math::{std_normal_cdf, std_normal_quantile};

/// Closed-form repetition counts for naive Monte Carlo tail exploration.
#[derive(Debug, Clone, Copy)]
pub struct NaiveCostModel {
    /// Mean of the (normal) query-result distribution.
    pub mean: f64,
    /// Standard deviation of the query-result distribution.
    pub sd: f64,
}

impl NaiveCostModel {
    /// Model for a `Normal(mean, sd²)` query-result distribution.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd > 0.0, "standard deviation must be positive");
        NaiveCostModel { mean, sd }
    }

    /// The paper's running example: total loss ~ Normal(10 M, (1 M)²).
    pub fn paper_example() -> Self {
        NaiveCostModel::new(10.0e6, 1.0e6)
    }

    /// Upper-tail probability `P(X >= threshold)`.
    pub fn tail_probability(&self, threshold: f64) -> f64 {
        1.0 - std_normal_cdf((threshold - self.mean) / self.sd)
    }

    /// Expected number of repetitions before one sample lands at or above
    /// `threshold` (geometric waiting time, `1/p`).
    pub fn expected_reps_per_tail_hit(&self, threshold: f64) -> f64 {
        1.0 / self.tail_probability(threshold)
    }

    /// Repetitions needed to estimate the tail probability `p` of
    /// `threshold` to within relative error `rel_err` at the given
    /// confidence, using the binomial CLT bound
    /// `n ≥ z² (1 − p) / (p · rel_err²)`.
    pub fn reps_for_tail_probability(&self, threshold: f64, rel_err: f64, confidence: f64) -> f64 {
        let p = self.tail_probability(threshold);
        let z = std_normal_quantile(0.5 + confidence / 2.0);
        z * z * (1.0 - p) / (p * rel_err * rel_err)
    }

    /// Repetitions needed to estimate the `(1 − p)`-quantile so that the tail
    /// probability it induces has relative standard error `rel_err`
    /// (`n ≥ (1 − p) / (p · rel_err²)`); the convention that reproduces the
    /// paper's "roughly ten million repetitions" for `p = 0.001`,
    /// `rel_err = 1 %`.
    pub fn reps_for_quantile(&self, p: f64, rel_err: f64) -> f64 {
        (1.0 - p) / (p * rel_err * rel_err)
    }

    /// The `(1 − p)`-quantile of the result distribution.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + self.sd * std_normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tail_hit_count_is_about_three_and_a_half_million() {
        let m = NaiveCostModel::paper_example();
        let reps = m.expected_reps_per_tail_hit(15.0e6);
        // P(Z >= 5) ≈ 2.87e-7, so 1/p ≈ 3.49 million.
        assert!((2.8e6..4.2e6).contains(&reps), "reps = {reps}");
    }

    #[test]
    fn paper_tail_area_estimate_is_about_130_billion_reps() {
        let m = NaiveCostModel::paper_example();
        let reps = m.reps_for_tail_probability(15.0e6, 0.01, 0.95);
        assert!((1.0e11..1.7e11).contains(&reps), "reps = {reps}");
    }

    #[test]
    fn paper_quantile_estimate_is_about_ten_million_reps() {
        let m = NaiveCostModel::paper_example();
        let reps = m.reps_for_quantile(0.001, 0.01);
        assert!((0.8e7..1.2e7).contains(&reps), "reps = {reps}");
    }

    #[test]
    fn quantile_and_tail_probability_are_consistent() {
        let m = NaiveCostModel::paper_example();
        let q = m.quantile(0.001);
        let p = m.tail_probability(q);
        assert!((p - 0.001).abs() < 1e-6, "p = {p}");
        assert!((q - 13.09e6).abs() < 0.02e6, "q = {q}");
    }

    #[test]
    fn tail_probability_is_monotone_in_threshold() {
        let m = NaiveCostModel::new(0.0, 1.0);
        assert!(m.tail_probability(1.0) > m.tail_probability(2.0));
        assert!(m.expected_reps_per_tail_hit(2.0) > m.expected_reps_per_tail_hit(1.0));
    }

    #[test]
    #[should_panic(expected = "standard deviation must be positive")]
    fn zero_sd_panics() {
        NaiveCostModel::new(1.0, 0.0);
    }
}
