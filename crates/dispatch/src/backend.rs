//! The multi-process execution backend: phase 2 dispatched to a pool of
//! persistent `mcdbr-worker` OS processes over the wire protocol.
//!
//! A [`ProcessBackend`] implements the same [`ExecBackend`] seam as the
//! in-process pool and the sharded backend, with the same bit-identity
//! contract: for any worker count, a block's merged output equals
//! in-process execution exactly.  The shard planner is shared with
//! [`ShardedBackend`] — a block's bundle anchors partition into balanced
//! [`mcdbr_prng::StreamKeyRange`]s, one [`mcdbr_exec::ShardTask`] per
//! worker — and the merge slots partial bundles back into skeleton order,
//! visiting partials in ascending key-range order.
//!
//! **Cold vs warm workers.**  The dispatcher learns each prefix's plan and
//! catalog through [`ExecBackend::prepare_dispatch`] (sessions call it
//! before every cached block) and encodes the `Plan` frame — table refs
//! only, see below — plus one `TableData` frame per referenced table, once;
//! a worker receives the plan only before its first task for that plan
//! key.  After that, tasks travel as a ~60-byte header and the worker's
//! own `SessionCache` skips phase 1 (`worker_warm_hits` counts those
//! skips).
//!
//! **Content-addressed shipping.**  A cold plan send is a round trip: the
//! `Plan` frame carries each table's content hash, the worker answers
//! `NeedTables` with the hashes its store lacks, and only those travel as
//! paged `TableData` frames.  Repeated plans — and *new* plans over tables
//! a worker already holds (epoch bumps with unchanged content, shared
//! parameter tables) — exchange headers only, collapsing the
//! workers × tables shipping cost to one transfer per distinct table
//! version per worker.
//!
//! **Crash handling and deadlines.**  A worker that dies mid-conversation
//! (EOF, broken pipe, corrupt frame) — or that is *alive but silent* past
//! the per-task read deadline (`MCDBR_TASK_DEADLINE_MS`, default 30 s; a
//! dedicated reader thread per worker feeds a channel so reads can time
//! out) — is reclassified as dead: bounded reap (pipe close, short grace,
//! SIGKILL escalation), respawn, and re-dispatch of its in-flight task,
//! with capped exponential backoff + seeded jitter between attempts.
//! `worker_respawns`, `deadline_timeouts`, and `task_retries` count the
//! events.  Task-level errors the worker *reports* (an `Error` frame) are
//! not crashes and propagate to the caller without a respawn.
//!
//! **Circuit breaker.**  Each worker slot carries a breaker: repeated
//! crash-class failures (3 consecutive) trip it and the slot's tasks
//! degrade to the local sharded path — the same bit-identical
//! [`mcdbr_exec::ShardTask`] the worker would have run — for a cooldown
//! (4 blocks), then a half-open probe re-dispatches; success closes the
//! breaker, failure re-trips it.  `circuit_trips` counts trips, and
//! `tasks_dispatched` staying flat shows the degraded blocks.
//!
//! **Graceful degradation.**  Plans that cannot travel — a third-party VG
//! function outside the built-in set, or a prefix the backend was never
//! primed for (direct `instantiate_block` calls without a session) —
//! execute locally through the in-process path, bit-identically;
//! `tasks_dispatched` stays flat so the fallback is observable.  A task
//! that exhausts its retry budget degrades the same way instead of failing
//! the block: under faults, results are bit-identical or absent, never
//! silently wrong.
//!
//! **Fault injection.**  Chaos runs configure a seeded
//! [`mcdbr_faults::FaultPlan`] (the `MCDBR_FAULTS` environment variable,
//! or [`ProcessBackend::with_fault_spec`]): the coordinator's sends route
//! through [`wire::write_frame_faulty`] and spawned workers inherit the
//! plan (a `worker=K` target restricts it to one slot and disables the
//! coordinator's own send faults) — every failure mode above can be
//! injected deterministically and replayed from the seed.
//!
//! Aggregation never crosses the process boundary: shipping a full
//! `BundleSet` out and partial aggregates back would dwarf the aggregation
//! itself, so per-repetition partials run on the local sharded path
//! (their counters fold into this backend's [`ShardStats`]).

use std::collections::HashSet;
use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use mcdbr_exec::aggregate::{AggregateSpec, QueryResultSamples};
use mcdbr_exec::{
    plan_shards, BlockBufferPool, BundleSet, DeterministicPrefix, ExecBackend, Expr,
    InProcessBackend, PlanNode, PlanSkeleton, ShardStats, ShardTask, ShardedBackend, TupleBundle,
};
use mcdbr_faults::{BackoffPolicy, FaultInjector, FaultPlan};
use mcdbr_storage::{Catalog, Result};

use crate::wire::{self, Frame, PlanKey, TaskHeader, WireError, WireResult};

/// How many distinct prepared plans the dispatcher keeps encoded (oldest
/// evicted beyond this; re-priming re-encodes).
const MAX_PREPARED_PLANS: usize = 64;

/// Consecutive crash-class failures that trip a slot's circuit breaker.
const BREAKER_THRESHOLD: u32 = 3;

/// Blocks a tripped breaker degrades locally before the half-open probe.
const BREAKER_COOLDOWN_BLOCKS: u32 = 4;

/// Fallback task-read deadline when `MCDBR_TASK_DEADLINE_MS` is unset.
const DEFAULT_TASK_DEADLINE: Duration = Duration::from_secs(30);

/// Pure parse of the `MCDBR_TASK_DEADLINE_MS` environment value: a
/// positive integer millisecond count; anything else falls back to the
/// 30 s default.
pub fn task_deadline_from_env(raw: Option<&str>) -> Duration {
    raw.and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
        .unwrap_or(DEFAULT_TASK_DEADLINE)
}

/// The process-wide default task deadline, memoized on first use.
pub fn default_task_deadline() -> Duration {
    static DEADLINE: OnceLock<Duration> = OnceLock::new();
    *DEADLINE.get_or_init(|| {
        task_deadline_from_env(std::env::var("MCDBR_TASK_DEADLINE_MS").ok().as_deref())
    })
}

/// One live worker process and what it already knows.  Frames from the
/// worker's stdout are pumped by a dedicated reader thread into `rx`, so
/// coordinator reads can carry a deadline (`recv_timeout`) — std pipes have
/// no portable read timeout.  Killing the child closes the pipe, which
/// makes the reader thread exit on EOF.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    rx: mpsc::Receiver<WireResult<(Vec<u8>, u64)>>,
    reader: Option<std::thread::JoinHandle<()>>,
    /// Plan keys this worker has received `Plan` frames for.
    known: HashSet<PlanKey>,
}

/// Reap a worker with a bounded wait: close its stdin (a well-behaved
/// worker exits on pipe EOF), poll for exit up to `grace`, then escalate to
/// SIGKILL so a child that ignores the pipe close can never wedge a respawn
/// or teardown.  Joins the reader thread (the dead child's pipe EOF has
/// already unblocked it).
fn reap_worker(mut worker: Worker, grace: Duration) {
    drop(worker.stdin);
    let deadline = Instant::now() + grace;
    let exited = loop {
        match worker.child.try_wait() {
            Ok(Some(_)) => break true,
            Ok(None) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(2)),
            _ => break false,
        }
    };
    if !exited {
        let _ = worker.child.kill();
        let _ = worker.child.wait();
    }
    if let Some(handle) = worker.reader.take() {
        let _ = handle.join();
    }
}

/// Per-slot circuit breaker: consecutive crash-class failures trip it open;
/// open slots degrade their tasks to the local sharded path for a cooldown,
/// then a half-open probe decides between closing and re-tripping.
#[derive(Debug, Default, Clone, Copy)]
struct Breaker {
    failures: u32,
    state: BreakerState,
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    #[default]
    Closed,
    Open {
        cooldown: u32,
    },
    HalfOpen,
}

impl Breaker {
    /// Should this block's task for the slot degrade locally?  Consumes one
    /// cooldown unit per block while open; the block after the cooldown runs
    /// as the half-open probe.
    fn degrade_this_block(&mut self) -> bool {
        match &mut self.state {
            BreakerState::Closed | BreakerState::HalfOpen => false,
            BreakerState::Open { cooldown } => {
                if *cooldown == 0 {
                    self.state = BreakerState::HalfOpen;
                    false
                } else {
                    *cooldown -= 1;
                    true
                }
            }
        }
    }

    /// Record a crash-class failure; returns true when this one tripped the
    /// breaker (closed past the threshold, or a failed half-open probe).
    fn note_failure(&mut self) -> bool {
        self.failures += 1;
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.failures >= BREAKER_THRESHOLD,
            BreakerState::Open { .. } => false,
        };
        if trip {
            self.state = BreakerState::Open {
                cooldown: BREAKER_COOLDOWN_BLOCKS,
            };
        }
        trip
    }

    fn note_success(&mut self) {
        self.failures = 0;
        self.state = BreakerState::Closed;
    }
}

/// How one slot's task of a block was resolved.
enum TaskOutcome {
    /// The worker answered over the wire.
    Wire(Vec<(usize, Option<TupleBundle>)>, wire::TaskStats),
    /// The slot degraded (open breaker, or retry budget exhausted): the
    /// caller runs the slot's [`ShardTask`] locally, bit-identically.
    Degraded,
}

/// One dispatchable plan: the skeleton it belongs to (held alive so the
/// pointer identity used for lookup can never be reused by a different
/// skeleton), its wire key, the encoded `Plan` frame — `None` when the
/// plan is not wire-serializable and blocks must run locally — and the
/// encoded `TableData` frame of every table the plan reads, keyed by
/// content hash.  Table frames are shared (`Arc`) across entries that
/// reference the same table version, so re-priming after an epoch bump
/// with unchanged content costs no re-encode.
struct PlanEntry {
    skeleton: Arc<PlanSkeleton>,
    key: PlanKey,
    frame: Option<Arc<Vec<u8>>>,
    tables: Arc<Vec<(u64, Arc<Vec<u8>>)>>,
}

#[derive(Default)]
struct State {
    slots: Vec<Option<Worker>>,
    plans: Vec<PlanEntry>,
    breakers: Vec<Breaker>,
}

/// The multi-process [`ExecBackend`]: see the module docs for the
/// contract.
pub struct ProcessBackend {
    workers: usize,
    state: Mutex<State>,
    /// Local sharded path for aggregation partials (and its counters).
    agg: ShardedBackend,
    /// Per-task read deadline; a worker silent past it is reclassified as
    /// dead and respawned.
    task_deadline: Duration,
    /// Backoff between re-dispatch attempts; `max_attempts` bounds the
    /// retries before a slot's task degrades locally.
    retry: BackoffPolicy,
    /// The fault plan driving this backend's chaos run, if any (env
    /// `MCDBR_FAULTS` by default).  Spawned workers receive the plan via
    /// their environment; the coordinator's own sends inject only when the
    /// plan has no `worker=K` target.
    faults: Option<Arc<FaultInjector>>,
    /// Extra environment for spawned workers (on top of the inherited
    /// process environment).  Tests use this to give workers their own
    /// `MCDBR_DATA_DIR` without mutating the coordinator's environment.
    worker_env: Vec<(String, String)>,
    workers_spawned: AtomicUsize,
    tasks_dispatched: AtomicUsize,
    wire_bytes_sent: AtomicU64,
    wire_bytes_received: AtomicU64,
    worker_respawns: AtomicUsize,
    worker_warm_hits: AtomicUsize,
    deadline_timeouts: AtomicUsize,
    task_retries: AtomicUsize,
    circuit_trips: AtomicUsize,
    merge_ns: AtomicU64,
    cross_shard_regens: AtomicUsize,
    store_evictions: AtomicU64,
}

impl std::fmt::Debug for ProcessBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessBackend")
            .field("workers", &self.workers)
            .field("stats", &self.shard_stats())
            .finish()
    }
}

impl ProcessBackend {
    /// Create a backend dispatching to `workers` worker processes
    /// (minimum 1).  Workers are spawned lazily on first dispatch and kept
    /// warm across blocks, sessions, and queries.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        ProcessBackend {
            workers,
            state: Mutex::new(State {
                slots: (0..workers).map(|_| None).collect(),
                plans: Vec::new(),
                breakers: vec![Breaker::default(); workers],
            }),
            agg: ShardedBackend::new(workers),
            task_deadline: default_task_deadline(),
            retry: BackoffPolicy {
                base_ms: 5,
                cap_ms: 200,
                max_attempts: Some(2),
                ..BackoffPolicy::default()
            },
            faults: mcdbr_faults::env_injector(),
            worker_env: Vec::new(),
            workers_spawned: AtomicUsize::new(0),
            tasks_dispatched: AtomicUsize::new(0),
            wire_bytes_sent: AtomicU64::new(0),
            wire_bytes_received: AtomicU64::new(0),
            worker_respawns: AtomicUsize::new(0),
            worker_warm_hits: AtomicUsize::new(0),
            deadline_timeouts: AtomicUsize::new(0),
            task_retries: AtomicUsize::new(0),
            circuit_trips: AtomicUsize::new(0),
            merge_ns: AtomicU64::new(0),
            cross_shard_regens: AtomicUsize::new(0),
            store_evictions: AtomicU64::new(0),
        }
    }

    /// The target worker-process count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Override the per-task read deadline (defaults to
    /// `MCDBR_TASK_DEADLINE_MS`, else 30 s).  Chaos tests shrink this so
    /// stalled workers reclassify as dead in milliseconds.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.task_deadline = deadline;
        self
    }

    /// Override the re-dispatch retry/backoff policy.
    pub fn with_retry(mut self, retry: BackoffPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Set an environment variable on every worker this backend spawns
    /// (workers otherwise inherit the coordinator's environment).  Tests
    /// hand workers a scratch `MCDBR_DATA_DIR` this way, so the persistent
    /// table-store tier can be exercised without touching the
    /// coordinator's own pager mode.
    pub fn with_worker_env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.worker_env.push((key.into(), value.into()));
        self
    }

    /// Drive this backend (and its spawned workers) from an explicit fault
    /// plan instead of the process environment — see
    /// [`mcdbr_faults::FaultPlan::parse`] for the grammar.  A `worker=K`
    /// target confines injection to that one worker slot.
    pub fn with_fault_spec(mut self, spec: &str) -> Result<Self> {
        let plan = FaultPlan::parse(spec).map_err(mcdbr_storage::Error::Invalid)?;
        self.faults = Some(Arc::new(FaultInjector::new(plan)));
        Ok(self)
    }

    /// The injector applied to the coordinator's own sends: the active plan,
    /// unless it targets a specific worker slot.
    fn coordinator_faults(&self) -> Option<&FaultInjector> {
        self.faults
            .as_deref()
            .filter(|inj| inj.plan().target_worker.is_none())
    }

    /// Kill worker `index`'s OS process (if one is live), leaving the dead
    /// handle in place so the *next* dispatch runs into the broken pipe and
    /// exercises the respawn + re-dispatch path.  A fault-injection hook
    /// for tests and operational drills; counted in `worker_respawns` when
    /// the respawn happens, not here.
    pub fn kill_worker(&self, index: usize) {
        let mut state = self.state.lock().expect("dispatch state");
        if let Some(worker) = state.slots.get_mut(index).and_then(Option::as_mut) {
            let _ = worker.child.kill();
            let _ = worker.child.wait();
        }
    }

    /// Resolve the `mcdbr-worker` binary: the `MCDBR_WORKER_BIN`
    /// environment variable when set, else a sibling of the current
    /// executable (hopping out of cargo's `deps/` / `examples/`
    /// directories).
    fn worker_binary() -> WireResult<PathBuf> {
        if let Ok(path) = std::env::var("MCDBR_WORKER_BIN") {
            return Ok(PathBuf::from(path));
        }
        let exe = std::env::current_exe()?;
        let mut dir = exe
            .parent()
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        if dir
            .file_name()
            .is_some_and(|n| n == "deps" || n == "examples")
        {
            dir.pop();
        }
        let candidate = dir.join(format!("mcdbr-worker{}", std::env::consts::EXE_SUFFIX));
        if candidate.exists() {
            Ok(candidate)
        } else {
            Err(WireError::Io(
                std::io::ErrorKind::NotFound,
                format!(
                    "worker binary not found at {} (build the `mcdbr-worker` bin of \
                     mcdbr-dispatch, or point MCDBR_WORKER_BIN at it)",
                    candidate.display()
                ),
            ))
        }
    }

    /// Spawn the worker process for `slot` and run the handshake.  The slot
    /// index decides whether a `worker=K`-targeted fault plan reaches this
    /// worker's environment.
    fn spawn_worker(&self, slot_index: usize) -> WireResult<Worker> {
        let mut command = Command::new(Self::worker_binary()?);
        command
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (key, value) in &self.worker_env {
            command.env(key, value);
        }
        if let Some(inj) = self.faults.as_deref() {
            if inj.plan().targets_worker(slot_index) {
                command.env(mcdbr_faults::FAULTS_ENV, inj.plan().as_str());
            } else {
                command.env_remove(mcdbr_faults::FAULTS_ENV);
            }
        }
        let mut child = command.spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let (tx, rx) = mpsc::channel();
        let reader = std::thread::Builder::new()
            .name(format!("mcdbr-worker-reader-{slot_index}"))
            .spawn(move || loop {
                match wire::read_frame(&mut stdout) {
                    Ok(Some(frame)) => {
                        if tx.send(Ok(frame)).is_err() {
                            break;
                        }
                    }
                    // Clean EOF: drop the sender so the coordinator sees a
                    // disconnect (mapped to Truncated) instead of a frame.
                    Ok(None) => break,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            })?;
        let mut worker = Worker {
            child,
            stdin,
            rx,
            reader: Some(reader),
            known: HashSet::new(),
        };
        self.workers_spawned.fetch_add(1, Ordering::Relaxed);
        self.send(&mut worker, &wire::encode_hello())?;
        worker.stdin.flush()?;
        let (payload, _) = self.receive(&mut worker)?;
        match wire::decode_frame(&payload)? {
            Frame::Hello { magic, version } if magic == wire::WIRE_MAGIC => {
                if version != wire::WIRE_VERSION {
                    return Err(WireError::VersionMismatch {
                        ours: wire::WIRE_VERSION,
                        theirs: version,
                    });
                }
            }
            Frame::Hello { magic, .. } => return Err(WireError::BadMagic(magic)),
            Frame::Error { message } => return Err(WireError::Remote(message)),
            _ => return Err(WireError::Corrupt("expected Hello from worker".into())),
        }
        Ok(worker)
    }

    fn send(&self, worker: &mut Worker, payload: &[u8]) -> WireResult<()> {
        let n = wire::write_frame_faulty(&mut worker.stdin, payload, self.coordinator_faults())?;
        self.wire_bytes_sent.fetch_add(n, Ordering::Relaxed);
        Ok(())
    }

    /// Read the worker's next frame, bounded by the per-task deadline.  A
    /// worker that stays silent past the deadline is *reclassified as dead*:
    /// the timeout comes back as a crash-class I/O error, so the caller's
    /// respawn + re-dispatch ladder handles hung and crashed workers
    /// identically.
    fn receive(&self, worker: &mut Worker) -> WireResult<(Vec<u8>, u64)> {
        match worker.rx.recv_timeout(self.task_deadline) {
            Ok(Ok((payload, n))) => {
                self.wire_bytes_received.fetch_add(n, Ordering::Relaxed);
                Ok((payload, n))
            }
            Ok(Err(e)) => Err(e),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(WireError::Truncated {
                what: "worker response",
            }),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
                Err(WireError::Io(
                    std::io::ErrorKind::TimedOut,
                    format!(
                        "worker silent past the {:?} task deadline; reclassifying as dead",
                        self.task_deadline
                    ),
                ))
            }
        }
    }

    /// Replace (or fill) worker slot `index` with a fresh process.
    /// `respawn` marks crash replacements for the counter; the old process,
    /// if any, gets an immediate bounded reap (it is already broken — no
    /// grace).
    fn fill_slot(&self, slot: &mut Option<Worker>, index: usize, respawn: bool) -> WireResult<()> {
        if respawn {
            if let Some(old) = slot.take() {
                reap_worker(old, Duration::ZERO);
            }
            self.worker_respawns.fetch_add(1, Ordering::Relaxed);
        }
        *slot = Some(self.spawn_worker(index)?);
        Ok(())
    }

    /// Send (plan-if-needed +) task to the worker in `slot`, spawning it
    /// first when empty.  A cold plan send runs the content-addressed
    /// fetch exchange inline: ship the `Plan` frame (refs only), read the
    /// worker's `NeedTables` reply, and stream exactly the missing tables
    /// as `TableData` frames before the task.
    fn send_task(
        &self,
        slot: &mut Option<Worker>,
        index: usize,
        entry_key: PlanKey,
        plan_frame: &[u8],
        tables: &[(u64, Arc<Vec<u8>>)],
        task_frame: &[u8],
    ) -> WireResult<()> {
        if slot.is_none() {
            self.fill_slot(slot, index, false)?;
        }
        let worker = slot.as_mut().expect("slot just filled");
        if !worker.known.contains(&entry_key) {
            self.send(worker, plan_frame)?;
            worker.stdin.flush()?;
            let (payload, _) = self.receive(worker)?;
            match wire::decode_frame(&payload)? {
                Frame::NeedTables { hashes } => {
                    for hash in hashes {
                        let (_, table_frame) =
                            tables.iter().find(|(h, _)| *h == hash).ok_or_else(|| {
                                WireError::Corrupt(format!(
                                    "worker requested table hash {hash:#018x} the plan never \
                                     referenced"
                                ))
                            })?;
                        self.send(worker, table_frame)?;
                    }
                }
                Frame::Error { message } => return Err(WireError::Remote(message)),
                _ => {
                    return Err(WireError::Corrupt(
                        "expected NeedTables in reply to Plan".into(),
                    ))
                }
            }
            worker.known.insert(entry_key);
        }
        self.send(worker, task_frame)?;
        worker.stdin.flush()?;
        self.tasks_dispatched.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Read one task's response: bundle frames up to the terminating stats
    /// frame.
    #[allow(clippy::type_complexity)]
    fn read_response(
        &self,
        slot: &mut Option<Worker>,
    ) -> WireResult<(Vec<(usize, Option<TupleBundle>)>, wire::TaskStats)> {
        let worker = slot.as_mut().ok_or(WireError::Truncated {
            what: "worker response (no worker)",
        })?;
        let mut bundles = Vec::new();
        loop {
            let (payload, _) = self.receive(worker)?;
            match wire::decode_frame(&payload)? {
                Frame::Bundle { idx, bundle } => bundles.push((idx, bundle)),
                Frame::TaskStats(stats) => {
                    if stats.bundles != bundles.len() {
                        return Err(WireError::Corrupt(format!(
                            "worker announced {} bundles but sent {}",
                            stats.bundles,
                            bundles.len()
                        )));
                    }
                    return Ok((bundles, stats));
                }
                Frame::Error { message } => return Err(WireError::Remote(message)),
                _ => {
                    return Err(WireError::Corrupt(
                        "unexpected frame inside a task response".into(),
                    ))
                }
            }
        }
    }

    /// Whether a wire failure warrants a respawn + re-dispatch (crashes and
    /// protocol breakdowns do; a task-level `Error` frame does not — the
    /// worker is healthy and the failure is deterministic).
    fn is_crash(err: &WireError) -> bool {
        !matches!(err, WireError::Remote(_))
    }

    /// Record a crash-class failure on slot `i`'s breaker, counting trips.
    fn note_failure(&self, state: &mut State, i: usize) {
        if state.breakers[i].note_failure() {
            self.circuit_trips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Kill and reap every worker with a task in flight this block.
    /// Aborting mid-conversation (a task-level Error frame, ...) can leave
    /// *other* workers' completed responses queued in their pipes; a later
    /// block would read those stale frames as its own partials.  Dropping
    /// the in-flight workers (they respawn cold on the next dispatch) makes
    /// that impossible.
    fn teardown(&self, state: &mut State, in_flight: usize) {
        for slot in state.slots[..in_flight].iter_mut() {
            if let Some(worker) = slot.take() {
                reap_worker(worker, Duration::ZERO);
            }
        }
    }

    /// The fallible dispatch conversation for one block: pipeline every
    /// task to its worker (phase A), then collect responses in task order
    /// (phase B).  `tasks[i] == None` marks a slot whose breaker is open —
    /// nothing is dispatched for it and its outcome is `Degraded` up front.
    ///
    /// Each phase runs a bounded retry ladder per slot: a crash-class
    /// failure (EOF, corrupt frame, read deadline) respawns the worker and
    /// re-dispatches after a capped, jittered backoff; a slot that exhausts
    /// its retries degrades to `Degraded` instead of failing the block.
    /// Deterministic task-level errors still fail the block (the caller
    /// tears down all in-flight workers so no stale frame can leak into the
    /// next conversation).
    #[allow(clippy::type_complexity)]
    fn run_tasks(
        &self,
        state: &mut State,
        key: PlanKey,
        plan_frame: &[u8],
        tables: &[(u64, Arc<Vec<u8>>)],
        tasks: &[Option<Vec<u8>>],
    ) -> WireResult<Vec<TaskOutcome>> {
        let mut outcomes: Vec<Option<TaskOutcome>> = tasks
            .iter()
            .map(|t| t.is_none().then_some(TaskOutcome::Degraded))
            .collect();

        // Phase A: pipeline every task out to its worker before reading any
        // response, so the workers run concurrently.  (A cold worker's plan
        // exchange blocks on its NeedTables reply, but only before its
        // first task for the key.)
        for (i, task_frame) in tasks.iter().enumerate() {
            let Some(task_frame) = task_frame else {
                continue;
            };
            let mut attempt = 0u32;
            loop {
                let slot = &mut state.slots[i];
                match self.send_task(slot, i, key, plan_frame, tables, task_frame) {
                    Ok(()) => break,
                    Err(e) if !Self::is_crash(&e) => {
                        self.teardown(state, tasks.len());
                        return Err(e);
                    }
                    Err(_) => {
                        self.note_failure(state, i);
                        if self.retry.exhausted(attempt) {
                            if let Some(worker) = state.slots[i].take() {
                                reap_worker(worker, Duration::ZERO);
                            }
                            outcomes[i] = Some(TaskOutcome::Degraded);
                            break;
                        }
                        self.task_retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(self.retry.delay(attempt, i as u64));
                        attempt += 1;
                        // A failed respawn is just another crash-class
                        // failure: the next send attempt runs into the empty
                        // or broken slot and the ladder converges.
                        match self.fill_slot(&mut state.slots[i], i, true) {
                            Ok(()) => {}
                            Err(e) if Self::is_crash(&e) => {}
                            Err(e) => {
                                self.teardown(state, tasks.len());
                                return Err(e);
                            }
                        }
                    }
                }
            }
        }

        // Phase B: collect partials in task (= ascending key-range) order.
        // A read failure is a crashed *or hung* worker: respawn,
        // re-dispatch that task, and read again — the position-addressable
        // streams make the re-run bit-identical.  A worker that evicted the
        // plan from its bounded memory answers with the unknown-plan error:
        // it is healthy, so just re-send the plan and the task.
        for (i, task_frame) in tasks.iter().enumerate() {
            let Some(task_frame) = task_frame else {
                continue;
            };
            if outcomes[i].is_some() {
                continue; // degraded in phase A; nothing in flight
            }
            let mut attempt = 0u32;
            let mut plan_resends = 0u32;
            let outcome = loop {
                let slot = &mut state.slots[i];
                match self.read_response(slot) {
                    Ok((bundles, stats)) => {
                        state.breakers[i].note_success();
                        break TaskOutcome::Wire(bundles, stats);
                    }
                    Err(WireError::Remote(msg))
                        if msg.starts_with(wire::UNKNOWN_PLAN_MESSAGE_PREFIX)
                            && plan_resends < 2 =>
                    {
                        plan_resends += 1;
                        if let Some(worker) = slot.as_mut() {
                            worker.known.remove(&key);
                        }
                        match self.send_task(slot, i, key, plan_frame, tables, task_frame) {
                            // Sent (or crashed — the next read attempt sees
                            // the broken slot and the crash ladder takes
                            // over).
                            Ok(()) => {}
                            Err(e) if Self::is_crash(&e) => {}
                            Err(e) => {
                                self.teardown(state, tasks.len());
                                return Err(e);
                            }
                        }
                    }
                    Err(e) if Self::is_crash(&e) => {
                        self.note_failure(state, i);
                        if self.retry.exhausted(attempt) {
                            if let Some(worker) = state.slots[i].take() {
                                reap_worker(worker, Duration::ZERO);
                            }
                            break TaskOutcome::Degraded;
                        }
                        self.task_retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(self.retry.delay(attempt, i as u64));
                        attempt += 1;
                        let slot = &mut state.slots[i];
                        match self.fill_slot(slot, i, true).and_then(|()| {
                            self.send_task(slot, i, key, plan_frame, tables, task_frame)
                        }) {
                            Ok(()) => {}
                            Err(e) if Self::is_crash(&e) => {}
                            Err(e) => {
                                self.teardown(state, tasks.len());
                                return Err(e);
                            }
                        }
                    }
                    Err(e) => {
                        self.teardown(state, tasks.len());
                        return Err(e);
                    }
                }
            };
            outcomes[i] = Some(outcome);
        }
        Ok(outcomes
            .into_iter()
            .map(|o| o.expect("every slot resolved in phase A or B"))
            .collect())
    }
}

impl ExecBackend for ProcessBackend {
    fn name(&self) -> &'static str {
        "process"
    }

    fn prepare_dispatch(
        &self,
        plan: &PlanNode,
        catalog: &Catalog,
        prefix: &DeterministicPrefix,
    ) -> Result<()> {
        let mut state = self.state.lock().expect("dispatch state");
        if state
            .plans
            .iter()
            .any(|e| Arc::ptr_eq(&e.skeleton, prefix.skeleton()))
        {
            return Ok(());
        }
        let key = PlanKey {
            fingerprint: plan.fingerprint(),
            epoch: catalog.epoch(),
        };
        let frame = match wire::encode_plan(key, plan, catalog) {
            Ok(bytes) => Some(Arc::new(bytes)),
            // Not expressible on the wire (third-party VG): remember the
            // verdict so every block of this plan runs locally.
            Err(WireError::Unserializable(_)) => None,
            Err(e) => return Err(e.into()),
        };
        let tables = if frame.is_some() {
            let mut tables = Vec::new();
            for r in wire::plan_table_refs(plan, catalog).map_err(mcdbr_storage::Error::from)? {
                // A table version already encoded for another prepared plan
                // (same content hash) is shared, not re-encoded.
                let table_frame = state
                    .plans
                    .iter()
                    .flat_map(|e| e.tables.iter())
                    .find(|(h, _)| *h == r.hash)
                    .map(|(_, f)| Arc::clone(f))
                    .map(Ok::<_, mcdbr_storage::Error>)
                    .unwrap_or_else(|| {
                        Ok(Arc::new(
                            wire::encode_table_data(r.hash, catalog.get(&r.name)?)
                                .map_err(mcdbr_storage::Error::from)?,
                        ))
                    })?;
                tables.push((r.hash, table_frame));
            }
            tables
        } else {
            Vec::new()
        };
        if state.plans.len() >= MAX_PREPARED_PLANS {
            state.plans.remove(0);
        }
        state.plans.push(PlanEntry {
            skeleton: Arc::clone(prefix.skeleton()),
            key,
            frame,
            tables: Arc::new(tables),
        });
        Ok(())
    }

    fn instantiate_block(
        &self,
        prefix: &DeterministicPrefix,
        pool: &BlockBufferPool,
        threads: usize,
        base_pos: u64,
        num_values: usize,
    ) -> Result<BundleSet> {
        let skeleton = prefix.skeleton();
        let mut state = self.state.lock().expect("dispatch state");
        let (key, plan_frame, tables) = match state
            .plans
            .iter()
            .find(|e| Arc::ptr_eq(&e.skeleton, skeleton))
        {
            Some(PlanEntry {
                frame: Some(frame),
                key,
                tables,
                ..
            }) => (*key, Arc::clone(frame), Arc::clone(tables)),
            // Unprimed prefix or unserializable plan: run locally,
            // bit-identically (tasks_dispatched stays flat).
            _ => {
                drop(state);
                return InProcessBackend::new()
                    .instantiate_block(prefix, pool, threads, base_pos, num_values);
            }
        };

        let ranges = plan_shards(skeleton, self.workers);
        if state.breakers.len() < ranges.len() {
            state.breakers.resize(ranges.len(), Breaker::default());
        }
        // Slots with an open breaker skip dispatch entirely this block:
        // their tasks run locally below, and the breaker's cooldown ticks
        // down toward the half-open probe.
        let tasks: Vec<Option<Vec<u8>>> = ranges
            .iter()
            .enumerate()
            .map(|(i, &key_range)| {
                (!state.breakers[i].degrade_this_block()).then(|| {
                    wire::encode_task(&TaskHeader {
                        key,
                        master_seed: prefix.master_seed(),
                        key_range,
                        base_pos,
                        num_values,
                    })
                })
            })
            .collect();

        let outcomes = self
            .run_tasks(&mut state, key, &plan_frame, &tables, &tasks)
            .map_err(mcdbr_storage::Error::from)?;
        drop(state);

        // Merge: identical slotting to ShardedBackend — partials arrive in
        // ascending key-range order and every bundle lands at its skeleton
        // index, restoring single-shard output order exactly.  Degraded
        // slots run their ShardTask locally first: the same self-describing
        // task the worker would have run, so the partial is bit-identical
        // and the merge cannot tell the difference.
        let merge_start = Instant::now();
        let mut slots: Vec<Option<TupleBundle>> = Vec::with_capacity(skeleton.num_bundles());
        slots.resize_with(skeleton.num_bundles(), || None);
        let mut foreign = 0usize;
        let mut warm = 0usize;
        let mut evicted = 0u64;
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let (bundles, task_foreign, task_warm) = match outcome {
                TaskOutcome::Wire(bundles, stats) => {
                    evicted += stats.store_evictions;
                    (bundles, stats.foreign_streams, stats.warm_hit)
                }
                TaskOutcome::Degraded => {
                    let local = ShardTask {
                        skeleton: Arc::clone(skeleton),
                        master_seed: prefix.master_seed(),
                        key_range: ranges[i],
                        base_pos,
                        num_values,
                    }
                    .run(pool)?;
                    (local.bundles, local.foreign_streams, false)
                }
            };
            foreign += task_foreign;
            warm += usize::from(task_warm);
            for (idx, bundle) in bundles {
                if idx >= slots.len() {
                    return Err(mcdbr_storage::Error::Invalid(format!(
                        "worker returned bundle index {idx} outside the skeleton ({} bundles)",
                        slots.len()
                    )));
                }
                slots[idx] = bundle;
            }
        }
        self.merge_ns
            .fetch_add(merge_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.cross_shard_regens
            .fetch_add(foreign, Ordering::Relaxed);
        self.worker_warm_hits.fetch_add(warm, Ordering::Relaxed);
        self.store_evictions.fetch_add(evicted, Ordering::Relaxed);
        Ok(BundleSet {
            schema: skeleton.schema().clone(),
            bundles: slots.into_iter().flatten().collect(),
            registry: prefix.registry().clone(),
            num_reps: num_values,
        })
    }

    fn aggregate(
        &self,
        set: &BundleSet,
        agg: &AggregateSpec,
        group_by: &[String],
        final_predicate: Option<&Expr>,
        threads: usize,
    ) -> Result<QueryResultSamples> {
        // Local sharded partials; see the module docs for why aggregation
        // never crosses the process boundary.
        self.agg
            .aggregate(set, agg, group_by, final_predicate, threads)
    }

    fn shard_stats(&self) -> ShardStats {
        let agg = self.agg.shard_stats();
        ShardStats {
            shards_spawned: self.tasks_dispatched.load(Ordering::Relaxed) + agg.shards_spawned,
            shard_merge_ns: self.merge_ns.load(Ordering::Relaxed) + agg.shard_merge_ns,
            cross_shard_regens: self.cross_shard_regens.load(Ordering::Relaxed)
                + agg.cross_shard_regens,
            workers_spawned: self.workers_spawned.load(Ordering::Relaxed),
            tasks_dispatched: self.tasks_dispatched.load(Ordering::Relaxed),
            wire_bytes_sent: self.wire_bytes_sent.load(Ordering::Relaxed),
            wire_bytes_received: self.wire_bytes_received.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            worker_warm_hits: self.worker_warm_hits.load(Ordering::Relaxed),
            deadline_timeouts: self.deadline_timeouts.load(Ordering::Relaxed),
            task_retries: self.task_retries.load(Ordering::Relaxed),
            circuit_trips: self.circuit_trips.load(Ordering::Relaxed),
            store_evictions: self.store_evictions.load(Ordering::Relaxed),
            ..ShardStats::default()
        }
        // The coordinator's own pager counters; workers keep theirs.  The
        // local agg's snapshot reports the same process-global numbers, so
        // taking them once here cannot double count.
        .with_pager()
    }
}

impl Drop for ProcessBackend {
    fn drop(&mut self) {
        let mut state = self.state.lock().expect("dispatch state");
        for slot in state.slots.iter_mut() {
            if let Some(mut worker) = slot.take() {
                // Best-effort clean shutdown (Shutdown frame + pipe close),
                // bounded wait, then SIGKILL escalation — a worker ignoring
                // the pipe close cannot wedge teardown.
                let _ = wire::write_frame(&mut worker.stdin, &wire::encode_shutdown());
                let _ = worker.stdin.flush();
                reap_worker(worker, Duration::from_millis(200));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_exec::plan::scalar_random_table;
    use mcdbr_exec::{ExecSession, SessionCache};
    use mcdbr_storage::{Field, Schema, TableBuilder, Value};
    use mcdbr_vg::NormalVg;

    fn catalog() -> Catalog {
        let mut means =
            TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]));
        for i in 0..8i64 {
            means = means.row([Value::Int64(i), Value::Float64(2.0 + i as f64)]);
        }
        let regions = TableBuilder::new(Schema::new(vec![
            Field::int64("rcid"),
            Field::utf8("region"),
        ]))
        .row([Value::Int64(0), Value::str("EU")])
        .row([Value::Int64(1), Value::str("US")])
        .row([Value::Int64(2), Value::str("US")])
        .row([Value::Int64(5), Value::str("APAC")])
        .build()
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.register("means", means.build().unwrap()).unwrap();
        catalog.register("regions", regions).unwrap();
        catalog
    }

    /// Scan + random table + both filter kinds + join + computed projection.
    fn complex_plan() -> PlanNode {
        PlanNode::random_table(scalar_random_table(
            "Losses",
            "means",
            Arc::new(NormalVg),
            vec![Expr::col("m"), Expr::lit(1.0)],
            &["cid"],
            "val",
            1,
        ))
        .filter(Expr::col("cid").lt(Expr::lit(6i64)))
        .join(PlanNode::scan("regions"), vec![("cid", "rcid")])
        .filter(Expr::col("val").gt(Expr::lit(2.5)))
        .project(vec![
            ("cid", Expr::col("cid")),
            ("loss", Expr::col("val")),
            ("scaled", Expr::col("val").mul(Expr::lit(2.0))),
            ("region", Expr::col("region")),
        ])
    }

    fn assert_sets_identical(a: &BundleSet, b: &BundleSet) {
        assert_eq!(a.schema, b.schema);
        assert_eq!(a.num_reps, b.num_reps);
        assert_eq!(a.bundles, b.bundles);
    }

    #[test]
    fn task_deadline_env_rules() {
        assert_eq!(task_deadline_from_env(None), DEFAULT_TASK_DEADLINE);
        assert_eq!(task_deadline_from_env(Some("")), DEFAULT_TASK_DEADLINE);
        assert_eq!(task_deadline_from_env(Some("abc")), DEFAULT_TASK_DEADLINE);
        assert_eq!(task_deadline_from_env(Some("0")), DEFAULT_TASK_DEADLINE);
        assert_eq!(
            task_deadline_from_env(Some(" 250 ")),
            Duration::from_millis(250)
        );
        assert!(default_task_deadline() > Duration::ZERO);
    }

    #[test]
    fn breaker_trips_after_threshold_cools_down_and_probes() {
        let mut b = Breaker::default();
        assert!(!b.degrade_this_block(), "closed breakers dispatch");
        assert!(!b.note_failure());
        assert!(!b.note_failure());
        assert!(b.note_failure(), "third consecutive failure trips");
        // Open: degrade for the cooldown's worth of blocks.
        for _ in 0..BREAKER_COOLDOWN_BLOCKS {
            assert!(b.degrade_this_block());
        }
        // Cooldown spent: the next block is the half-open probe.
        assert!(!b.degrade_this_block());
        assert_eq!(b.state, BreakerState::HalfOpen);
        // A failed probe re-trips immediately...
        assert!(b.note_failure());
        for _ in 0..BREAKER_COOLDOWN_BLOCKS {
            assert!(b.degrade_this_block());
        }
        assert!(!b.degrade_this_block());
        // ...and a successful one closes and resets the failure count.
        b.note_success();
        assert_eq!(b.state, BreakerState::Closed);
        assert_eq!(b.failures, 0);
        assert!(!b.degrade_this_block());
    }

    #[test]
    fn fault_spec_builder_validates_the_plan() {
        assert!(ProcessBackend::new(1)
            .with_fault_spec("seed=1,drop=0.5")
            .is_ok());
        let err = ProcessBackend::new(1)
            .with_fault_spec("seed=1,warp=0.5")
            .unwrap_err();
        assert!(err.to_string().contains("unknown fault point"));
    }

    #[test]
    fn process_blocks_are_bit_identical_to_in_process_for_every_worker_count() {
        let catalog = catalog();
        let plan = complex_plan();
        let mut reference = ExecSession::prepare(&plan, &catalog, 42)
            .unwrap()
            .with_backend(Arc::new(InProcessBackend::new()));
        let expected: Vec<BundleSet> = [(0u64, 24usize), (24, 24), (9000, 8)]
            .iter()
            .map(|&(base, n)| reference.instantiate_block(&catalog, base, n).unwrap())
            .collect();
        for workers in [1usize, 2, 3] {
            let backend = Arc::new(ProcessBackend::new(workers));
            assert_eq!(backend.name(), "process");
            assert_eq!(backend.workers(), workers);
            let mut session = ExecSession::prepare(&plan, &catalog, 42)
                .unwrap()
                .with_backend(backend.clone());
            for (&(base, n), want) in [(0u64, 24usize), (24, 24), (9000, 8)].iter().zip(&expected) {
                let got = session.instantiate_block(&catalog, base, n).unwrap();
                assert_sets_identical(want, &got);
            }
            let stats = backend.shard_stats();
            assert!(
                stats.tasks_dispatched > 0,
                "{workers} workers: blocks must actually cross the wire"
            );
            assert!(stats.workers_spawned >= 1);
            assert!(stats.wire_bytes_sent > 0 && stats.wire_bytes_received > 0);
            // Exact-zero failure counters and the warm-hit guarantee only
            // hold on a fault-free wire; a chaos run (MCDBR_FAULTS) may
            // legitimately respawn workers and lose warm state.
            if mcdbr_faults::env_injector().is_none() {
                assert!(stats.workers_spawned <= workers);
                assert_eq!(stats.worker_respawns, 0);
                assert_eq!(stats.deadline_timeouts, 0);
                assert_eq!(stats.circuit_trips, 0);
                assert!(
                    stats.worker_warm_hits > 0,
                    "later blocks must hit the warm-worker phase-1 skip"
                );
            }
        }
    }

    #[test]
    fn killed_workers_are_respawned_and_their_task_re_dispatched() {
        let catalog = catalog();
        let plan = complex_plan();
        let backend = Arc::new(ProcessBackend::new(2));
        let mut session = ExecSession::prepare(&plan, &catalog, 7)
            .unwrap()
            .with_backend(backend.clone());
        let mut reference = ExecSession::prepare(&plan, &catalog, 7)
            .unwrap()
            .with_backend(Arc::new(InProcessBackend::new()));
        let first = session.instantiate_block(&catalog, 0, 16).unwrap();
        assert_sets_identical(
            &reference.instantiate_block(&catalog, 0, 16).unwrap(),
            &first,
        );

        // Kill both workers: the next block hits broken pipes, respawns,
        // re-sends the plan (respawned workers are cold), re-dispatches, and
        // still merges bit-identically.
        backend.kill_worker(0);
        backend.kill_worker(1);
        let second = session.instantiate_block(&catalog, 16, 16).unwrap();
        assert_sets_identical(
            &reference.instantiate_block(&catalog, 16, 16).unwrap(),
            &second,
        );
        let stats = backend.shard_stats();
        assert!(
            stats.worker_respawns >= 1,
            "killed workers must be respawned, got {stats:?}"
        );
    }

    #[test]
    fn evicted_worker_plans_are_resent_transparently() {
        // Workers bound their plan memory (MAX_KNOWN_PLANS); cycling more
        // distinct plans than that through one worker evicts the first one
        // from the *worker* while the coordinator still believes the worker
        // knows it.  The worker answers with the unknown-plan error, the
        // coordinator re-sends the plan + task, and the block comes back
        // bit-identical — without a respawn (the worker is healthy).
        let catalog = catalog();
        let backend = Arc::new(ProcessBackend::new(1));
        let plan_i = |i: i64| {
            complex_plan().project(vec![("loss", Expr::col("loss")), ("tag", Expr::lit(i))])
        };
        let mut first = ExecSession::prepare(&plan_i(0), &catalog, 5)
            .unwrap()
            .with_backend(backend.clone());
        let _ = first.instantiate_block(&catalog, 0, 4).unwrap();
        // 64 more distinct plans push plan 0 out of the worker's store.
        for i in 1..=64i64 {
            let mut session = ExecSession::prepare(&plan_i(i), &catalog, 5)
                .unwrap()
                .with_backend(backend.clone());
            let _ = session.instantiate_block(&catalog, 0, 2).unwrap();
        }
        let got = first.instantiate_block(&catalog, 4, 8).unwrap();
        let want = ExecSession::prepare(&plan_i(0), &catalog, 5)
            .unwrap()
            .with_backend(Arc::new(InProcessBackend::new()))
            .instantiate_block(&catalog, 4, 8)
            .unwrap();
        assert_sets_identical(&want, &got);
        if mcdbr_faults::env_injector().is_none() {
            let stats = backend.shard_stats();
            assert_eq!(
                stats.worker_respawns, 0,
                "plan eviction is recovered by re-sending, never by respawning: {stats:?}"
            );
        }
    }

    #[test]
    fn unprimed_prefixes_and_unserializable_plans_fall_back_locally() {
        let catalog = catalog();
        let plan = complex_plan();
        let backend = ProcessBackend::new(2);
        let pool = BlockBufferPool::new();
        let session = ExecSession::prepare(&plan, &catalog, 3).unwrap();
        let prefix = session.prefix().unwrap();
        // Direct backend call without prepare_dispatch: local, identical.
        let direct = backend.instantiate_block(prefix, &pool, 2, 0, 16).unwrap();
        let reference = InProcessBackend::new()
            .instantiate_block(prefix, &pool, 1, 0, 16)
            .unwrap();
        assert_sets_identical(&reference, &direct);
        assert_eq!(backend.shard_stats().tasks_dispatched, 0);

        // A third-party VG function is not wire-serializable: prime +
        // instantiate still works, locally.
        #[derive(Debug)]
        struct LocalVg;
        impl mcdbr_vg::VgFunction for LocalVg {
            fn name(&self) -> &str {
                "LocalOnly"
            }
            fn cache_token(&self) -> String {
                self.name().into()
            }
            fn output_fields(&self) -> Vec<Field> {
                vec![Field::float64("value")]
            }
            fn generate(
                &self,
                _params: &[Value],
                gen: &mut mcdbr_prng::Pcg64,
            ) -> mcdbr_storage::Result<Vec<mcdbr_storage::Tuple>> {
                Ok(vec![mcdbr_storage::Tuple::from_iter_values([
                    gen.next_f64()
                ])])
            }
        }
        let local_plan = PlanNode::random_table(scalar_random_table(
            "Local",
            "means",
            Arc::new(LocalVg),
            vec![],
            &["cid"],
            "val",
            9,
        ));
        let cache = SessionCache::new();
        let mut session = cache
            .session(&local_plan, &catalog, 5)
            .unwrap()
            .with_backend(Arc::new(ProcessBackend::new(2)));
        let mut reference = cache
            .session(&local_plan, &catalog, 5)
            .unwrap()
            .with_backend(Arc::new(InProcessBackend::new()));
        let a = session.instantiate_block(&catalog, 0, 12).unwrap();
        let b = reference.instantiate_block(&catalog, 0, 12).unwrap();
        assert_sets_identical(&b, &a);
        assert_eq!(session.backend().shard_stats().tasks_dispatched, 0);
    }
}
