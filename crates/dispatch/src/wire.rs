//! The versioned, dependency-free binary wire format between the shard
//! dispatcher and its worker processes.
//!
//! Everything on the wire is a **frame**: a little-endian `u32` length
//! prefix followed by that many payload bytes, the first of which is the
//! frame tag.  The conversation is strictly request/response over a
//! worker's stdin/stdout:
//!
//! ```text
//! coordinator → worker        worker → coordinator
//! ───────────────────         ────────────────────
//! Hello{magic, version}   →
//!                         ←   Hello{magic, version}      (version negotiation)
//! Plan{key, plan, refs}   →                              (cold worker only)
//!                         ←   NeedTables{hashes}         (possibly empty)
//! TableData{hash, table}  →                         × M  (one per missing hash)
//! Task{key, seed, range,  →
//!      base_pos, n}
//!                         ←   Bundle{idx, bundle}  × N   (length-prefixed partials)
//!                         ←   TaskStats{N, foreign, warm, evicted}
//! Shutdown                →                              (clean exit)
//! ```
//!
//! Plan shipping is **content-addressed**: a `Plan` frame carries the
//! serialized [`PlanNode`] plus one [`TableRef`] — name and content hash —
//! per table the plan reads, never the rows themselves.  The worker
//! answers with the hashes absent from its hash-keyed table store, and
//! only those travel as `TableData` frames (sealed page bytes verbatim, so
//! the hash recomputes identically on arrival).  A warm worker that
//! already holds every table answers with an empty `NeedTables` and the
//! whole exchange is a few dozen bytes.  The `(plan fingerprint, catalog
//! epoch)` [`PlanKey`] travels first on every `Task`, so a *warm* worker —
//! one that already built this plan's skeleton for an earlier task — skips
//! phase 1 through its own [`mcdbr_exec::SessionCache`] and reports the
//! hit in [`TaskStats::warm_hit`].  Partial results come back as one
//! length-prefixed frame per owned bundle, each attribute encoded through
//! the columnar [`Column`] codec (typed little-endian vectors, dictionary
//! arena for strings, packed null bitmaps) — floats travel as raw IEEE
//! bits, so the decoded bundle is bit-identical to the worker's.
//!
//! Decoding is total: truncated or corrupted frames return a typed
//! [`WireError`], never a panic, and a version or magic mismatch is
//! rejected at the handshake before any plan or task bytes flow.
//!
//! VG functions serialize by construction-time configuration (the built-in
//! set is enumerable via [`mcdbr_vg::VgFunction::as_any`]); a plan using a
//! third-party VG function is not wire-serializable — [`encode_plan`]
//! reports [`WireError::Unserializable`] and the dispatcher executes such
//! plans locally instead.
//!
//! The same frame discipline carries the **client ↔ server** conversation
//! of `mcdbr-server` over TCP (tags 8–13).  A client speaks `Hello` first
//! (mirroring the coordinator → worker handshake), then issues [`Frame::Query`]
//! requests; a successful response is `QueryResult` + `QueryStats`, a
//! rejection or failure is a typed [`Frame::ErrorReply`].  Unlike `Plan`
//! frames, a `Query` ships **no catalog snapshot** — the resident server
//! owns the data, and the plan's table references resolve against the
//! server's own catalog.

use std::io::{Read, Write};
use std::sync::Arc;

use mcdbr_exec::plan::{OutputColumn, RandomTableSpec};
use mcdbr_exec::{
    AggFunc, AggregateSpec, BinaryOp, BundleValue, Expr, JoinType, PlanNode, QueryResultSamples,
    TupleBundle, ValueChain,
};
use mcdbr_prng::StreamKeyRange;
use mcdbr_storage::{Column, DataType, Error, Field, Page, Schema, Table, Tuple, Value};
use mcdbr_vg::{
    BayesianDemandVg, DiscreteVg, GbmTerminalVg, MultiNormalVg, NormalVg, PoissonVg, UniformVg,
    VgFunction,
};

/// The protocol magic (`"MCDW"` little-endian) every handshake leads with.
pub const WIRE_MAGIC: u32 = 0x5744_434D;

/// The protocol version this build speaks.  Bumped on any incompatible
/// frame change; the handshake rejects peers speaking another version.
/// Version 2 introduced content-addressed plan shipping: `Plan` frames
/// carry [`TableRef`]s, tables travel as paged `TableData` frames on
/// demand, and bundle presence masks are bit-packed.  Version 3 added
/// [`TaskStats::store_evictions`] to the stats frame.
pub const WIRE_VERSION: u16 = 3;

/// Upper bound on a single frame's payload, guarding against a corrupt
/// length prefix allocating unbounded memory.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// The prefix of the `Error`-frame message a worker answers a task with
/// when it does not (or no longer) holds the task's plan.  Part of the
/// protocol: the coordinator recognizes it as "healthy worker, re-send
/// the plan" — not a crash, not a fatal task error.
pub const UNKNOWN_PLAN_MESSAGE_PREFIX: &str = "unknown plan key";

/// Typed wire-protocol failures.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The input ended inside `what`.
    Truncated {
        /// What was being decoded when the bytes ran out.
        what: &'static str,
    },
    /// Structurally invalid bytes (unknown tag, bad flag, invalid UTF-8,
    /// inconsistent lengths).
    Corrupt(String),
    /// The peer's handshake did not lead with [`WIRE_MAGIC`].
    BadMagic(u32),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The version this build speaks.
        ours: u16,
        /// The version the peer announced.
        theirs: u16,
    },
    /// The value cannot be expressed on the wire (e.g. a third-party VG
    /// function); the dispatcher falls back to local execution.
    Unserializable(String),
    /// An I/O failure on the underlying pipe.
    Io(std::io::ErrorKind, String),
    /// The worker answered with an `Error` frame carrying this message.
    Remote(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "truncated wire data inside {what}"),
            WireError::Corrupt(msg) => write!(f, "corrupt wire data: {msg}"),
            WireError::BadMagic(got) => {
                write!(
                    f,
                    "bad handshake magic {got:#010x} (want {WIRE_MAGIC:#010x})"
                )
            }
            WireError::VersionMismatch { ours, theirs } => {
                write!(
                    f,
                    "wire version mismatch: we speak v{ours}, peer speaks v{theirs}"
                )
            }
            WireError::Unserializable(what) => write!(f, "not wire-serializable: {what}"),
            WireError::Io(kind, msg) => write!(f, "wire I/O failure ({kind:?}): {msg}"),
            WireError::Remote(msg) => write!(f, "worker error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.kind(), e.to_string())
    }
}

impl From<WireError> for Error {
    fn from(e: WireError) -> Self {
        Error::Invalid(format!("dispatch wire: {e}"))
    }
}

/// Shorthand result alias for wire operations.
pub type WireResult<T> = std::result::Result<T, WireError>;

// ===== Primitive cursor =====

/// A bounds-checked decode cursor over a frame payload.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> WireResult<&'a [u8]> {
        let bytes = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or(WireError::Truncated { what })?;
        self.pos += n;
        Ok(bytes)
    }

    fn u8(&mut self, what: &'static str) -> WireResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &'static str) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn str(&mut self, what: &'static str) -> WireResult<String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Corrupt(format!("invalid UTF-8 inside {what}")))
    }

    /// Decode a [`Value`] via the storage codec, translating its error.
    fn value(&mut self, what: &'static str) -> WireResult<Value> {
        Value::decode_wire(self.buf, &mut self.pos)
            .map_err(|e| WireError::Corrupt(format!("{what}: {e}")))
    }

    /// Decode a value chain via the columnar [`Column`] codec.  The decoded
    /// column becomes the chain's single shared segment — no re-boxing.
    fn chain(&mut self, what: &'static str) -> WireResult<ValueChain> {
        let column = Column::decode_wire(self.buf, &mut self.pos)
            .map_err(|e| WireError::Corrupt(format!("{what}: {e}")))?;
        Ok(ValueChain::from_column(column))
    }

    fn finish(self, what: &'static str) -> WireResult<()> {
        if self.pos != self.buf.len() {
            return Err(WireError::Corrupt(format!(
                "{} trailing bytes after {what}",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encode a bundle value chain.  The common single-segment chain writes its
/// column's wire encoding directly — a straight column copy, no per-value
/// boxing; a replenished multi-segment chain flattens through a temporary
/// column first (same on-wire format either way).
fn put_chain(out: &mut Vec<u8>, chain: &ValueChain) {
    if let [seg] = chain.segments() {
        seg.encode_wire(out);
        return;
    }
    let mut column = Column::default();
    for v in chain.iter() {
        column.push_value(&v);
    }
    column.encode_wire(out);
}

// ===== Frame layer =====

/// Write one length-prefixed frame, returning the total bytes written
/// (prefix included).  The caller flushes the stream when the message
/// boundary requires it.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> WireResult<u64> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME_LEN as u64);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(4 + payload.len() as u64)
}

/// [`write_frame`] behind a fault injector: consults the drop-frame,
/// partial-write, and delayed-write points (in that priority order, one
/// action per frame) before writing.  `faults: None` is exactly
/// [`write_frame`], which stays pure — only the process-backend sends, the
/// worker's task replies, and the server connection handler route through
/// here.
///
/// Dropped and truncated frames still report success with the nominal byte
/// count: a fault is invisible to the writer, exactly like a buffered OS
/// write that will never reach a dead peer.  Recovery is the *reader's* job
/// (deadline → respawn ladder), which is the failure mode chaos runs are
/// exercising.
pub fn write_frame_faulty(
    w: &mut impl Write,
    payload: &[u8],
    faults: Option<&mcdbr_faults::FaultInjector>,
) -> WireResult<u64> {
    use mcdbr_faults::{FaultAction, FaultPoint};
    let nominal = 4 + payload.len() as u64;
    let Some(inj) = faults else {
        return write_frame(w, payload);
    };
    if inj.decide(FaultPoint::DropFrame) == Some(FaultAction::Drop) {
        return Ok(nominal);
    }
    if inj.decide(FaultPoint::PartialWrite) == Some(FaultAction::Truncate) {
        // Length prefix plus roughly half the payload: the peer sees a
        // truncated or desynced stream, never a silently-wrong frame.
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(&payload[..payload.len() / 2])?;
        let _ = w.flush();
        return Ok(nominal);
    }
    if let Some(FaultAction::Delay(d)) = inj.decide(FaultPoint::DelayedWrite) {
        std::thread::sleep(d);
    }
    write_frame(w, payload)
}

/// Read one length-prefixed frame payload, plus the total bytes consumed.
/// EOF *before the first length byte* returns `Ok(None)` — the peer closed
/// the stream cleanly; EOF anywhere later is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> WireResult<Option<(Vec<u8>, u64)>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Truncated {
                    what: "frame length",
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(WireError::Corrupt(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => WireError::Truncated {
            what: "frame payload",
        },
        _ => e.into(),
    })?;
    Ok(Some((payload, 4 + len as u64)))
}

/// The `(plan fingerprint, catalog epoch)` cache key a task is addressed
/// by — the same key the coordinator's `SessionCache` uses, sent first so
/// warm workers can skip phase 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`PlanNode::fingerprint`] of the plan.
    pub fingerprint: u64,
    /// [`mcdbr_storage::Catalog::epoch`] of the coordinator's catalog at
    /// snapshot time.  Opaque to the worker (its rebuilt catalog mints its
    /// own local epoch); the pair only has to *identify* the snapshot.
    pub epoch: u64,
}

/// The header of one dispatched shard task: everything a worker that
/// already knows the plan needs to execute its slice of a block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskHeader {
    /// Which prepared plan to execute against.
    pub key: PlanKey,
    /// The master seed the worker binds the skeleton to.
    pub master_seed: u64,
    /// The slice of the stream-key space this task owns.
    pub key_range: StreamKeyRange,
    /// First stream position of the block window.
    pub base_pos: u64,
    /// Number of stream positions to materialize.
    pub num_values: usize,
}

/// The counter frame terminating a task response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskStats {
    /// Number of `Bundle` frames that preceded this frame (validated
    /// against what the coordinator actually received).
    pub bundles: usize,
    /// Streams the worker regenerated outside its key range (cross-shard
    /// joins).
    pub foreign_streams: usize,
    /// Whether the worker's own session cache already held the plan's
    /// skeleton — the warm-worker phase-1 skip.
    pub warm_hit: bool,
    /// Table-store evictions (memory tier only; disk copies survive) on
    /// this worker since its previous stats frame — a delta, so the
    /// coordinator can sum frames without double counting.
    pub store_evictions: u64,
}

/// Why a server turned a request away (see [`Frame::ErrorReply`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyCode {
    /// Admission control: the in-flight query cap is reached — retry later.
    Busy,
    /// The server is draining for shutdown and admits no new queries.
    ShuttingDown,
    /// The request was malformed or used a frame the server does not accept.
    Invalid,
    /// The query was admitted but failed during execution.
    Internal,
    /// The query was admitted but ran past its per-query deadline (or was
    /// cancelled cooperatively).  Unlike `Busy` this is not retryable as-is:
    /// the same query will most likely time out again.
    Timeout,
}

fn reply_code_to_u8(code: ReplyCode) -> u8 {
    match code {
        ReplyCode::Busy => 1,
        ReplyCode::ShuttingDown => 2,
        ReplyCode::Invalid => 3,
        ReplyCode::Internal => 4,
        ReplyCode::Timeout => 5,
    }
}

fn reply_code_from_u8(raw: u8) -> WireResult<ReplyCode> {
    Ok(match raw {
        1 => ReplyCode::Busy,
        2 => ReplyCode::ShuttingDown,
        3 => ReplyCode::Invalid,
        4 => ReplyCode::Internal,
        5 => ReplyCode::Timeout,
        other => return Err(WireError::Corrupt(format!("unknown reply code {other}"))),
    })
}

/// Per-query counters terminating a successful query response
/// (server → client).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Whether phase 1 was skipped via the server's shared `SessionCache`.
    pub skeleton_hit: bool,
    /// Full plan executions this query cost the server (0 on a cache hit).
    pub plan_executions: u64,
    /// Tasks shipped to worker processes for this query (process backend).
    pub tasks_dispatched: u64,
    /// Shard/scheduler units this query fanned out into.
    pub shards_spawned: u64,
    /// Total time this query's scheduler units waited in queue.
    pub queue_wait_ns: u64,
    /// Wall-clock execution time, admission to last sample.
    pub exec_ns: u64,
}

/// A server-wide counter snapshot (server → client, answering
/// [`Frame::StatsRequest`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Queries answered successfully since startup.
    pub queries_served: u64,
    /// Shared-cache skeleton hits across all sessions.
    pub skeleton_hits: u64,
    /// Shared-cache skeleton misses across all sessions.
    pub skeleton_misses: u64,
    /// Full plan executions across all sessions.
    pub plan_executions: u64,
    /// Tasks shipped to worker processes across all queries.
    pub tasks_dispatched: u64,
    /// Queries turned away with [`ReplyCode::Busy`].
    pub busy_rejections: u64,
    /// Connections accepted since startup.
    pub connections: u64,
    /// Queries currently executing.
    pub inflight: u64,
    /// Admitted queries that exceeded the server's per-query deadline and
    /// were answered with a typed [`ReplyCode::Timeout`] reply.
    pub query_timeouts: u64,
}

/// One table a plan reads, addressed by content rather than copied: the
/// catalog name the plan references it by, and the table's
/// [`Table::content_hash`].  Workers resolve refs against their hash-keyed
/// store and request only what they lack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// The catalog name the plan resolves.
    pub name: String,
    /// The table's content hash (see [`Table::content_hash`]).
    pub hash: u64,
}

/// A decoded protocol frame.
#[derive(Debug)]
pub enum Frame {
    /// Handshake / version negotiation (both directions).
    Hello {
        /// Must equal [`WIRE_MAGIC`].
        magic: u32,
        /// The sender's [`WIRE_VERSION`].
        version: u16,
    },
    /// A plan keyed for later tasks (coordinator → worker, once per cold
    /// worker per plan).  Tables travel by reference — name + content hash
    /// — and the worker answers with [`Frame::NeedTables`].
    Plan {
        /// The key later `Task` frames will reference.
        key: PlanKey,
        /// The serialized plan, rebuilt by the worker.
        plan: PlanNode,
        /// The tables the plan reads, by name and content hash.
        tables: Vec<TableRef>,
    },
    /// The worker's answer to a `Plan` frame: the content hashes it does
    /// not hold (worker → coordinator; empty when fully warm).
    NeedTables {
        /// Missing table content hashes, in the `Plan` frame's ref order.
        hashes: Vec<u64>,
    },
    /// One table's pages, shipped on demand after a `NeedTables` reply
    /// (coordinator → worker).  Page bytes travel verbatim, so the hash
    /// recomputes identically on the receiving side.
    TableData {
        /// The table's content hash — the worker's store key.
        hash: u64,
        /// The reassembled table.
        table: Table,
    },
    /// One shard task (coordinator → worker).
    Task(TaskHeader),
    /// One owned bundle of a task's partial result (worker → coordinator);
    /// `bundle` is `None` for bundles whose presence mask is false
    /// everywhere.
    Bundle {
        /// The bundle's skeleton slot index.
        idx: usize,
        /// The materialized bundle, if present anywhere.
        bundle: Option<TupleBundle>,
    },
    /// Terminates a task response (worker → coordinator).
    TaskStats(TaskStats),
    /// A recoverable task-level failure (worker → coordinator).
    Error {
        /// Human-readable failure description.
        message: String,
    },
    /// Clean-exit request (coordinator → worker, or client → server to
    /// begin a graceful drain).
    Shutdown,
    /// A Monte Carlo query (client → server).  No catalog snapshot
    /// travels — the resident server owns the data, and the plan's table
    /// references resolve against the server's catalog.
    Query {
        /// The plan producing the tuples to aggregate.
        plan: PlanNode,
        /// The aggregate to compute.
        aggregate: AggregateSpec,
        /// Optional final selection predicate.
        final_predicate: Option<Expr>,
        /// Grouping columns (must be deterministic).
        group_by: Vec<String>,
        /// Monte Carlo repetition count.
        reps: u64,
        /// The master seed the query binds its streams from.
        master_seed: u64,
    },
    /// The per-group sample matrix of a successful query (server → client);
    /// floats travel as raw IEEE bits, so the decoded samples are
    /// bit-identical to the server's.
    QueryResult(QueryResultSamples),
    /// A typed rejection or failure reply (server → client).
    ErrorReply {
        /// Why the request was turned away.
        code: ReplyCode,
        /// Human-readable detail.
        message: String,
    },
    /// Per-query counters terminating a successful query response
    /// (server → client, after [`Frame::QueryResult`]).
    QueryStats(QueryStats),
    /// Request a server-wide counter snapshot (client → server).
    StatsRequest,
    /// The server-wide counter snapshot (server → client).
    ServerStats(ServerStats),
}

const TAG_HELLO: u8 = 1;
const TAG_PLAN: u8 = 2;
const TAG_TASK: u8 = 3;
const TAG_BUNDLE: u8 = 4;
const TAG_TASK_STATS: u8 = 5;
const TAG_ERROR: u8 = 6;
const TAG_SHUTDOWN: u8 = 7;
const TAG_QUERY: u8 = 8;
const TAG_QUERY_RESULT: u8 = 9;
const TAG_ERROR_REPLY: u8 = 10;
const TAG_QUERY_STATS: u8 = 11;
const TAG_STATS_REQUEST: u8 = 12;
const TAG_SERVER_STATS: u8 = 13;
const TAG_NEED_TABLES: u8 = 14;
const TAG_TABLE_DATA: u8 = 15;

/// Encode the handshake frame.
pub fn encode_hello() -> Vec<u8> {
    let mut out = vec![TAG_HELLO];
    out.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out
}

/// Encode a handshake frame announcing an arbitrary magic/version (test
/// hook for negotiation failures; production peers send [`encode_hello`]).
pub fn encode_hello_with(magic: u32, version: u16) -> Vec<u8> {
    let mut out = vec![TAG_HELLO];
    out.extend_from_slice(&magic.to_le_bytes());
    out.extend_from_slice(&version.to_le_bytes());
    out
}

/// The [`TableRef`]s of every table `plan` reads from `catalog`, in
/// deterministic (name) order.  Fails with [`WireError::Corrupt`] when the
/// plan references a table the catalog does not hold.
pub fn plan_table_refs(
    plan: &PlanNode,
    catalog: &mcdbr_storage::Catalog,
) -> WireResult<Vec<TableRef>> {
    let mut names = std::collections::BTreeSet::new();
    collect_tables(plan, &mut names);
    names
        .into_iter()
        .map(|name| {
            let table = catalog
                .get(&name)
                .map_err(|e| WireError::Corrupt(format!("catalog snapshot: {e}")))?;
            Ok(TableRef {
                hash: table.content_hash(),
                name,
            })
        })
        .collect()
}

/// Encode a `Plan` frame: the key, the serialized plan, and one
/// [`TableRef`] per table the plan reads from `catalog` — hashes only,
/// never rows.  Fails with [`WireError::Unserializable`] when the plan
/// uses a VG function outside the built-in set, and with
/// [`WireError::Corrupt`] when the plan references a table the catalog
/// does not hold.
pub fn encode_plan(
    key: PlanKey,
    plan: &PlanNode,
    catalog: &mcdbr_storage::Catalog,
) -> WireResult<Vec<u8>> {
    let mut out = vec![TAG_PLAN];
    out.extend_from_slice(&key.fingerprint.to_le_bytes());
    out.extend_from_slice(&key.epoch.to_le_bytes());
    put_plan(&mut out, plan)?;
    let refs = plan_table_refs(plan, catalog)?;
    out.extend_from_slice(&(refs.len() as u32).to_le_bytes());
    for r in &refs {
        put_str(&mut out, &r.name);
        out.extend_from_slice(&r.hash.to_le_bytes());
    }
    Ok(out)
}

/// Encode a `NeedTables` frame: the content hashes a worker lacks.
pub fn encode_need_tables(hashes: &[u64]) -> Vec<u8> {
    let mut out = vec![TAG_NEED_TABLES];
    out.extend_from_slice(&(hashes.len() as u32).to_le_bytes());
    for hash in hashes {
        out.extend_from_slice(&hash.to_le_bytes());
    }
    out
}

/// Encode a `TableData` frame: one table's sealed pages (bytes verbatim)
/// plus its open tail, keyed by content hash.  Fails with
/// [`WireError::Io`] when a disk-backed page's bytes cannot be read back.
pub fn encode_table_data(hash: u64, table: &Table) -> WireResult<Vec<u8>> {
    let mut out = vec![TAG_TABLE_DATA];
    out.extend_from_slice(&hash.to_le_bytes());
    put_table(&mut out, table)?;
    Ok(out)
}

/// Encode one table as a standalone blob — the `TableData` table encoding
/// without the frame tag and hash prefix.  This is the record payload the
/// worker's persistent store tier writes to `store/<hash>.heap`; the heap
/// record's checksum then covers exactly these bytes.
pub fn encode_table_bytes(table: &Table) -> WireResult<Vec<u8>> {
    let mut out = Vec::new();
    put_table(&mut out, table)?;
    Ok(out)
}

/// Decode a blob produced by [`encode_table_bytes`], rejecting trailing
/// bytes.  Validation is the same as for a `TableData` frame: every page
/// encoding and tail column is checked, so a store file whose checksum
/// passes but whose payload predates a format change fails typed here.
pub fn decode_table_bytes(bytes: &[u8]) -> WireResult<Table> {
    let mut d = Dec::new(bytes);
    let table = get_table(&mut d)?;
    d.finish("table blob")?;
    Ok(table)
}

/// Encode a `Task` frame.
pub fn encode_task(task: &TaskHeader) -> Vec<u8> {
    let mut out = vec![TAG_TASK];
    out.extend_from_slice(&task.key.fingerprint.to_le_bytes());
    out.extend_from_slice(&task.key.epoch.to_le_bytes());
    out.extend_from_slice(&task.master_seed.to_le_bytes());
    task.key_range.encode_wire(&mut out);
    out.extend_from_slice(&task.base_pos.to_le_bytes());
    out.extend_from_slice(&(task.num_values as u64).to_le_bytes());
    out
}

/// Encode one partial-result `Bundle` frame.
pub fn encode_bundle(idx: usize, bundle: Option<&TupleBundle>) -> Vec<u8> {
    let mut out = vec![TAG_BUNDLE];
    out.extend_from_slice(&(idx as u64).to_le_bytes());
    match bundle {
        None => out.push(0),
        Some(bundle) => {
            out.push(1);
            out.extend_from_slice(&(bundle.values.len() as u32).to_le_bytes());
            for value in &bundle.values {
                match value {
                    BundleValue::Const(v) => {
                        out.push(1);
                        v.encode_wire(&mut out);
                    }
                    BundleValue::Random {
                        seed,
                        vg_row,
                        vg_col,
                        base_pos,
                        values,
                    } => {
                        out.push(2);
                        out.extend_from_slice(&seed.to_le_bytes());
                        out.extend_from_slice(&(*vg_row as u32).to_le_bytes());
                        out.extend_from_slice(&(*vg_col as u32).to_le_bytes());
                        out.extend_from_slice(&base_pos.to_le_bytes());
                        put_chain(&mut out, values);
                    }
                    BundleValue::Computed(values) => {
                        out.push(3);
                        put_chain(&mut out, values);
                    }
                }
            }
            match &bundle.is_pres {
                None => out.push(0),
                Some(mask) => {
                    // Bit-packed (the NullBitmap word layout): 64 presence
                    // flags per u64 word instead of one byte per value.
                    out.push(1);
                    out.extend_from_slice(&(mask.len() as u32).to_le_bytes());
                    let mut word = 0u64;
                    for (i, &p) in mask.iter().enumerate() {
                        if p {
                            word |= 1 << (i % 64);
                        }
                        if i % 64 == 63 {
                            out.extend_from_slice(&word.to_le_bytes());
                            word = 0;
                        }
                    }
                    if mask.len() % 64 != 0 {
                        out.extend_from_slice(&word.to_le_bytes());
                    }
                }
            }
        }
    }
    out
}

/// Encode the `TaskStats` frame terminating a task response.
pub fn encode_task_stats(stats: TaskStats) -> Vec<u8> {
    let mut out = vec![TAG_TASK_STATS];
    out.extend_from_slice(&(stats.bundles as u64).to_le_bytes());
    out.extend_from_slice(&(stats.foreign_streams as u64).to_le_bytes());
    out.push(u8::from(stats.warm_hit));
    out.extend_from_slice(&stats.store_evictions.to_le_bytes());
    out
}

/// Encode an `Error` frame.
pub fn encode_error(message: &str) -> Vec<u8> {
    let mut out = vec![TAG_ERROR];
    put_str(&mut out, message);
    out
}

/// Encode the `Shutdown` frame.
pub fn encode_shutdown() -> Vec<u8> {
    vec![TAG_SHUTDOWN]
}

fn agg_func_to_u8(func: AggFunc) -> u8 {
    match func {
        AggFunc::Sum => 1,
        AggFunc::Count => 2,
        AggFunc::Avg => 3,
        AggFunc::Min => 4,
        AggFunc::Max => 5,
    }
}

fn agg_func_from_u8(raw: u8) -> WireResult<AggFunc> {
    Ok(match raw {
        1 => AggFunc::Sum,
        2 => AggFunc::Count,
        3 => AggFunc::Avg,
        4 => AggFunc::Min,
        5 => AggFunc::Max,
        other => {
            return Err(WireError::Corrupt(format!(
                "unknown aggregate function {other}"
            )))
        }
    })
}

/// Encode a `Query` frame.  Fails with [`WireError::Unserializable`] when
/// the plan uses a VG function outside the built-in set (such plans cannot
/// be shipped to a server).
pub fn encode_query(
    plan: &PlanNode,
    aggregate: &AggregateSpec,
    final_predicate: Option<&Expr>,
    group_by: &[String],
    reps: u64,
    master_seed: u64,
) -> WireResult<Vec<u8>> {
    let mut out = vec![TAG_QUERY];
    put_plan(&mut out, plan)?;
    out.push(agg_func_to_u8(aggregate.func));
    put_expr(&mut out, &aggregate.expr);
    put_str(&mut out, &aggregate.alias);
    match final_predicate {
        None => out.push(0),
        Some(expr) => {
            out.push(1);
            put_expr(&mut out, expr);
        }
    }
    out.extend_from_slice(&(group_by.len() as u32).to_le_bytes());
    for column in group_by {
        put_str(&mut out, column);
    }
    out.extend_from_slice(&reps.to_le_bytes());
    out.extend_from_slice(&master_seed.to_le_bytes());
    Ok(out)
}

/// Encode a `QueryResult` frame: the per-group, per-repetition sample
/// matrix, floats as raw IEEE bits.
pub fn encode_query_result(samples: &QueryResultSamples) -> Vec<u8> {
    let mut out = vec![TAG_QUERY_RESULT];
    out.extend_from_slice(&(samples.group_columns.len() as u32).to_le_bytes());
    for column in &samples.group_columns {
        put_str(&mut out, column);
    }
    out.extend_from_slice(&(samples.groups.len() as u32).to_le_bytes());
    for (key, xs) in &samples.groups {
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        for value in key {
            value.encode_wire(&mut out);
        }
        out.extend_from_slice(&(xs.len() as u64).to_le_bytes());
        for &x in xs {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
    out
}

/// Encode an `ErrorReply` frame.
pub fn encode_error_reply(code: ReplyCode, message: &str) -> Vec<u8> {
    let mut out = vec![TAG_ERROR_REPLY];
    out.push(reply_code_to_u8(code));
    put_str(&mut out, message);
    out
}

/// Encode the `QueryStats` frame terminating a successful query response.
pub fn encode_query_stats(stats: QueryStats) -> Vec<u8> {
    let mut out = vec![TAG_QUERY_STATS];
    out.push(u8::from(stats.skeleton_hit));
    out.extend_from_slice(&stats.plan_executions.to_le_bytes());
    out.extend_from_slice(&stats.tasks_dispatched.to_le_bytes());
    out.extend_from_slice(&stats.shards_spawned.to_le_bytes());
    out.extend_from_slice(&stats.queue_wait_ns.to_le_bytes());
    out.extend_from_slice(&stats.exec_ns.to_le_bytes());
    out
}

/// Encode the `StatsRequest` frame.
pub fn encode_stats_request() -> Vec<u8> {
    vec![TAG_STATS_REQUEST]
}

/// Encode a `ServerStats` snapshot frame.
pub fn encode_server_stats(stats: ServerStats) -> Vec<u8> {
    let mut out = vec![TAG_SERVER_STATS];
    out.extend_from_slice(&stats.queries_served.to_le_bytes());
    out.extend_from_slice(&stats.skeleton_hits.to_le_bytes());
    out.extend_from_slice(&stats.skeleton_misses.to_le_bytes());
    out.extend_from_slice(&stats.plan_executions.to_le_bytes());
    out.extend_from_slice(&stats.tasks_dispatched.to_le_bytes());
    out.extend_from_slice(&stats.busy_rejections.to_le_bytes());
    out.extend_from_slice(&stats.connections.to_le_bytes());
    out.extend_from_slice(&stats.inflight.to_le_bytes());
    out.extend_from_slice(&stats.query_timeouts.to_le_bytes());
    out
}

/// Decode one frame payload.
pub fn decode_frame(payload: &[u8]) -> WireResult<Frame> {
    let mut d = Dec::new(payload);
    let tag = d.u8("frame tag")?;
    let frame = match tag {
        TAG_HELLO => Frame::Hello {
            magic: d.u32("hello magic")?,
            version: d.u16("hello version")?,
        },
        TAG_PLAN => {
            let key = PlanKey {
                fingerprint: d.u64("plan key")?,
                epoch: d.u64("plan key")?,
            };
            let plan = get_plan(&mut d)?;
            let num_tables = d.u32("table ref count")? as usize;
            let mut tables = Vec::with_capacity(num_tables.min(1024));
            for _ in 0..num_tables {
                let name = d.str("table ref name")?;
                let hash = d.u64("table ref hash")?;
                tables.push(TableRef { name, hash });
            }
            Frame::Plan { key, plan, tables }
        }
        TAG_NEED_TABLES => {
            let count = d.u32("needed table count")? as usize;
            let mut hashes = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                hashes.push(d.u64("needed table hash")?);
            }
            Frame::NeedTables { hashes }
        }
        TAG_TABLE_DATA => {
            let hash = d.u64("table data hash")?;
            let table = get_table(&mut d)?;
            Frame::TableData { hash, table }
        }
        TAG_TASK => {
            let key = PlanKey {
                fingerprint: d.u64("task key")?,
                epoch: d.u64("task key")?,
            };
            let master_seed = d.u64("task master seed")?;
            let key_range =
                StreamKeyRange::decode_wire(d.buf, &mut d.pos).ok_or(WireError::Truncated {
                    what: "task key range",
                })?;
            Frame::Task(TaskHeader {
                key,
                master_seed,
                key_range,
                base_pos: d.u64("task base position")?,
                num_values: d.u64("task value count")? as usize,
            })
        }
        TAG_BUNDLE => {
            let idx = d.u64("bundle index")? as usize;
            let bundle = match d.u8("bundle presence flag")? {
                0 => None,
                1 => {
                    let arity = d.u32("bundle arity")? as usize;
                    let mut values = Vec::with_capacity(arity.min(4096));
                    for _ in 0..arity {
                        values.push(match d.u8("bundle value tag")? {
                            1 => BundleValue::Const(d.value("bundle constant")?),
                            2 => BundleValue::Random {
                                seed: d.u64("random seed")?,
                                vg_row: d.u32("random vg_row")? as usize,
                                vg_col: d.u32("random vg_col")? as usize,
                                base_pos: d.u64("random base_pos")?,
                                values: d.chain("random values")?,
                            },
                            3 => BundleValue::Computed(d.chain("computed values")?),
                            other => {
                                return Err(WireError::Corrupt(format!(
                                    "unknown bundle value tag {other}"
                                )))
                            }
                        });
                    }
                    let is_pres = match d.u8("presence flag")? {
                        0 => None,
                        1 => {
                            let len = d.u32("presence length")? as usize;
                            let words = d.take(len.div_ceil(64) * 8, "presence mask")?;
                            Some(
                                (0..len)
                                    .map(|i| words[i / 64 * 8 + i % 64 / 8] >> (i % 8) & 1 == 1)
                                    .collect(),
                            )
                        }
                        other => {
                            return Err(WireError::Corrupt(format!(
                                "unknown presence flag {other}"
                            )))
                        }
                    };
                    Some(TupleBundle { values, is_pres })
                }
                other => {
                    return Err(WireError::Corrupt(format!(
                        "unknown bundle presence flag {other}"
                    )))
                }
            };
            Frame::Bundle { idx, bundle }
        }
        TAG_TASK_STATS => Frame::TaskStats(TaskStats {
            bundles: d.u64("stats bundle count")? as usize,
            foreign_streams: d.u64("stats foreign streams")? as usize,
            warm_hit: d.u8("stats warm flag")? != 0,
            store_evictions: d.u64("stats store evictions")?,
        }),
        TAG_ERROR => Frame::Error {
            message: d.str("error message")?,
        },
        TAG_SHUTDOWN => Frame::Shutdown,
        TAG_QUERY => {
            let plan = get_plan(&mut d)?;
            let func = agg_func_from_u8(d.u8("aggregate function")?)?;
            let expr = get_expr(&mut d)?;
            let alias = d.str("aggregate alias")?;
            let final_predicate = match d.u8("final predicate flag")? {
                0 => None,
                1 => Some(get_expr(&mut d)?),
                other => {
                    return Err(WireError::Corrupt(format!(
                        "unknown final predicate flag {other}"
                    )))
                }
            };
            let num_group = d.u32("group-by count")? as usize;
            let mut group_by = Vec::with_capacity(num_group.min(1024));
            for _ in 0..num_group {
                group_by.push(d.str("group-by column")?);
            }
            Frame::Query {
                plan,
                aggregate: AggregateSpec { func, expr, alias },
                final_predicate,
                group_by,
                reps: d.u64("query repetitions")?,
                master_seed: d.u64("query master seed")?,
            }
        }
        TAG_QUERY_RESULT => {
            let num_columns = d.u32("group column count")? as usize;
            let mut group_columns = Vec::with_capacity(num_columns.min(1024));
            for _ in 0..num_columns {
                group_columns.push(d.str("group column")?);
            }
            let num_groups = d.u32("group count")? as usize;
            let mut groups = Vec::with_capacity(num_groups.min(4096));
            for _ in 0..num_groups {
                let key_len = d.u32("group key length")? as usize;
                let mut key = Vec::with_capacity(key_len.min(1024));
                for _ in 0..key_len {
                    key.push(d.value("group key value")?);
                }
                let num_samples = d.u64("sample count")? as usize;
                let mut xs = Vec::with_capacity(num_samples.min(1 << 20));
                for _ in 0..num_samples {
                    xs.push(d.f64("sample")?);
                }
                groups.push((key, xs));
            }
            Frame::QueryResult(QueryResultSamples {
                group_columns,
                groups,
            })
        }
        TAG_ERROR_REPLY => Frame::ErrorReply {
            code: reply_code_from_u8(d.u8("reply code")?)?,
            message: d.str("reply message")?,
        },
        TAG_QUERY_STATS => Frame::QueryStats(QueryStats {
            skeleton_hit: d.u8("stats skeleton flag")? != 0,
            plan_executions: d.u64("stats plan executions")?,
            tasks_dispatched: d.u64("stats tasks dispatched")?,
            shards_spawned: d.u64("stats shards spawned")?,
            queue_wait_ns: d.u64("stats queue wait")?,
            exec_ns: d.u64("stats exec time")?,
        }),
        TAG_STATS_REQUEST => Frame::StatsRequest,
        TAG_SERVER_STATS => Frame::ServerStats(ServerStats {
            queries_served: d.u64("server queries served")?,
            skeleton_hits: d.u64("server skeleton hits")?,
            skeleton_misses: d.u64("server skeleton misses")?,
            plan_executions: d.u64("server plan executions")?,
            tasks_dispatched: d.u64("server tasks dispatched")?,
            busy_rejections: d.u64("server busy rejections")?,
            connections: d.u64("server connections")?,
            inflight: d.u64("server inflight")?,
            query_timeouts: d.u64("server query timeouts")?,
        }),
        other => return Err(WireError::Corrupt(format!("unknown frame tag {other}"))),
    };
    d.finish("frame")?;
    Ok(frame)
}

// ===== Plan / expression / VG codecs =====

fn op_to_u8(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Add => 1,
        BinaryOp::Sub => 2,
        BinaryOp::Mul => 3,
        BinaryOp::Div => 4,
        BinaryOp::Eq => 5,
        BinaryOp::NotEq => 6,
        BinaryOp::Lt => 7,
        BinaryOp::LtEq => 8,
        BinaryOp::Gt => 9,
        BinaryOp::GtEq => 10,
        BinaryOp::And => 11,
        BinaryOp::Or => 12,
    }
}

fn op_from_u8(raw: u8) -> WireResult<BinaryOp> {
    Ok(match raw {
        1 => BinaryOp::Add,
        2 => BinaryOp::Sub,
        3 => BinaryOp::Mul,
        4 => BinaryOp::Div,
        5 => BinaryOp::Eq,
        6 => BinaryOp::NotEq,
        7 => BinaryOp::Lt,
        8 => BinaryOp::LtEq,
        9 => BinaryOp::Gt,
        10 => BinaryOp::GtEq,
        11 => BinaryOp::And,
        12 => BinaryOp::Or,
        other => return Err(WireError::Corrupt(format!("unknown binary op {other}"))),
    })
}

fn put_expr(out: &mut Vec<u8>, expr: &Expr) {
    match expr {
        Expr::Column(name) => {
            out.push(1);
            put_str(out, name);
        }
        Expr::Literal(v) => {
            out.push(2);
            v.encode_wire(out);
        }
        Expr::Binary { op, lhs, rhs } => {
            out.push(3);
            out.push(op_to_u8(*op));
            put_expr(out, lhs);
            put_expr(out, rhs);
        }
        Expr::Not(inner) => {
            out.push(4);
            put_expr(out, inner);
        }
    }
}

fn get_expr(d: &mut Dec<'_>) -> WireResult<Expr> {
    Ok(match d.u8("expression tag")? {
        1 => Expr::Column(d.str("column name")?),
        2 => Expr::Literal(d.value("literal")?),
        3 => {
            let op = op_from_u8(d.u8("binary op")?)?;
            let lhs = get_expr(d)?;
            let rhs = get_expr(d)?;
            Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }
        }
        4 => Expr::Not(Box::new(get_expr(d)?)),
        other => {
            return Err(WireError::Corrupt(format!(
                "unknown expression tag {other}"
            )))
        }
    })
}

/// Serialize a VG function by its construction-time configuration.  Only
/// the built-in set is enumerable; anything else is
/// [`WireError::Unserializable`].
fn put_vg(out: &mut Vec<u8>, vg: &dyn VgFunction) -> WireResult<()> {
    let any = vg
        .as_any()
        .ok_or_else(|| WireError::Unserializable(format!("VG function {}", vg.name())))?;
    if any.downcast_ref::<NormalVg>().is_some() {
        out.push(1);
    } else if any.downcast_ref::<UniformVg>().is_some() {
        out.push(2);
    } else if any.downcast_ref::<PoissonVg>().is_some() {
        out.push(3);
    } else if let Some(discrete) = any.downcast_ref::<DiscreteVg>() {
        out.push(4);
        out.extend_from_slice(&(discrete.categories().len() as u32).to_le_bytes());
        for category in discrete.categories() {
            category.encode_wire(out);
        }
    } else if let Some(multi) = any.downcast_ref::<MultiNormalVg>() {
        out.push(5);
        out.extend_from_slice(&(multi.dim() as u64).to_le_bytes());
        out.extend_from_slice(&multi.rho().to_bits().to_le_bytes());
    } else if any.downcast_ref::<BayesianDemandVg>().is_some() {
        out.push(6);
    } else if let Some(gbm) = any.downcast_ref::<GbmTerminalVg>() {
        out.push(7);
        out.extend_from_slice(&(gbm.steps() as u64).to_le_bytes());
    } else {
        return Err(WireError::Unserializable(format!(
            "VG function {}",
            vg.name()
        )));
    }
    Ok(())
}

fn get_vg(d: &mut Dec<'_>) -> WireResult<Arc<dyn VgFunction>> {
    Ok(match d.u8("VG tag")? {
        1 => Arc::new(NormalVg),
        2 => Arc::new(UniformVg),
        3 => Arc::new(PoissonVg),
        4 => {
            let len = d.u32("Discrete category count")? as usize;
            let mut categories = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                categories.push(d.value("Discrete category")?);
            }
            Arc::new(DiscreteVg::new(categories))
        }
        5 => {
            let dim = d.u64("MultiNormal dim")? as usize;
            let rho = d.f64("MultiNormal rho")?;
            if dim < 1 || !(0.0..=1.0).contains(&rho) {
                return Err(WireError::Corrupt(format!(
                    "MultiNormal configuration out of range (dim={dim}, rho={rho})"
                )));
            }
            Arc::new(MultiNormalVg::new(dim, rho))
        }
        6 => Arc::new(BayesianDemandVg),
        7 => {
            let steps = d.u64("GbmTerminal steps")? as usize;
            if steps < 1 {
                return Err(WireError::Corrupt("GbmTerminal needs >= 1 step".into()));
            }
            Arc::new(GbmTerminalVg::new(steps))
        }
        other => return Err(WireError::Corrupt(format!("unknown VG tag {other}"))),
    })
}

fn put_plan(out: &mut Vec<u8>, plan: &PlanNode) -> WireResult<()> {
    match plan {
        PlanNode::TableScan { table } => {
            out.push(1);
            put_str(out, table);
        }
        PlanNode::RandomTable(spec) => {
            out.push(2);
            put_str(out, &spec.name);
            put_str(out, &spec.param_table);
            put_vg(out, spec.vg.as_ref())?;
            out.extend_from_slice(&(spec.vg_params.len() as u32).to_le_bytes());
            for expr in &spec.vg_params {
                put_expr(out, expr);
            }
            out.extend_from_slice(&(spec.columns.len() as u32).to_le_bytes());
            for column in &spec.columns {
                match column {
                    OutputColumn::Param { source, as_name } => {
                        out.push(1);
                        put_str(out, source);
                        put_str(out, as_name);
                    }
                    OutputColumn::Vg { vg_col, as_name } => {
                        out.push(2);
                        out.extend_from_slice(&(*vg_col as u32).to_le_bytes());
                        put_str(out, as_name);
                    }
                }
            }
            out.extend_from_slice(&spec.table_tag.to_le_bytes());
        }
        PlanNode::Filter { input, predicate } => {
            out.push(3);
            put_expr(out, predicate);
            put_plan(out, input)?;
        }
        PlanNode::Project { input, exprs } => {
            out.push(4);
            out.extend_from_slice(&(exprs.len() as u32).to_le_bytes());
            for (name, expr) in exprs {
                put_str(out, name);
                put_expr(out, expr);
            }
            put_plan(out, input)?;
        }
        PlanNode::Join {
            left,
            right,
            on,
            join_type,
        } => {
            out.push(5);
            out.push(match join_type {
                JoinType::Inner => 1,
            });
            out.extend_from_slice(&(on.len() as u32).to_le_bytes());
            for (l, r) in on {
                put_str(out, l);
                put_str(out, r);
            }
            put_plan(out, left)?;
            put_plan(out, right)?;
        }
        PlanNode::Split { input, column } => {
            out.push(6);
            put_str(out, column);
            put_plan(out, input)?;
        }
    }
    Ok(())
}

fn get_plan(d: &mut Dec<'_>) -> WireResult<PlanNode> {
    Ok(match d.u8("plan tag")? {
        1 => PlanNode::TableScan {
            table: d.str("scan table")?,
        },
        2 => {
            let name = d.str("random-table name")?;
            let param_table = d.str("parameter table")?;
            let vg = get_vg(d)?;
            let num_params = d.u32("VG parameter count")? as usize;
            let mut vg_params = Vec::with_capacity(num_params.min(4096));
            for _ in 0..num_params {
                vg_params.push(get_expr(d)?);
            }
            let num_columns = d.u32("output column count")? as usize;
            let mut columns = Vec::with_capacity(num_columns.min(4096));
            for _ in 0..num_columns {
                columns.push(match d.u8("output column tag")? {
                    1 => OutputColumn::Param {
                        source: d.str("param source")?,
                        as_name: d.str("param alias")?,
                    },
                    2 => OutputColumn::Vg {
                        vg_col: d.u32("vg column index")? as usize,
                        as_name: d.str("vg alias")?,
                    },
                    other => {
                        return Err(WireError::Corrupt(format!(
                            "unknown output column tag {other}"
                        )))
                    }
                });
            }
            PlanNode::RandomTable(RandomTableSpec {
                name,
                param_table,
                vg,
                vg_params,
                columns,
                table_tag: d.u64("table tag")?,
            })
        }
        3 => {
            let predicate = get_expr(d)?;
            let input = get_plan(d)?;
            PlanNode::Filter {
                input: Box::new(input),
                predicate,
            }
        }
        4 => {
            let num_exprs = d.u32("projection count")? as usize;
            let mut exprs = Vec::with_capacity(num_exprs.min(4096));
            for _ in 0..num_exprs {
                let name = d.str("projection name")?;
                exprs.push((name, get_expr(d)?));
            }
            PlanNode::Project {
                input: Box::new(get_plan(d)?),
                exprs,
            }
        }
        5 => {
            let join_type = match d.u8("join type")? {
                1 => JoinType::Inner,
                other => return Err(WireError::Corrupt(format!("unknown join type {other}"))),
            };
            let num_on = d.u32("join key count")? as usize;
            let mut on = Vec::with_capacity(num_on.min(4096));
            for _ in 0..num_on {
                let l = d.str("left join key")?;
                let r = d.str("right join key")?;
                on.push((l, r));
            }
            let left = get_plan(d)?;
            let right = get_plan(d)?;
            PlanNode::Join {
                left: Box::new(left),
                right: Box::new(right),
                on,
                join_type,
            }
        }
        6 => {
            let column = d.str("split column")?;
            PlanNode::Split {
                input: Box::new(get_plan(d)?),
                column,
            }
        }
        other => return Err(WireError::Corrupt(format!("unknown plan tag {other}"))),
    })
}

/// The table names a plan reads (scans + VG parameter tables) — the
/// catalog snapshot a worker needs.
fn collect_tables(plan: &PlanNode, out: &mut std::collections::BTreeSet<String>) {
    match plan {
        PlanNode::TableScan { table } => {
            out.insert(table.clone());
        }
        PlanNode::RandomTable(spec) => {
            out.insert(spec.param_table.clone());
        }
        PlanNode::Filter { input, .. }
        | PlanNode::Project { input, .. }
        | PlanNode::Split { input, .. } => collect_tables(input, out),
        PlanNode::Join { left, right, .. } => {
            collect_tables(left, out);
            collect_tables(right, out);
        }
    }
}

fn dtype_to_u8(dt: DataType) -> u8 {
    match dt {
        DataType::Null => 0,
        DataType::Int64 => 1,
        DataType::Float64 => 2,
        DataType::Bool => 3,
        DataType::Utf8 => 4,
    }
}

fn dtype_from_u8(raw: u8) -> WireResult<DataType> {
    Ok(match raw {
        0 => DataType::Null,
        1 => DataType::Int64,
        2 => DataType::Float64,
        3 => DataType::Bool,
        4 => DataType::Utf8,
        other => return Err(WireError::Corrupt(format!("unknown data type {other}"))),
    })
}

fn put_table(out: &mut Vec<u8>, table: &Table) -> WireResult<()> {
    let schema = table.schema();
    out.extend_from_slice(&(schema.len() as u32).to_le_bytes());
    for field in schema.fields() {
        put_str(out, &field.name);
        out.push(dtype_to_u8(field.data_type));
    }
    // Sealed pages ship verbatim — no re-encode, and the receiving side's
    // recomputed page hashes (and therefore the table's content hash)
    // match the sender's exactly.  Disk-backed pages load their bytes
    // back through the checksummed heap record, so a torn spill file
    // fails here (typed) rather than shipping garbage.
    out.extend_from_slice(&(table.pages().len() as u32).to_le_bytes());
    for page in table.pages() {
        let bytes = page
            .load_bytes()
            .map_err(|e| WireError::Io(std::io::ErrorKind::Other, format!("table page: {e}")))?;
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    // The open tail travels column-major through the typed Column codec,
    // like a page payload without the page framing.
    out.extend_from_slice(&(table.tail_rows().len() as u64).to_le_bytes());
    for col_idx in 0..schema.len() {
        let mut column = Column::default();
        for row in table.tail_rows() {
            column.push_value(row.value(col_idx));
        }
        column.encode_wire(out);
    }
    Ok(())
}

fn get_table(d: &mut Dec<'_>) -> WireResult<Table> {
    let num_fields = d.u32("field count")? as usize;
    let mut fields = Vec::with_capacity(num_fields.min(4096));
    for _ in 0..num_fields {
        let name = d.str("field name")?;
        let dt = dtype_from_u8(d.u8("field type")?)?;
        fields.push(Field::new(name, dt));
    }
    let schema = Schema::new(fields);
    let num_pages = d.u32("page count")? as usize;
    let mut pages = Vec::with_capacity(num_pages.min(4096));
    for _ in 0..num_pages {
        let len = d.u32("page length")? as usize;
        let bytes = d.take(len, "page bytes")?.to_vec();
        // from_bytes fully validates the page encoding (header, slot
        // directory, every column payload).
        let page =
            Page::from_bytes(bytes).map_err(|e| WireError::Corrupt(format!("table page: {e}")))?;
        pages.push(page);
    }
    let num_rows = d.u64("tail row count")? as usize;
    // The row count is untrusted until a column vouches for it (each
    // decoded column is checked against it below).  A field-less table has
    // no columns to vouch, so bound it directly — otherwise a corrupt
    // header could demand billions of empty tuples.
    if schema.is_empty() && num_rows != 0 {
        return Err(WireError::Corrupt(format!(
            "table snapshot claims {num_rows} tail rows across zero fields"
        )));
    }
    let mut columns = Vec::with_capacity(schema.len());
    for _ in 0..schema.len() {
        let column = Column::decode_wire(d.buf, &mut d.pos)
            .map_err(|e| WireError::Corrupt(format!("table tail column: {e}")))?;
        if column.len() != num_rows {
            return Err(WireError::Corrupt(format!(
                "table tail column holds {} rows, header says {num_rows}",
                column.len()
            )));
        }
        columns.push(column);
    }
    let tail: Vec<Tuple> = (0..num_rows)
        .map(|r| Tuple::new(columns.iter().map(|c| c.value_at(r)).collect()))
        .collect();
    Table::from_parts(schema, pages, tail)
        .map_err(|e| WireError::Corrupt(format!("table snapshot: {e}")))
}
