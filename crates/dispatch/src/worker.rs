//! The worker side of the dispatch protocol: a request/response loop over
//! a pair of byte streams (stdin/stdout for the `mcdbr-worker` binary;
//! in-memory pipes in tests).
//!
//! A worker is deliberately *stateful but rebuildable*: it remembers every
//! `Plan` frame it has been sent — the rebuilt [`PlanNode`] plus a local
//! [`Catalog`] reconstructed from the snapshot — keyed by the
//! coordinator's [`PlanKey`], and runs every `Task` through its own
//! [`SessionCache`].  The first task for a plan pays the deterministic
//! skeleton pass (the *cold* path); every later task for the same key hits
//! the cache, skips phase 1 entirely, and reports `warm_hit = true` in its
//! [`TaskStats`] frame — the same plan-keyed reuse the coordinator enjoys
//! in-process.  A respawned worker simply starts cold again; the
//! coordinator re-sends the plan.
//!
//! Task-level failures (unknown key, execution errors) come back as
//! `Error` frames and leave the loop alive; protocol-level failures
//! (handshake mismatch, corrupt frames) terminate the worker, which the
//! coordinator treats like a crash: respawn and re-dispatch.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::Arc;

use mcdbr_exec::{BlockBufferPool, PlanNode, SessionCache, ShardTask};
use mcdbr_storage::Catalog;

use crate::wire::{
    self, Frame, PlanKey, TaskHeader, TaskStats, WireError, WireResult, WIRE_MAGIC, WIRE_VERSION,
};

/// One plan the worker knows how to execute: the rebuilt plan tree and the
/// catalog reconstructed from the coordinator's snapshot.  The catalog is
/// built once per `Plan` frame, so its (worker-local) epoch is stable and
/// the worker's session cache can key on it.
struct KnownPlan {
    plan: PlanNode,
    catalog: Catalog,
}

/// How many plans (and their catalog snapshots) a worker retains.  The
/// coordinator caps its prepared-plan list the same way; a worker asked
/// about an evicted key answers with the
/// [`wire::UNKNOWN_PLAN_MESSAGE_PREFIX`] error and the coordinator simply
/// re-sends the plan — bounded memory on both sides, no lost work.
const MAX_KNOWN_PLANS: usize = 64;

/// The worker's bounded plan store: FIFO eviction past
/// [`MAX_KNOWN_PLANS`]; a failed snapshot rebuild is remembered as the
/// failure message so the *task* (which expects a response) reports it —
/// a `Plan` frame itself never gets a response, so answering one with an
/// `Error` frame would desync the coordinator's request/response stream.
#[derive(Default)]
struct PlanStore {
    plans: HashMap<PlanKey, Result<KnownPlan, String>>,
    order: std::collections::VecDeque<PlanKey>,
}

impl PlanStore {
    fn insert(&mut self, key: PlanKey, entry: Result<KnownPlan, String>) {
        if self.plans.insert(key, entry).is_none() {
            self.order.push_back(key);
        }
        while self.plans.len() > MAX_KNOWN_PLANS {
            if let Some(oldest) = self.order.pop_front() {
                self.plans.remove(&oldest);
            } else {
                break;
            }
        }
    }
}

/// The worker loop: handshake, then serve `Plan`/`Task` frames until a
/// `Shutdown` frame or a clean EOF on `input`.
///
/// Generic over the streams so tests can drive a worker over in-memory
/// pipes; the `mcdbr-worker` binary passes its locked stdin/stdout.
pub fn run_worker<R: Read, W: Write>(input: &mut R, output: &mut W) -> WireResult<()> {
    // ===== Handshake: the coordinator speaks first; reject anything that
    // is not our magic + version before any plan bytes flow.
    let (payload, _) =
        wire::read_frame(input)?.ok_or(WireError::Truncated { what: "handshake" })?;
    match wire::decode_frame(&payload)? {
        Frame::Hello { magic, version } => {
            if magic != WIRE_MAGIC {
                let err = WireError::BadMagic(magic);
                wire::write_frame(output, &wire::encode_error(&err.to_string()))?;
                output.flush()?;
                return Err(err);
            }
            if version != WIRE_VERSION {
                let err = WireError::VersionMismatch {
                    ours: WIRE_VERSION,
                    theirs: version,
                };
                wire::write_frame(output, &wire::encode_error(&err.to_string()))?;
                output.flush()?;
                return Err(err);
            }
        }
        _ => {
            let err = WireError::Corrupt("expected Hello as the first frame".into());
            wire::write_frame(output, &wire::encode_error(&err.to_string()))?;
            output.flush()?;
            return Err(err);
        }
    }
    wire::write_frame(output, &wire::encode_hello())?;
    output.flush()?;

    let mut plans = PlanStore::default();
    let cache = SessionCache::new();
    let pool = BlockBufferPool::new();

    loop {
        let Some((payload, _)) = wire::read_frame(input)? else {
            // Coordinator closed our stdin: clean exit.
            return Ok(());
        };
        match wire::decode_frame(&payload)? {
            Frame::Plan { key, plan, tables } => {
                // No response frame — `Plan` is fire-and-forget; a rebuild
                // failure is remembered and reported by the next task.
                let mut catalog = Catalog::new();
                let mut failure = None;
                for (name, table) in tables {
                    if let Err(e) = catalog.register(name, table) {
                        failure = Some(format!("rebuilding catalog snapshot: {e}"));
                        break;
                    }
                }
                plans.insert(
                    key,
                    match failure {
                        Some(message) => Err(message),
                        None => Ok(KnownPlan { plan, catalog }),
                    },
                );
            }
            Frame::Task(task) => {
                match serve_task(&plans, &cache, &pool, &task) {
                    Ok((bundles, stats)) => {
                        for (idx, bundle) in &bundles {
                            wire::write_frame(output, &wire::encode_bundle(*idx, bundle.as_ref()))?;
                        }
                        wire::write_frame(output, &wire::encode_task_stats(stats))?;
                    }
                    Err(message) => {
                        wire::write_frame(output, &wire::encode_error(&message))?;
                    }
                }
                output.flush()?;
            }
            Frame::Shutdown => return Ok(()),
            Frame::Hello { .. } => {
                return Err(WireError::Corrupt("unexpected mid-stream Hello".into()))
            }
            Frame::Bundle { .. } | Frame::TaskStats(_) => {
                return Err(WireError::Corrupt(
                    "received a response frame on the request stream".into(),
                ))
            }
            Frame::Error { message } => return Err(WireError::Remote(message)),
            // Server-protocol frames never travel on a worker's stdin.
            _ => {
                return Err(WireError::Corrupt(
                    "received a server-protocol frame on the worker stream".into(),
                ))
            }
        }
    }
}

/// Execute one task against the worker's known plans; errors are returned
/// as strings for the `Error` frame (the loop stays alive).
#[allow(clippy::type_complexity)]
fn serve_task(
    plans: &PlanStore,
    cache: &SessionCache,
    pool: &BlockBufferPool,
    task: &TaskHeader,
) -> Result<(Vec<(usize, Option<mcdbr_exec::TupleBundle>)>, TaskStats), String> {
    let known = plans
        .plans
        .get(&task.key)
        .ok_or_else(|| {
            format!(
                "{} (fingerprint {:#018x}, epoch {}); send a Plan frame first",
                wire::UNKNOWN_PLAN_MESSAGE_PREFIX,
                task.key.fingerprint,
                task.key.epoch
            )
        })?
        .as_ref()
        .map_err(|message| message.clone())?;
    // The worker's own plan-keyed session cache: the first task for a key
    // builds the skeleton (cold), every later one skips phase 1 (warm).
    let session = cache
        .session(&known.plan, &known.catalog, task.master_seed)
        .map_err(|e| format!("phase 1 failed: {e}"))?;
    let warm_hit = session.skeleton_hit();
    let prefix = session.prefix().ok_or_else(|| {
        format!(
            "plan is not prefix-cacheable ({}); such plans execute locally and are never \
             dispatched",
            session.fallback_reason().unwrap_or("unknown reason")
        )
    })?;
    let shard = ShardTask {
        skeleton: Arc::clone(prefix.skeleton()),
        master_seed: task.master_seed,
        key_range: task.key_range,
        base_pos: task.base_pos,
        num_values: task.num_values,
    };
    let output = shard
        .run(pool)
        .map_err(|e| format!("shard task failed: {e}"))?;
    let stats = TaskStats {
        bundles: output.bundles.len(),
        foreign_streams: output.foreign_streams,
        warm_hit,
    };
    Ok((output.bundles, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_exec::plan::scalar_random_table;
    use mcdbr_exec::Expr;
    use mcdbr_storage::{Field, Schema, TableBuilder, Value};
    use mcdbr_vg::NormalVg;

    fn catalog() -> Catalog {
        let means = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
            .row([Value::Int64(1), Value::Float64(3.0)])
            .row([Value::Int64(2), Value::Float64(4.0)])
            .build()
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.register("means", means).unwrap();
        catalog
    }

    fn plan() -> PlanNode {
        PlanNode::random_table(scalar_random_table(
            "Losses",
            "means",
            Arc::new(NormalVg),
            vec![Expr::col("m"), Expr::lit(1.0)],
            &["cid"],
            "val",
            1,
        ))
    }

    /// Drive a full conversation against `run_worker` over in-memory pipes
    /// and return the response frames.
    fn converse(request_frames: Vec<Vec<u8>>) -> (WireResult<()>, Vec<Frame>) {
        let mut input = Vec::new();
        for frame in request_frames {
            wire::write_frame(&mut input, &frame).unwrap();
        }
        let mut reader = std::io::Cursor::new(input);
        let mut output = Vec::new();
        let result = run_worker(&mut reader, &mut output);
        let mut frames = Vec::new();
        let mut cursor = std::io::Cursor::new(output);
        while let Some((payload, _)) = wire::read_frame(&mut cursor).unwrap() {
            frames.push(wire::decode_frame(&payload).unwrap());
        }
        (result, frames)
    }

    #[test]
    fn cold_then_warm_tasks_round_trip_with_phase_one_skipped_once() {
        let catalog = catalog();
        let plan = plan();
        let key = PlanKey {
            fingerprint: plan.fingerprint(),
            epoch: catalog.epoch(),
        };
        let task = |base_pos| {
            wire::encode_task(&TaskHeader {
                key,
                master_seed: 42,
                key_range: mcdbr_prng::StreamKeyRange::all(),
                base_pos,
                num_values: 8,
            })
        };
        let (result, frames) = converse(vec![
            wire::encode_hello(),
            wire::encode_plan(key, &plan, &catalog).unwrap(),
            task(0),
            task(8),
            wire::encode_shutdown(),
        ]);
        result.unwrap();
        assert!(matches!(frames[0], Frame::Hello { .. }));
        // Two tasks × (2 bundles + 1 stats frame).
        let stats: Vec<&TaskStats> = frames
            .iter()
            .filter_map(|f| match f {
                Frame::TaskStats(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].bundles, 2);
        assert!(!stats[0].warm_hit, "first task is cold");
        assert!(stats[1].warm_hit, "second task must hit the worker cache");
        let bundles = frames
            .iter()
            .filter(|f| matches!(f, Frame::Bundle { .. }))
            .count();
        assert_eq!(bundles, 4);
    }

    #[test]
    fn version_mismatch_is_rejected_at_handshake() {
        let (result, frames) =
            converse(vec![wire::encode_hello_with(WIRE_MAGIC, WIRE_VERSION + 1)]);
        assert_eq!(
            result,
            Err(WireError::VersionMismatch {
                ours: WIRE_VERSION,
                theirs: WIRE_VERSION + 1,
            })
        );
        assert!(
            matches!(&frames[0], Frame::Error { message } if message.contains("version mismatch")),
            "worker must answer with an Error frame before exiting"
        );

        let (result, frames) = converse(vec![wire::encode_hello_with(0xBAD, WIRE_VERSION)]);
        assert_eq!(result, Err(WireError::BadMagic(0xBAD)));
        assert!(matches!(&frames[0], Frame::Error { .. }));
    }

    #[test]
    fn unknown_task_keys_answer_with_an_error_frame_and_keep_serving() {
        let catalog = catalog();
        let plan = plan();
        let key = PlanKey {
            fingerprint: plan.fingerprint(),
            epoch: catalog.epoch(),
        };
        let bogus = PlanKey {
            fingerprint: 0xDEAD,
            epoch: 0,
        };
        let mk_task = |key| {
            wire::encode_task(&TaskHeader {
                key,
                master_seed: 7,
                key_range: mcdbr_prng::StreamKeyRange::all(),
                base_pos: 0,
                num_values: 4,
            })
        };
        let (result, frames) = converse(vec![
            wire::encode_hello(),
            mk_task(bogus),
            wire::encode_plan(key, &plan, &catalog).unwrap(),
            mk_task(key),
        ]);
        // EOF after the last task is a clean exit.
        result.unwrap();
        assert!(
            matches!(&frames[1], Frame::Error { message } if message.contains("unknown plan key"))
        );
        assert!(frames
            .iter()
            .any(|f| matches!(f, Frame::TaskStats(s) if s.bundles == 2)));
    }
}
