//! The worker side of the dispatch protocol: a request/response loop over
//! a pair of byte streams (stdin/stdout for the `mcdbr-worker` binary;
//! in-memory pipes in tests).
//!
//! A worker is deliberately *stateful but rebuildable*: it remembers every
//! `Plan` frame it has been sent — the rebuilt [`PlanNode`] plus the
//! [`wire::TableRef`]s naming its tables — keyed by the coordinator's
//! [`PlanKey`], and runs every `Task` through its own [`SessionCache`].
//! Table *data* lives separately in a hash-keyed `TableStore`: a `Plan`
//! frame is answered with a `NeedTables` frame listing the content hashes
//! the store lacks, the coordinator ships exactly those as `TableData`
//! frames, and the plan's local [`Catalog`] is assembled lazily at its
//! first task.  A repeated plan over tables the worker already holds
//! exchanges only headers — content-addressing collapses the
//! workers × tables shipping cost to one transfer per distinct table
//! version.
//!
//! The first task for a plan pays the deterministic skeleton pass (the
//! *cold* path); every later task for the same key hits the cache, skips
//! phase 1 entirely, and reports `warm_hit = true` in its [`TaskStats`]
//! frame — the same plan-keyed reuse the coordinator enjoys in-process.  A
//! respawned worker simply starts cold again; the coordinator re-sends the
//! plan.
//!
//! Task-level failures (unknown key, missing table data, execution errors)
//! come back as `Error` frames and leave the loop alive; protocol-level
//! failures (handshake mismatch, corrupt frames) terminate the worker,
//! which the coordinator treats like a crash: respawn and re-dispatch.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::Arc;

use mcdbr_exec::{BlockBufferPool, PlanNode, SessionCache, ShardTask};
use mcdbr_storage::{Catalog, Table};

use crate::wire::{
    self, Frame, PlanKey, TableRef, TaskHeader, TaskStats, WireError, WireResult, WIRE_MAGIC,
    WIRE_VERSION,
};

/// One plan the worker knows how to execute: the rebuilt plan tree, the
/// content refs of the tables it reads, and — once the first task arrives
/// and the refs resolve against the [`TableStore`] — the assembled local
/// catalog.  The catalog is built once per plan, so its (worker-local)
/// epoch is stable and the worker's session cache can key on it; the
/// catalog's table clones are page-`Arc` bumps, so a later store eviction
/// cannot invalidate an assembled plan.
struct KnownPlan {
    plan: PlanNode,
    table_refs: Vec<TableRef>,
    catalog: Option<Catalog>,
}

/// How many distinct table versions a worker caches by content hash.
/// FIFO eviction; an evicted table that a later plan still needs comes
/// back from the disk tier (if the pager is on) or rides the `NeedTables`
/// ladder again.
const MAX_STORED_TABLES: usize = 256;

/// The worker's content-addressed table cache: a bounded in-memory tier
/// (hash → table, FIFO past [`MAX_STORED_TABLES`] entries or past the
/// `MCDBR_TABLE_STORE_BYTES` byte budget) over an optional persistent disk
/// tier under the pager's `store/` directory.
///
/// The disk tier is write-through: every validated `TableData` frame is
/// persisted as one checksummed heap record (`store/<hash:016x>.heap`,
/// temp-file + rename, so a crash mid-write never publishes a torn file)
/// before it can be evicted, and a miss at `Plan` time re-reads and
/// re-validates the blob — both its heap-record checksum and the decoded
/// table's content hash — before vouching for it.  A respawned worker
/// therefore answers `NeedTables` for a previously shipped table with an
/// empty list: the store outlives the process.
#[derive(Default)]
struct TableStore {
    /// The disk tier's pager — [`mcdbr_storage::Pager::global`] in
    /// production (present iff `MCDBR_DATA_DIR` is set); tests inject a
    /// private pager to exercise the tier hermetically.
    pager: Option<&'static mcdbr_storage::Pager>,
    tables: HashMap<u64, Table>,
    order: std::collections::VecDeque<u64>,
    /// Resident footprint of the memory tier (sealed page bytes + an open
    /// tail estimate), maintained alongside `tables`.
    resident_bytes: u64,
    /// Byte budget for the memory tier; `u64::MAX` when unset.
    byte_budget: u64,
    /// Memory-tier evictions since the worker started (monotone; tasks
    /// report deltas).
    evictions: u64,
    /// How many of `evictions` have already traveled in a stats frame.
    reported_evictions: u64,
}

/// The footprint a stored table charges against `MCDBR_TABLE_STORE_BYTES`:
/// its sealed page payloads (resident or spilled — an evicted table frees
/// its page `Arc`s either way) plus a flat per-row charge for the open
/// tail, which ships column-major and has no sealed encoding to measure.
fn table_footprint(table: &Table) -> u64 {
    let pages: usize = table.pages().iter().map(|p| p.byte_len()).sum();
    let tail = table.tail_rows().len() * 64;
    (pages + tail) as u64
}

impl TableStore {
    fn new() -> TableStore {
        let byte_budget = std::env::var("MCDBR_TABLE_STORE_BYTES")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(u64::MAX);
        TableStore {
            pager: mcdbr_storage::Pager::global(),
            byte_budget,
            ..TableStore::default()
        }
    }

    /// Is `hash` available without another `TableData` frame?  Checks the
    /// memory tier, then falls back to re-validating the disk tier —
    /// promoting a good blob into memory, deleting a torn or mismatched
    /// one.  Only a true miss (no copy anywhere) returns `false`.
    fn contains(&mut self, hash: u64) -> bool {
        if self.tables.contains_key(&hash) {
            return true;
        }
        self.promote_from_disk(hash)
    }

    fn get(&self, hash: u64) -> Option<&Table> {
        self.tables.get(&hash)
    }

    /// Try to load `hash` from the persistent tier.  Any failure —
    /// truncated heap file, checksum mismatch, stale encoding, or a
    /// decoded table whose recomputed content hash disagrees with its
    /// file name — deletes the file and reports a miss, so the
    /// coordinator's `TableData` re-send repairs the store.
    fn promote_from_disk(&mut self, hash: u64) -> bool {
        let Some(pager) = self.pager else {
            return false;
        };
        let blob = match pager.load_store_blob(hash) {
            Ok(Some(blob)) => blob,
            Ok(None) => return false,
            Err(_) => {
                pager.remove_store_blob(hash);
                return false;
            }
        };
        match wire::decode_table_bytes(&blob) {
            Ok(table) if table.content_hash() == hash => {
                self.insert_memory(hash, table);
                true
            }
            _ => {
                pager.remove_store_blob(hash);
                false
            }
        }
    }

    /// Accept one validated `TableData` table: write it through to the
    /// disk tier (best-effort — a full disk degrades to memory-only, the
    /// pre-pager behavior), then cache it in the memory tier.
    fn insert(&mut self, hash: u64, table: Table) {
        if let Some(pager) = self.pager {
            if let Ok(blob) = wire::encode_table_bytes(&table) {
                let _ = pager.persist_store_blob(hash, &blob);
            }
        }
        self.insert_memory(hash, table);
    }

    fn insert_memory(&mut self, hash: u64, table: Table) {
        let footprint = table_footprint(&table);
        if self.tables.insert(hash, table).is_none() {
            self.order.push_back(hash);
            self.resident_bytes += footprint;
        }
        // Evict oldest-first past either cap, but never the entry just
        // inserted — a single table larger than the whole byte budget must
        // still be usable (the budget bounds the cache, not table size).
        while self.tables.len() > MAX_STORED_TABLES
            || (self.resident_bytes > self.byte_budget && self.tables.len() > 1)
        {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            if let Some(evicted) = self.tables.remove(&oldest) {
                self.resident_bytes = self
                    .resident_bytes
                    .saturating_sub(table_footprint(&evicted));
                self.evictions += 1;
            }
        }
    }

    /// Evictions not yet reported — the delta each `TaskStats` frame
    /// carries in [`TaskStats::store_evictions`].
    fn take_eviction_delta(&mut self) -> u64 {
        let delta = self.evictions - self.reported_evictions;
        self.reported_evictions = self.evictions;
        delta
    }
}

/// How many plans (and their catalog snapshots) a worker retains.  The
/// coordinator caps its prepared-plan list the same way; a worker asked
/// about an evicted key answers with the
/// [`wire::UNKNOWN_PLAN_MESSAGE_PREFIX`] error and the coordinator simply
/// re-sends the plan — bounded memory on both sides, no lost work.
const MAX_KNOWN_PLANS: usize = 64;

/// The worker's bounded plan store: FIFO eviction past
/// [`MAX_KNOWN_PLANS`].  Catalog assembly failures surface at *task* time
/// (tasks expect a response; a `Plan` frame's only response is its
/// `NeedTables` reply).
#[derive(Default)]
struct PlanStore {
    plans: HashMap<PlanKey, KnownPlan>,
    order: std::collections::VecDeque<PlanKey>,
}

impl PlanStore {
    fn insert(&mut self, key: PlanKey, entry: KnownPlan) {
        if self.plans.insert(key, entry).is_none() {
            self.order.push_back(key);
        }
        while self.plans.len() > MAX_KNOWN_PLANS {
            if let Some(oldest) = self.order.pop_front() {
                self.plans.remove(&oldest);
            } else {
                break;
            }
        }
    }
}

/// The worker loop: handshake, then serve `Plan`/`Task` frames until a
/// `Shutdown` frame or a clean EOF on `input`.
///
/// Generic over the streams so tests can drive a worker over in-memory
/// pipes; the `mcdbr-worker` binary passes its locked stdin/stdout.
pub fn run_worker<R: Read, W: Write>(input: &mut R, output: &mut W) -> WireResult<()> {
    run_worker_with_faults(input, output, None)
}

/// [`run_worker`] behind a fault injector (the `mcdbr-worker` binary loads
/// one from `MCDBR_FAULTS`).  Faults touch only the *task* path — a
/// slow-worker sleep before serving, a stall before the first reply frame,
/// and drop/partial/delay on the reply writes — never the handshake or the
/// `NeedTables` exchange, so spawning a faulty worker stays deterministic
/// and every injected failure lands where the coordinator's deadline +
/// respawn ladder can see it.
pub fn run_worker_with_faults<R: Read, W: Write>(
    input: &mut R,
    output: &mut W,
    faults: Option<&mcdbr_faults::FaultInjector>,
) -> WireResult<()> {
    // ===== Handshake: the coordinator speaks first; reject anything that
    // is not our magic + version before any plan bytes flow.
    let (payload, _) =
        wire::read_frame(input)?.ok_or(WireError::Truncated { what: "handshake" })?;
    match wire::decode_frame(&payload)? {
        Frame::Hello { magic, version } => {
            if magic != WIRE_MAGIC {
                let err = WireError::BadMagic(magic);
                wire::write_frame(output, &wire::encode_error(&err.to_string()))?;
                output.flush()?;
                return Err(err);
            }
            if version != WIRE_VERSION {
                let err = WireError::VersionMismatch {
                    ours: WIRE_VERSION,
                    theirs: version,
                };
                wire::write_frame(output, &wire::encode_error(&err.to_string()))?;
                output.flush()?;
                return Err(err);
            }
        }
        _ => {
            let err = WireError::Corrupt("expected Hello as the first frame".into());
            wire::write_frame(output, &wire::encode_error(&err.to_string()))?;
            output.flush()?;
            return Err(err);
        }
    }
    wire::write_frame(output, &wire::encode_hello())?;
    output.flush()?;

    let mut plans = PlanStore::default();
    let mut store = TableStore::new();
    let cache = SessionCache::new();
    let pool = BlockBufferPool::new();

    loop {
        let Some((payload, _)) = wire::read_frame(input)? else {
            // Coordinator closed our stdin: clean exit.
            return Ok(());
        };
        match wire::decode_frame(&payload)? {
            Frame::Plan { key, plan, tables } => {
                // Answer with the content hashes the store lacks — in
                // memory or (re-validated) on disk; the coordinator ships
                // exactly those as TableData frames before the first task.
                // A fully warm store answers with an empty list and no
                // table bytes flow at all — including on a respawned
                // worker whose disk tier survived the crash.
                let missing: Vec<u64> = tables
                    .iter()
                    .map(|r| r.hash)
                    .filter(|&h| !store.contains(h))
                    .collect();
                plans.insert(
                    key,
                    KnownPlan {
                        plan,
                        table_refs: tables,
                        catalog: None,
                    },
                );
                wire::write_frame(output, &wire::encode_need_tables(&missing))?;
                output.flush()?;
            }
            Frame::TableData { hash, table } => {
                // No response frame.  The claimed hash is untrusted:
                // recompute it from the decoded table (page bytes traveled
                // verbatim, so an honest sender always matches) and drop
                // silently on mismatch — the task that needed the table
                // reports it missing and the re-send ladder recovers.
                if table.content_hash() == hash {
                    store.insert(hash, table);
                }
            }
            Frame::Task(task) => {
                if let Some(mcdbr_faults::FaultAction::Slow(d)) =
                    faults.and_then(|inj| inj.decide(mcdbr_faults::FaultPoint::SlowWorker))
                {
                    std::thread::sleep(d);
                }
                let reply = serve_task(&mut plans, &mut store, &cache, &pool, &task);
                // The hung-but-alive failure mode: the task ran, the reply
                // just never starts.  The coordinator's read deadline is
                // what turns this into a respawn.
                if let Some(mcdbr_faults::FaultAction::Stall(d)) =
                    faults.and_then(|inj| inj.decide(mcdbr_faults::FaultPoint::StallBeforeReply))
                {
                    std::thread::sleep(d);
                }
                match reply {
                    Ok((bundles, stats)) => {
                        for (idx, bundle) in &bundles {
                            wire::write_frame_faulty(
                                output,
                                &wire::encode_bundle(*idx, bundle.as_ref()),
                                faults,
                            )?;
                        }
                        wire::write_frame_faulty(output, &wire::encode_task_stats(stats), faults)?;
                    }
                    Err(message) => {
                        wire::write_frame_faulty(output, &wire::encode_error(&message), faults)?;
                    }
                }
                output.flush()?;
            }
            Frame::Shutdown => return Ok(()),
            Frame::Hello { .. } => {
                return Err(WireError::Corrupt("unexpected mid-stream Hello".into()))
            }
            Frame::Bundle { .. } | Frame::TaskStats(_) | Frame::NeedTables { .. } => {
                return Err(WireError::Corrupt(
                    "received a response frame on the request stream".into(),
                ))
            }
            Frame::Error { message } => return Err(WireError::Remote(message)),
            // Server-protocol frames never travel on a worker's stdin.
            _ => {
                return Err(WireError::Corrupt(
                    "received a server-protocol frame on the worker stream".into(),
                ))
            }
        }
    }
}

/// Execute one task against the worker's known plans; errors are returned
/// as strings for the `Error` frame (the loop stays alive).
///
/// A plan whose table refs cannot all resolve against the store (data
/// evicted, or a `TableData` frame was dropped for a hash mismatch)
/// reports the [`wire::UNKNOWN_PLAN_MESSAGE_PREFIX`] error: the
/// coordinator re-sends the plan, the `NeedTables` ladder re-ships the
/// missing tables, and the task retries — bounded memory, no lost work.
#[allow(clippy::type_complexity)]
fn serve_task(
    plans: &mut PlanStore,
    store: &mut TableStore,
    cache: &SessionCache,
    pool: &BlockBufferPool,
    task: &TaskHeader,
) -> Result<(Vec<(usize, Option<mcdbr_exec::TupleBundle>)>, TaskStats), String> {
    let known = plans.plans.get_mut(&task.key).ok_or_else(|| {
        format!(
            "{} (fingerprint {:#018x}, epoch {}); send a Plan frame first",
            wire::UNKNOWN_PLAN_MESSAGE_PREFIX,
            task.key.fingerprint,
            task.key.epoch
        )
    })?;
    if known.catalog.is_none() {
        // First task for this plan: assemble its catalog from the
        // content-addressed store (promoting from the disk tier if the
        // memory tier evicted a ref since the Plan frame).  Table clones
        // are page-Arc bumps, so the assembled catalog is immune to later
        // store eviction.
        let mut catalog = Catalog::new();
        for r in &known.table_refs {
            if !store.contains(r.hash) {
                return Err(format!(
                    "{} (fingerprint {:#018x}, epoch {}): table {:?} (hash {:#018x}) \
                     is not in the content store; send the Plan frame again",
                    wire::UNKNOWN_PLAN_MESSAGE_PREFIX,
                    task.key.fingerprint,
                    task.key.epoch,
                    r.name,
                    r.hash
                ));
            }
            let table = store.get(r.hash).expect("contains() promoted the table");
            catalog
                .register(r.name.clone(), table.clone())
                .map_err(|e| format!("rebuilding catalog snapshot: {e}"))?;
        }
        known.catalog = Some(catalog);
    }
    let catalog = known.catalog.as_ref().expect("assembled above");
    // The worker's own plan-keyed session cache: the first task for a key
    // builds the skeleton (cold), every later one skips phase 1 (warm).
    let session = cache
        .session(&known.plan, catalog, task.master_seed)
        .map_err(|e| format!("phase 1 failed: {e}"))?;
    let warm_hit = session.skeleton_hit();
    let prefix = session.prefix().ok_or_else(|| {
        format!(
            "plan is not prefix-cacheable ({}); such plans execute locally and are never \
             dispatched",
            session.fallback_reason().unwrap_or("unknown reason")
        )
    })?;
    let shard = ShardTask {
        skeleton: Arc::clone(prefix.skeleton()),
        master_seed: task.master_seed,
        key_range: task.key_range,
        base_pos: task.base_pos,
        num_values: task.num_values,
    };
    let output = shard
        .run(pool)
        .map_err(|e| format!("shard task failed: {e}"))?;
    let stats = TaskStats {
        bundles: output.bundles.len(),
        foreign_streams: output.foreign_streams,
        warm_hit,
        store_evictions: store.take_eviction_delta(),
    };
    Ok((output.bundles, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcdbr_exec::plan::scalar_random_table;
    use mcdbr_exec::Expr;
    use mcdbr_storage::{Field, Schema, TableBuilder, Value};
    use mcdbr_vg::NormalVg;

    fn catalog() -> Catalog {
        let means = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
            .row([Value::Int64(1), Value::Float64(3.0)])
            .row([Value::Int64(2), Value::Float64(4.0)])
            .build()
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.register("means", means).unwrap();
        catalog
    }

    fn plan() -> PlanNode {
        PlanNode::random_table(scalar_random_table(
            "Losses",
            "means",
            Arc::new(NormalVg),
            vec![Expr::col("m"), Expr::lit(1.0)],
            &["cid"],
            "val",
            1,
        ))
    }

    /// The cold-path plan exchange as the coordinator scripts it: the Plan
    /// frame followed by every table's TableData frame (a cold worker
    /// needs them all; extras for already-held hashes are harmless).
    fn plan_frames(key: PlanKey, plan: &PlanNode, catalog: &Catalog) -> Vec<Vec<u8>> {
        let mut frames = vec![wire::encode_plan(key, plan, catalog).unwrap()];
        for r in wire::plan_table_refs(plan, catalog).unwrap() {
            frames.push(wire::encode_table_data(r.hash, catalog.get(&r.name).unwrap()).unwrap());
        }
        frames
    }

    /// Drive a full conversation against `run_worker` over in-memory pipes
    /// and return the response frames.
    fn converse(request_frames: Vec<Vec<u8>>) -> (WireResult<()>, Vec<Frame>) {
        let mut input = Vec::new();
        for frame in request_frames {
            wire::write_frame(&mut input, &frame).unwrap();
        }
        let mut reader = std::io::Cursor::new(input);
        let mut output = Vec::new();
        let result = run_worker(&mut reader, &mut output);
        let mut frames = Vec::new();
        let mut cursor = std::io::Cursor::new(output);
        while let Some((payload, _)) = wire::read_frame(&mut cursor).unwrap() {
            frames.push(wire::decode_frame(&payload).unwrap());
        }
        (result, frames)
    }

    #[test]
    fn cold_then_warm_tasks_round_trip_with_phase_one_skipped_once() {
        let catalog = catalog();
        let plan = plan();
        let key = PlanKey {
            fingerprint: plan.fingerprint(),
            epoch: catalog.epoch(),
        };
        let task = |base_pos| {
            wire::encode_task(&TaskHeader {
                key,
                master_seed: 42,
                key_range: mcdbr_prng::StreamKeyRange::all(),
                base_pos,
                num_values: 8,
            })
        };
        let mut input = vec![wire::encode_hello()];
        input.extend(plan_frames(key, &plan, &catalog));
        input.extend([task(0), task(8), wire::encode_shutdown()]);
        let (result, frames) = converse(input);
        result.unwrap();
        assert!(matches!(frames[0], Frame::Hello { .. }));
        assert!(
            matches!(&frames[1], Frame::NeedTables { hashes } if hashes.len() == 1),
            "cold worker must request the plan's one table"
        );
        // Two tasks × (2 bundles + 1 stats frame).
        let stats: Vec<&TaskStats> = frames
            .iter()
            .filter_map(|f| match f {
                Frame::TaskStats(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].bundles, 2);
        assert!(!stats[0].warm_hit, "first task is cold");
        assert!(stats[1].warm_hit, "second task must hit the worker cache");
        let bundles = frames
            .iter()
            .filter(|f| matches!(f, Frame::Bundle { .. }))
            .count();
        assert_eq!(bundles, 4);
    }

    #[test]
    fn version_mismatch_is_rejected_at_handshake() {
        let (result, frames) =
            converse(vec![wire::encode_hello_with(WIRE_MAGIC, WIRE_VERSION + 1)]);
        assert_eq!(
            result,
            Err(WireError::VersionMismatch {
                ours: WIRE_VERSION,
                theirs: WIRE_VERSION + 1,
            })
        );
        assert!(
            matches!(&frames[0], Frame::Error { message } if message.contains("version mismatch")),
            "worker must answer with an Error frame before exiting"
        );

        let (result, frames) = converse(vec![wire::encode_hello_with(0xBAD, WIRE_VERSION)]);
        assert_eq!(result, Err(WireError::BadMagic(0xBAD)));
        assert!(matches!(&frames[0], Frame::Error { .. }));
    }

    #[test]
    fn warm_table_store_answers_empty_need_tables_for_a_second_plan() {
        // Two distinct plans over the same catalog table: after the first
        // cold exchange fills the hash-keyed store, the second Plan frame
        // must come back with an *empty* NeedTables — no table bytes cross
        // the wire again — and its task must still run off the stored copy.
        let catalog = catalog();
        let plan_a = plan();
        let plan_b = plan().filter(Expr::col("val").gt(Expr::lit(0.0)));
        assert_ne!(plan_a.fingerprint(), plan_b.fingerprint());
        let key = |p: &PlanNode| PlanKey {
            fingerprint: p.fingerprint(),
            epoch: catalog.epoch(),
        };
        let mut input = vec![wire::encode_hello()];
        input.extend(plan_frames(key(&plan_a), &plan_a, &catalog));
        // The second plan ships bare: no TableData frames follow.
        input.push(wire::encode_plan(key(&plan_b), &plan_b, &catalog).unwrap());
        input.push(wire::encode_task(&TaskHeader {
            key: key(&plan_b),
            master_seed: 42,
            key_range: mcdbr_prng::StreamKeyRange::all(),
            base_pos: 0,
            num_values: 8,
        }));
        input.push(wire::encode_shutdown());
        let (result, frames) = converse(input);
        result.unwrap();
        if mcdbr_storage::Pager::global().is_none() {
            assert!(
                matches!(&frames[1], Frame::NeedTables { hashes } if hashes.len() == 1),
                "first plan finds a cold store"
            );
        } else {
            // Under `MCDBR_DATA_DIR` the process-global store may already
            // hold this table from an earlier test in this binary; the
            // hermetic disk-tier tests below pin down cold-vs-warm first
            // contact with a private pager.
            assert!(matches!(&frames[1], Frame::NeedTables { .. }));
        }
        assert!(
            matches!(&frames[2], Frame::NeedTables { hashes } if hashes.is_empty()),
            "second plan over the same table must need nothing: {:?}",
            frames[2]
        );
        assert!(!frames.iter().any(|f| matches!(f, Frame::Error { .. })));
        assert!(frames
            .iter()
            .any(|f| matches!(f, Frame::TaskStats(s) if s.bundles == 2)));
    }

    fn sized_table(rows: i64, tag: i64) -> Table {
        let mut b = TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]));
        for i in 0..rows {
            b = b.row([Value::Int64(i * 1000 + tag), Value::Float64(i as f64)]);
        }
        b.build().unwrap()
    }

    #[test]
    fn byte_budget_evicts_oldest_first_and_counts_deltas() {
        let a = sized_table(200, 1);
        let b = sized_table(200, 2);
        let c = sized_table(200, 3);
        let footprint = table_footprint(&a);
        assert!(footprint > 0);
        let mut store = TableStore {
            // Room for two resident tables, not three.
            byte_budget: footprint * 2,
            ..TableStore::default()
        };
        store.insert(a.content_hash(), a.clone());
        store.insert(b.content_hash(), b.clone());
        assert_eq!(store.take_eviction_delta(), 0, "two tables fit");
        store.insert(c.content_hash(), c.clone());
        assert_eq!(store.take_eviction_delta(), 1, "third table evicts one");
        assert_eq!(store.take_eviction_delta(), 0, "deltas reset once taken");
        assert!(!store.contains(a.content_hash()), "FIFO evicts the oldest");
        assert!(store.contains(b.content_hash()));
        assert!(store.contains(c.content_hash()));
        assert_eq!(store.resident_bytes, footprint * 2);
        // A single table over the whole budget still caches (evicting the
        // rest): the budget bounds the cache, not admissible table size.
        let mut tiny = TableStore {
            byte_budget: 1,
            ..TableStore::default()
        };
        tiny.insert(a.content_hash(), a.clone());
        assert!(tiny.contains(a.content_hash()));
        tiny.insert(b.content_hash(), b.clone());
        assert!(tiny.contains(b.content_hash()));
        assert!(!tiny.contains(a.content_hash()));
        assert_eq!(tiny.take_eviction_delta(), 1);
    }

    #[test]
    fn disk_tier_survives_a_fresh_store_and_deletes_corrupt_blobs() {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let root = std::env::temp_dir().join(format!(
            "mcdbr-worker-store-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let pager: &'static mcdbr_storage::Pager =
            Box::leak(Box::new(mcdbr_storage::Pager::new(&root).unwrap()));
        let table = sized_table(50, 7);
        let hash = table.content_hash();

        let mut store = TableStore {
            pager: Some(pager),
            ..TableStore::default()
        };
        store.insert(hash, table.clone());
        assert!(pager.store_path(hash).exists(), "insert writes through");

        // A fresh store over the same root — the respawned-worker case —
        // vouches for the hash without any TableData frame and promotes a
        // bit-identical copy.
        let mut respawned = TableStore {
            pager: Some(pager),
            ..TableStore::default()
        };
        assert!(respawned.contains(hash), "disk tier answers after restart");
        let promoted = respawned.get(hash).unwrap();
        assert_eq!(promoted.content_hash(), hash);
        assert_eq!(
            promoted.iter().collect::<Vec<_>>(),
            table.iter().collect::<Vec<_>>()
        );

        // Truncate the blob mid-record (a torn write): the next fresh
        // store must detect it by checksum, delete the file, and report a
        // miss so the coordinator re-ships the table.
        let path = pager.store_path(hash);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - (full.len() / 3)]).unwrap();
        let mut torn = TableStore {
            pager: Some(pager),
            ..TableStore::default()
        };
        assert!(!torn.contains(hash), "torn blob must read as missing");
        assert!(!path.exists(), "torn blob must be deleted");
        // Re-inserting repairs the tier.
        torn.insert(hash, table);
        assert!(path.exists());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn unknown_task_keys_answer_with_an_error_frame_and_keep_serving() {
        let catalog = catalog();
        let plan = plan();
        let key = PlanKey {
            fingerprint: plan.fingerprint(),
            epoch: catalog.epoch(),
        };
        let bogus = PlanKey {
            fingerprint: 0xDEAD,
            epoch: 0,
        };
        let mk_task = |key| {
            wire::encode_task(&TaskHeader {
                key,
                master_seed: 7,
                key_range: mcdbr_prng::StreamKeyRange::all(),
                base_pos: 0,
                num_values: 4,
            })
        };
        let mut input = vec![wire::encode_hello(), mk_task(bogus)];
        input.extend(plan_frames(key, &plan, &catalog));
        input.push(mk_task(key));
        let (result, frames) = converse(input);
        // EOF after the last task is a clean exit.
        result.unwrap();
        assert!(
            matches!(&frames[1], Frame::Error { message } if message.contains("unknown plan key"))
        );
        assert!(frames
            .iter()
            .any(|f| matches!(f, Frame::TaskStats(s) if s.bundles == 2)));
    }
}
