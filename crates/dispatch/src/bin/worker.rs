//! `mcdbr-worker`: the worker-process binary behind
//! [`mcdbr_dispatch::ProcessBackend`].
//!
//! Speaks the dispatch wire protocol over stdin/stdout — handshake, then
//! `Plan` / `Task` frames in, columnar partial-result frames out — and
//! exits cleanly on a `Shutdown` frame or when the coordinator closes the
//! pipe.  Protocol failures exit non-zero with the reason on stderr; the
//! coordinator treats that as a crash and respawns.

fn main() {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    if let Err(e) = mcdbr_dispatch::worker::run_worker(&mut input, &mut output) {
        eprintln!("mcdbr-worker: {e}");
        std::process::exit(1);
    }
}
