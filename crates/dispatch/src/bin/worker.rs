//! `mcdbr-worker`: the worker-process binary behind
//! [`mcdbr_dispatch::ProcessBackend`].
//!
//! Speaks the dispatch wire protocol over stdin/stdout — handshake, then
//! `Plan` / `Task` frames in, columnar partial-result frames out — and
//! exits cleanly on a `Shutdown` frame or when the coordinator closes the
//! pipe.  Protocol failures exit non-zero with the reason on stderr; the
//! coordinator treats that as a crash and respawns.
//!
//! Chaos runs set `MCDBR_FAULTS` (see `mcdbr-faults`) in the worker's
//! environment — inherited from the coordinator, or set per slot by
//! `ProcessBackend` — and the worker injects the plan's stall / slow /
//! drop / partial / delay faults into its own task replies.

fn main() {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    let faults = mcdbr_faults::env_injector();
    if let Err(e) =
        mcdbr_dispatch::worker::run_worker_with_faults(&mut input, &mut output, faults.as_deref())
    {
        eprintln!("mcdbr-worker: {e}");
        std::process::exit(1);
    }
}
