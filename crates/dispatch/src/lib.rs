//! Multi-process shard dispatch for MCDB-R phase-2 execution.
//!
//! PR 3 made the unit of distribution explicit — a self-describing
//! `ShardTask {skeleton, master_seed, key_range, base_pos, n}` whose
//! partials merge bit-identically in canonical `StreamKey` order — but ran
//! every task inside the coordinator process.  This crate actually ships
//! the tasks across OS processes:
//!
//! * [`wire`] — the versioned, dependency-free binary wire format: the
//!   handshake/version negotiation, `Plan` frames carrying a serialized
//!   [`mcdbr_exec::PlanNode`] + catalog snapshot (so a cold worker rebuilds
//!   the seed-independent `PlanSkeleton` itself), ~60-byte `Task` headers
//!   addressed by `(plan fingerprint, catalog epoch)` (so a warm worker
//!   skips phase 1 through its own `SessionCache`), and length-prefixed
//!   columnar partial-result frames (typed vectors, dictionary arenas,
//!   null bitmaps — floats as raw IEEE bits).
//! * [`worker`] — the request/response loop behind the `mcdbr-worker`
//!   binary, generic over its byte streams so tests drive it in-memory.
//! * [`ProcessBackend`] — an [`mcdbr_exec::ExecBackend`] that spawns and
//!   pools persistent workers, pipelines one task per worker per block,
//!   merges the streamed partials bit-identically to the in-process and
//!   sharded backends, and survives worker failure end to end: per-task
//!   read deadlines reclassify hung workers as dead, crash-class failures
//!   ride a bounded respawn + backoff + re-dispatch ladder, and a per-slot
//!   circuit breaker degrades repeat offenders to the local sharded path.
//!   Chaos runs inject deterministic faults via `MCDBR_FAULTS`
//!   (`mcdbr_faults`).
//!
//! Selection is environment-driven end to end: `MCDBR_BACKEND=process`
//! (with `MCDBR_WORKERS=N`) makes [`default_backend`] hand every engine,
//! looper, and session a process-shared [`ProcessBackend`] — the function
//! also installs it as `mcdbr-exec`'s process-wide default, so sessions
//! constructed directly through `ExecSession::prepare` pick it up too.

#![warn(missing_docs)]

use std::sync::{Arc, OnceLock};

use mcdbr_exec::{BackendKind, ExecBackend};

mod backend;
pub mod wire;
pub mod worker;

pub use backend::{default_task_deadline, task_deadline_from_env, ProcessBackend};

/// The environment-selected default backend, with multi-process dispatch
/// resolved: `MCDBR_BACKEND=process` returns one process-shared
/// [`ProcessBackend`] sized by `MCDBR_WORKERS` (and installs it via
/// [`mcdbr_exec::install_default_backend`] so bare `ExecSession`s share
/// it); anything else defers to [`mcdbr_exec::default_backend`]'s
/// `MCDBR_BACKEND` / `MCDBR_SHARDS` rules.
///
/// Engines and loopers call this in their default constructors, which is
/// what makes `MCDBR_BACKEND=process MCDBR_WORKERS=2 cargo test` run the
/// whole suite through worker processes.
pub fn default_backend() -> Arc<dyn ExecBackend> {
    if mcdbr_exec::default_backend_kind() == Some(BackendKind::Process) {
        static SHARED: OnceLock<Arc<ProcessBackend>> = OnceLock::new();
        let backend = Arc::clone(SHARED.get_or_init(|| {
            let backend = Arc::new(ProcessBackend::new(mcdbr_exec::default_workers()));
            let _ = mcdbr_exec::install_default_backend(backend.clone());
            backend
        }));
        return backend;
    }
    mcdbr_exec::default_backend()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_backend_resolves_without_env() {
        // Under a plain environment this defers to exec's default; under
        // MCDBR_BACKEND=process (the CI matrix) it must be the process
        // backend.  Either way the call is total.
        let backend = default_backend();
        match mcdbr_exec::default_backend_kind() {
            Some(BackendKind::Process) => assert_eq!(backend.name(), "process"),
            _ => assert_ne!(backend.name(), "process"),
        }
    }
}
