//! Seeded, deterministic fault injection for MCDB-R.
//!
//! Chaos testing a distributed sampler is only useful if a failing run can be
//! replayed: this crate derives every fault decision from a [`Pcg64`]
//! position-addressable stream, so a fault plan plus a seed fully determines
//! *which* frame is dropped, *which* reply stalls, and *which* task runs slow
//! — independent of thread interleaving.  The decision for injection point
//! `p`'s `i`-th visit is a pure function of `(seed, p, i)`.
//!
//! A [`FaultPlan`] is parsed from the `MCDBR_FAULTS` environment variable
//! (see [`FaultPlan::parse`] for the grammar) and evaluated by a
//! [`FaultInjector`], which the dispatch wire, the worker loop, and the
//! server connection handler consult at typed [`FaultPoint`]s.  The crate
//! also hosts [`BackoffPolicy`], the shared capped-exponential +
//! seeded-jitter retry schedule used by `ProcessBackend` re-sends and
//! `ServerClient::query_retrying`, so chaos runs *and* their recovery paths
//! replay from the same seeds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use mcdbr_prng::Pcg64;

/// Environment variable holding the fault plan for this process.
pub const FAULTS_ENV: &str = "MCDBR_FAULTS";

/// Typed injection points consulted by the dispatch and server layers.
///
/// | Point | Sited at | Observable failure |
/// |-------|----------|--------------------|
/// | `StallBeforeReply` | worker, before the first frame of a task reply | hung-but-alive worker; coordinator read deadline |
/// | `PartialWrite` | frame writes on the dispatch wire | truncated/corrupt frame; stream desync |
/// | `DelayedWrite` | frame writes on the dispatch wire and server replies | slow pipe; latency only |
/// | `DropFrame` | frame writes on the dispatch wire | silent peer; read deadline |
/// | `SlowWorker` | worker, before serving a task | straggler; latency only |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Sleep before writing the first frame of a task reply.
    StallBeforeReply,
    /// Write only a prefix of a frame, then report success.
    PartialWrite,
    /// Sleep before writing a frame, then write it normally.
    DelayedWrite,
    /// Swallow a frame entirely while reporting success.
    DropFrame,
    /// Sleep before serving a task.
    SlowWorker,
}

/// All injection points, in decision-counter order.
pub const FAULT_POINTS: [FaultPoint; 5] = [
    FaultPoint::StallBeforeReply,
    FaultPoint::PartialWrite,
    FaultPoint::DelayedWrite,
    FaultPoint::DropFrame,
    FaultPoint::SlowWorker,
];

impl FaultPoint {
    fn index(self) -> usize {
        match self {
            FaultPoint::StallBeforeReply => 0,
            FaultPoint::PartialWrite => 1,
            FaultPoint::DelayedWrite => 2,
            FaultPoint::DropFrame => 3,
            FaultPoint::SlowWorker => 4,
        }
    }

    /// Key used in the `MCDBR_FAULTS` grammar.
    pub fn key(self) -> &'static str {
        match self {
            FaultPoint::StallBeforeReply => "stall",
            FaultPoint::PartialWrite => "partial",
            FaultPoint::DelayedWrite => "delay",
            FaultPoint::DropFrame => "drop",
            FaultPoint::SlowWorker => "slow",
        }
    }

    /// Stream salt: decisions for different points never share a PRNG stream.
    fn salt(self) -> u64 {
        // Arbitrary distinct odd constants; folded into the plan seed.
        [
            0x7374_616c_6c01, // "stall"
            0x7061_7274_6902, // "parti"
            0x6465_6c61_7903, // "delay"
            0x6472_6f70_6604, // "dropf"
            0x736c_6f77_7705, // "sloww"
        ][self.index()]
    }

    fn default_millis(self) -> u64 {
        match self {
            // Long enough to trip any sane read deadline.
            FaultPoint::StallBeforeReply => 30_000,
            FaultPoint::PartialWrite | FaultPoint::DropFrame => 0,
            FaultPoint::DelayedWrite | FaultPoint::SlowWorker => 2,
        }
    }
}

/// Per-point fault parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability in `[0, 1]` that a given decision fires.
    pub prob: f64,
    /// Sleep duration for stall/delay/slow points; ignored for drop/partial.
    pub millis: u64,
    /// Cap on the number of times this point may fire (`None` = unlimited).
    /// Caps make exact counter audits possible in tests.
    pub max_fires: Option<u64>,
}

/// A parsed `MCDBR_FAULTS` plan: a seed plus per-point specs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root seed; every decision stream is derived from it.
    pub seed: u64,
    /// When set, only the worker with this slot index receives the plan
    /// (the coordinator's own send-side injection is disabled too).
    pub target_worker: Option<usize>,
    specs: [Option<FaultSpec>; 5],
    raw: String,
}

impl FaultPlan {
    /// Parse a plan from its textual form.
    ///
    /// Grammar: comma-separated fields, each either `seed=<u64>`,
    /// `worker=<index>`, or `<point>=<prob>[:<millis>][x<count>]` where
    /// `<point>` is one of `stall`, `partial`, `delay`, `drop`, `slow`.
    ///
    /// Example: `seed=42,stall=0.2:10000,drop=0.05,slow=0.1:2x8` — with seed
    /// 42, stall 20% of task replies for 10 s, drop 5% of frames, and slow 10%
    /// of tasks by 2 ms but at most 8 times.
    pub fn parse(raw: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            seed: 0,
            target_worker: None,
            specs: [None; 5],
            raw: raw.to_string(),
        };
        for field in raw.split(',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault field `{field}` is missing `=`"))?;
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad fault seed `{value}`"))?;
                }
                "worker" => {
                    plan.target_worker = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad fault worker index `{value}`"))?,
                    );
                }
                key => {
                    let point = FAULT_POINTS
                        .iter()
                        .copied()
                        .find(|p| p.key() == key)
                        .ok_or_else(|| format!("unknown fault point `{key}`"))?;
                    plan.specs[point.index()] = Some(parse_spec(point, value.trim())?);
                }
            }
        }
        Ok(plan)
    }

    /// The spec for an injection point, if the plan enables it.
    pub fn spec(&self, point: FaultPoint) -> Option<&FaultSpec> {
        self.specs[point.index()].as_ref()
    }

    /// True when the plan has at least one enabled point.
    pub fn is_active(&self) -> bool {
        self.specs.iter().any(|s| s.is_some())
    }

    /// Should the worker at `slot` receive this plan?
    pub fn targets_worker(&self, slot: usize) -> bool {
        self.target_worker.is_none_or(|k| k == slot)
    }

    /// The textual form the plan was parsed from (round-trips through the
    /// `MCDBR_FAULTS` environment of spawned workers).
    pub fn as_str(&self) -> &str {
        &self.raw
    }
}

fn parse_spec(point: FaultPoint, value: &str) -> Result<FaultSpec, String> {
    let (value, max_fires) = match value.rsplit_once('x') {
        Some((head, count)) if count.chars().all(|c| c.is_ascii_digit()) && !count.is_empty() => {
            let cap: u64 = count
                .parse()
                .map_err(|_| format!("bad fault fire cap `{count}`"))?;
            (head, Some(cap))
        }
        _ => (value, None),
    };
    let (prob_str, millis) = match value.split_once(':') {
        Some((p, ms)) => (
            p,
            ms.parse()
                .map_err(|_| format!("bad fault duration `{ms}`"))?,
        ),
        None => (value, point.default_millis()),
    };
    let prob: f64 = prob_str
        .parse()
        .map_err(|_| format!("bad fault probability `{prob_str}`"))?;
    if !(0.0..=1.0).contains(&prob) {
        return Err(format!("fault probability {prob} outside [0, 1]"));
    }
    Ok(FaultSpec {
        prob,
        millis,
        max_fires,
    })
}

/// What a consulted injection point should do, when a decision fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep this long before writing the reply.
    Stall(Duration),
    /// Sleep this long, then proceed normally.
    Delay(Duration),
    /// Swallow the frame; report success to the writer.
    Drop,
    /// Write only a prefix of the frame; report success to the writer.
    Truncate,
    /// Sleep this long before serving the task.
    Slow(Duration),
}

/// Evaluates a [`FaultPlan`] with position-addressable decisions.
///
/// Each injection point keeps its own decision counter; the `i`-th decision
/// for point `p` draws from `Pcg64::with_stream(seed ^ salt(p), i)` so a run
/// is replayable from the plan alone regardless of interleaving.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    decisions: [AtomicU64; 5],
    fired: [AtomicU64; 5],
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            decisions: Default::default(),
            fired: Default::default(),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Consult an injection point.  Advances the point's decision counter and
    /// returns the action to take, if the decision fired.
    pub fn decide(&self, point: FaultPoint) -> Option<FaultAction> {
        let spec = *self.plan.spec(point)?;
        let i = self.decisions[point.index()].fetch_add(1, Ordering::Relaxed);
        let draw = Pcg64::with_stream(self.plan.seed ^ point.salt(), i).next_f64();
        if draw >= spec.prob {
            return None;
        }
        if let Some(cap) = spec.max_fires {
            let won = self.fired[point.index()]
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| {
                    (f < cap).then_some(f + 1)
                })
                .is_ok();
            if !won {
                return None;
            }
        } else {
            self.fired[point.index()].fetch_add(1, Ordering::Relaxed);
        }
        let ms = Duration::from_millis(spec.millis);
        Some(match point {
            FaultPoint::StallBeforeReply => FaultAction::Stall(ms),
            FaultPoint::PartialWrite => FaultAction::Truncate,
            FaultPoint::DelayedWrite => FaultAction::Delay(ms),
            FaultPoint::DropFrame => FaultAction::Drop,
            FaultPoint::SlowWorker => FaultAction::Slow(ms),
        })
    }

    /// How many times a point has fired so far (for counter audits).
    pub fn fired(&self, point: FaultPoint) -> u64 {
        self.fired[point.index()].load(Ordering::Relaxed)
    }
}

/// Pure parse of the `MCDBR_FAULTS` environment value.  Unset, empty, or
/// malformed values disable injection (a chaos harness should validate its
/// plan with [`FaultPlan::parse`] up front).
pub fn plan_from_env(raw: Option<&str>) -> Option<FaultPlan> {
    let raw = raw?.trim();
    if raw.is_empty() {
        return None;
    }
    FaultPlan::parse(raw).ok().filter(FaultPlan::is_active)
}

/// The process-wide injector parsed from `MCDBR_FAULTS`, memoized on first
/// use.  `None` when the variable is unset or names no active fault points.
pub fn env_injector() -> Option<Arc<FaultInjector>> {
    static INJECTOR: OnceLock<Option<Arc<FaultInjector>>> = OnceLock::new();
    INJECTOR
        .get_or_init(|| {
            plan_from_env(std::env::var(FAULTS_ENV).ok().as_deref())
                .map(|plan| Arc::new(FaultInjector::new(plan)))
        })
        .clone()
}

/// Capped exponential backoff with seeded full jitter.
///
/// Attempt `n` sleeps a uniform draw from `[0, min(cap, base << n)]`; the
/// draw comes from `Pcg64::with_stream(seed ^ salt, n)` so retry schedules
/// replay deterministically alongside fault plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Backoff for attempt 0, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on any single backoff, in milliseconds.
    pub cap_ms: u64,
    /// Give up after this many retries (`None` = retry forever).
    pub max_attempts: Option<u32>,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 2,
            cap_ms: 200,
            max_attempts: None,
            seed: 0x6d63_6462, // "mcdb"
        }
    }
}

impl BackoffPolicy {
    /// The jittered sleep before retry `attempt` (0-based).  `salt`
    /// decorrelates concurrent retry loops sharing one policy.
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.cap_ms);
        let jitter = Pcg64::with_stream(self.seed ^ salt, u64::from(attempt)).next_f64();
        Duration::from_micros((exp as f64 * 1000.0 * jitter) as u64)
    }

    /// True once `attempt` retries have already been spent.
    pub fn exhausted(&self, attempt: u32) -> bool {
        self.max_attempts.is_some_and(|cap| attempt >= cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_plan() {
        let plan = FaultPlan::parse(
            "seed=42,stall=0.2:10000,drop=0.05,partial=0.02,delay=0.1:5,slow=1:2x8",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.target_worker, None);
        assert_eq!(
            plan.spec(FaultPoint::StallBeforeReply),
            Some(&FaultSpec {
                prob: 0.2,
                millis: 10_000,
                max_fires: None
            })
        );
        assert_eq!(
            plan.spec(FaultPoint::DropFrame),
            Some(&FaultSpec {
                prob: 0.05,
                millis: 0,
                max_fires: None
            })
        );
        assert_eq!(
            plan.spec(FaultPoint::SlowWorker),
            Some(&FaultSpec {
                prob: 1.0,
                millis: 2,
                max_fires: Some(8)
            })
        );
        assert!(plan.is_active());
    }

    #[test]
    fn parses_worker_target() {
        let plan = FaultPlan::parse("seed=9,worker=1,stall=1:5000").unwrap();
        assert_eq!(plan.target_worker, Some(1));
        assert!(plan.targets_worker(1));
        assert!(!plan.targets_worker(0));
        let untargeted = FaultPlan::parse("seed=9,stall=1").unwrap();
        assert!(untargeted.targets_worker(0) && untargeted.targets_worker(7));
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in [
            "stall",            // missing '='
            "stall=2",          // prob > 1
            "stall=-0.1",       // prob < 0
            "seed=abc",         // non-numeric seed
            "warp=0.5",         // unknown point
            "stall=0.5:oops",   // bad duration
            "worker=minus-one", // bad index
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn env_parse_is_lenient() {
        assert_eq!(plan_from_env(None), None);
        assert_eq!(plan_from_env(Some("")), None);
        assert_eq!(plan_from_env(Some("garbage")), None);
        assert_eq!(plan_from_env(Some("seed=7")), None); // no active points
        assert!(plan_from_env(Some("seed=7,drop=0.5")).is_some());
    }

    #[test]
    fn decisions_are_position_addressable() {
        let plan = FaultPlan::parse("seed=11,drop=0.5,slow=0.5:1").unwrap();
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let seq_a: Vec<_> = (0..64).map(|_| a.decide(FaultPoint::DropFrame)).collect();
        let seq_b: Vec<_> = (0..64).map(|_| b.decide(FaultPoint::DropFrame)).collect();
        assert_eq!(seq_a, seq_b, "same plan must replay identically");
        assert!(seq_a.iter().any(Option::is_some));
        assert!(seq_a.iter().any(Option::is_none));
        // Distinct points draw from distinct streams: interleaving SlowWorker
        // decisions must not perturb the DropFrame sequence.
        let c = FaultInjector::new(FaultPlan::parse("seed=11,drop=0.5,slow=0.5:1").unwrap());
        let seq_c: Vec<_> = (0..64)
            .map(|_| {
                let _ = c.decide(FaultPoint::SlowWorker);
                c.decide(FaultPoint::DropFrame)
            })
            .collect();
        assert_eq!(seq_a, seq_c);
    }

    #[test]
    fn fire_caps_enable_exact_audits() {
        let plan = FaultPlan::parse("seed=3,stall=1:100x2").unwrap();
        let inj = FaultInjector::new(plan);
        let fired: Vec<_> = (0..10)
            .map(|_| inj.decide(FaultPoint::StallBeforeReply))
            .collect();
        assert_eq!(fired.iter().filter(|a| a.is_some()).count(), 2);
        assert_eq!(inj.fired(FaultPoint::StallBeforeReply), 2);
        // Probability 1 with a cap fires on the first decisions, then stops.
        assert!(fired[0].is_some() && fired[1].is_some() && fired[2].is_none());
    }

    #[test]
    fn actions_carry_durations() {
        let plan =
            FaultPlan::parse("seed=3,stall=1:250,delay=1:7,slow=1:3,partial=1,drop=1").unwrap();
        let inj = FaultInjector::new(plan);
        assert_eq!(
            inj.decide(FaultPoint::StallBeforeReply),
            Some(FaultAction::Stall(Duration::from_millis(250)))
        );
        assert_eq!(
            inj.decide(FaultPoint::DelayedWrite),
            Some(FaultAction::Delay(Duration::from_millis(7)))
        );
        assert_eq!(
            inj.decide(FaultPoint::SlowWorker),
            Some(FaultAction::Slow(Duration::from_millis(3)))
        );
        assert_eq!(
            inj.decide(FaultPoint::PartialWrite),
            Some(FaultAction::Truncate)
        );
        assert_eq!(inj.decide(FaultPoint::DropFrame), Some(FaultAction::Drop));
    }

    #[test]
    fn backoff_is_capped_exponential_with_deterministic_jitter() {
        let policy = BackoffPolicy {
            base_ms: 4,
            cap_ms: 32,
            max_attempts: Some(3),
            seed: 99,
        };
        for attempt in 0..8 {
            let bound = 4u64.saturating_mul(1 << attempt).min(32);
            let d = policy.delay(attempt, 0);
            assert!(
                d <= Duration::from_millis(bound),
                "attempt {attempt}: {d:?} > {bound}ms"
            );
            assert_eq!(d, policy.delay(attempt, 0), "jitter must be deterministic");
        }
        assert_ne!(policy.delay(2, 0), policy.delay(2, 1), "salts decorrelate");
        assert!(!policy.exhausted(2));
        assert!(policy.exhausted(3));
        assert!(
            BackoffPolicy::default().max_attempts.is_none(),
            "default policy retries until the caller stops"
        );
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let policy = BackoffPolicy::default();
        let d = policy.delay(u32::MAX, 42);
        assert!(d <= Duration::from_millis(policy.cap_ms));
    }
}
