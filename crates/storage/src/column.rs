//! Columnar VG-output blocks: typed structure-of-arrays buffers for phase-2
//! block materialization.
//!
//! The row representation of a materialized stream block —
//! `Vec<Vec<Tuple>>`, one boxed `Vec<Value>` per VG output row per stream
//! position — pays a heap allocation (and a `Value` clone) per cell per
//! position.  A [`ColumnBlock`] stores the same data column-major instead:
//! one typed buffer per VG output *cell* (`Vec<i64>` / `Vec<f64>` /
//! `Vec<bool>`, UTF-8 interned via offsets into a shared byte arena), each
//! buffer holding that cell's value at every block position, plus a packed
//! null bitmap per column.  Batched VG generation writes scalars straight
//! into these buffers; reads come back as slices, and boxed [`Value`]s are
//! only built at the bundle-set boundary.
//!
//! The layout for a VG with output shape `rows × cols` over a block of `n`
//! positions:
//!
//! ```text
//! ColumnBlock { rows, cols,
//!   columns: [ Column(row 0, col 0), Column(row 0, col 1), ...,   // row-major
//!              Column(rows-1, cols-1) ] }                         // rows*cols columns
//! Column { data: Float64([v@pos 0, v@pos 1, ..., v@pos n-1]),     // one typed buffer
//!          nulls: Bitmap }                                        // packed u64 words
//! ```
//!
//! Columns type themselves on first push and keep their buffers (and the
//! Utf8 intern dictionary) across [`ColumnBlock::clear`], so pooled blocks
//! reuse capacity instead of reallocating.  A cell that genuinely mixes
//! value types across positions (possible only for `Discrete` VG functions
//! over heterogeneous category lists) demotes itself to a boxed
//! [`ColumnData::Mixed`] row store — the documented fallback row path.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::selvec::Mask;
use crate::tuple::Tuple;
use crate::value::{DataType, Value};

/// A packed null bitmap: bit `i` set means position `i` is SQL NULL.
///
/// The bitmap is sparse-friendly — nothing is stored until the first null —
/// so the common all-non-null column costs one `bool` check per read.
#[derive(Debug, Clone, Default)]
pub struct NullBitmap {
    words: Vec<u64>,
    any: bool,
}

impl NullBitmap {
    /// Mark position `idx` as null.
    pub fn set(&mut self, idx: usize) {
        let word = idx / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1 << (idx % 64);
        self.any = true;
    }

    /// Whether position `idx` is null.
    pub fn get(&self, idx: usize) -> bool {
        self.any && (self.words.get(idx / 64).copied().unwrap_or(0) >> (idx % 64)) & 1 == 1
    }

    /// Whether any position is null.
    pub fn any(&self) -> bool {
        self.any
    }

    /// The bitmap over `len` positions as a packed [`Mask`] suitable for the
    /// branchless predicate kernels.
    ///
    /// The sparse representation stores nothing past the last word ever
    /// touched by [`NullBitmap::set`], so the mask zero-pads missing words;
    /// and because `set` never learned the column's logical length, any bits
    /// at positions `>= len` (possible when a pooled buffer shrinks between
    /// uses) are masked off the trailing word.  Without that trailing-word
    /// masking, whole-word kernel combinators would read garbage lanes for
    /// block lengths that are not a multiple of 64.
    pub fn to_mask(&self, len: usize) -> Mask {
        if !self.any {
            return Mask::zeros(len);
        }
        let mut words = vec![0u64; crate::selvec::words_for(len)];
        for (dst, src) in words.iter_mut().zip(&self.words) {
            *dst = *src;
        }
        Mask::from_words(words, len)
    }

    fn clear(&mut self) {
        self.words.clear();
        self.any = false;
    }

    fn data_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// A dictionary-interned UTF-8 column: per-position `u32` indices into a
/// table of distinct strings stored as offsets into one shared byte arena.
///
/// Equal strings are stored once no matter how many positions carry them —
/// a `Discrete` VG over `k` categories stores `k` arena entries and `n`
/// 4-byte indices for an `n`-position block.  The distinct strings are also
/// kept as `Arc<str>` handles so the bundle-set boundary clones refcounts,
/// never bytes.
#[derive(Debug, Clone)]
pub struct Utf8Column {
    indices: Vec<u32>,
    /// `offsets[i]..offsets[i+1]` is interned string `i`'s byte range.
    offsets: Vec<u32>,
    arena: Vec<u8>,
    /// The distinct strings, in intern order, as cheaply clonable handles.
    dict: Vec<Arc<str>>,
    lookup: HashMap<Arc<str>, u32>,
}

impl Default for Utf8Column {
    fn default() -> Self {
        Utf8Column {
            indices: Vec::new(),
            offsets: vec![0],
            arena: Vec::new(),
            dict: Vec::new(),
            lookup: HashMap::new(),
        }
    }
}

impl Utf8Column {
    /// Intern `s`, returning its dictionary id (existing id if already seen).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.lookup.get(s) {
            return id;
        }
        let id = self.dict.len() as u32;
        self.arena.extend_from_slice(s.as_bytes());
        self.offsets.push(self.arena.len() as u32);
        let handle: Arc<str> = Arc::from(s);
        self.dict.push(Arc::clone(&handle));
        self.lookup.insert(handle, id);
        id
    }

    /// Append a position holding the already-interned string `id`.
    ///
    /// # Panics
    ///
    /// Debug-panics if `id` was not returned by [`Utf8Column::intern`] on
    /// this column since its last clear.
    pub fn push_id(&mut self, id: u32) {
        debug_assert!((id as usize) < self.dict.len(), "uninterned dictionary id");
        self.indices.push(id);
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True if no positions have been pushed.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Number of distinct interned strings.
    pub fn distinct(&self) -> usize {
        self.dict.len()
    }

    /// The string at position `row`, read from the byte arena.
    pub fn str_at(&self, row: usize) -> &str {
        let id = self.indices[row] as usize;
        let bytes = &self.arena[self.offsets[id] as usize..self.offsets[id + 1] as usize];
        // The arena only ever receives `&str` bytes.
        std::str::from_utf8(bytes).expect("arena holds interned UTF-8")
    }

    /// The shared handle for the string at position `row`.
    pub fn handle_at(&self, row: usize) -> &Arc<str> {
        &self.dict[self.indices[row] as usize]
    }

    fn clear(&mut self) {
        self.indices.clear();
        self.offsets.truncate(1);
        self.arena.clear();
        self.dict.clear();
        self.lookup.clear();
    }

    fn data_bytes(&self) -> usize {
        self.indices.len() * 4 + self.offsets.len() * 4 + self.arena.len()
    }
}

/// The typed buffer behind one column.
#[derive(Debug, Clone, Default)]
pub enum ColumnData {
    /// No non-null value pushed yet; the column types itself on first push.
    #[default]
    Untyped,
    /// 64-bit integers.
    Int64(Vec<i64>),
    /// 64-bit IEEE floats (bit-exact; no transformation on the way in or out).
    Float64(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Interned UTF-8 (see [`Utf8Column`]).
    Utf8(Utf8Column),
    /// Boxed row-wise fallback for cells that mix value types across
    /// positions.  Only heterogeneous `Discrete` category lists trigger this.
    Mixed(Vec<Value>),
}

/// One column of a [`ColumnBlock`]: a typed buffer plus a null bitmap.
#[derive(Debug, Clone, Default)]
pub struct Column {
    len: usize,
    data: ColumnData,
    nulls: NullBitmap,
}

impl Column {
    /// Number of positions pushed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no positions have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column's resolved type, if any non-null value has been pushed.
    pub fn data_type(&self) -> Option<DataType> {
        match &self.data {
            ColumnData::Untyped => None,
            ColumnData::Int64(_) => Some(DataType::Int64),
            ColumnData::Float64(_) => Some(DataType::Float64),
            ColumnData::Bool(_) => Some(DataType::Bool),
            ColumnData::Utf8(_) => Some(DataType::Utf8),
            ColumnData::Mixed(_) => None,
        }
    }

    /// The typed buffer (read-only).
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The null bitmap.
    pub fn nulls(&self) -> &NullBitmap {
        &self.nulls
    }

    /// Append a null position.
    pub fn push_null(&mut self) {
        self.nulls.set(self.len);
        self.push_placeholder();
        self.len += 1;
    }

    /// Append an `i64` position.
    pub fn push_i64(&mut self, x: i64) {
        match &mut self.data {
            ColumnData::Int64(v) => v.push(x),
            _ => self.push_slow(Value::Int64(x)),
        }
        self.len += 1;
    }

    /// Append an `f64` position (stored bit-exactly).
    pub fn push_f64(&mut self, x: f64) {
        match &mut self.data {
            ColumnData::Float64(v) => v.push(x),
            _ => self.push_slow(Value::Float64(x)),
        }
        self.len += 1;
    }

    /// Append a `bool` position.
    pub fn push_bool(&mut self, x: bool) {
        match &mut self.data {
            ColumnData::Bool(v) => v.push(x),
            _ => self.push_slow(Value::Bool(x)),
        }
        self.len += 1;
    }

    /// Append a string position, interning it in the column dictionary.
    pub fn push_str(&mut self, s: &str) {
        match &mut self.data {
            ColumnData::Utf8(col) => {
                let id = col.intern(s);
                col.push_id(id);
            }
            _ => self.push_slow(Value::str(s)),
        }
        self.len += 1;
    }

    /// Append any value (dispatches to the typed pushes; `Null` sets the
    /// bitmap; a type clash demotes the column to [`ColumnData::Mixed`]).
    pub fn push_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.push_null(),
            Value::Int64(x) => self.push_i64(*x),
            Value::Float64(x) => self.push_f64(*x),
            Value::Bool(x) => self.push_bool(*x),
            Value::Utf8(s) => match &mut self.data {
                ColumnData::Utf8(col) => {
                    let id = col.intern(s);
                    col.push_id(id);
                    self.len += 1;
                }
                _ => {
                    self.push_slow(v.clone());
                    self.len += 1;
                }
            },
        }
    }

    /// Intern `s` into the column's Utf8 dictionary without appending a
    /// position, (re)typing an *empty* column as Utf8 if needed — the
    /// `Discrete` VG fast path interns its categories once, then pushes
    /// dictionary ids per sampled row ([`Column::push_utf8_id`]).  A
    /// cleared column keeps its previous type for capacity reuse, so a
    /// pool-recycled buffer last used by a numeric stream retypes here.
    pub fn intern_utf8(&mut self, s: &str) -> Result<u32> {
        if self.len == 0 && !matches!(self.data, ColumnData::Utf8(_)) {
            self.data = ColumnData::Utf8(Utf8Column::default());
        }
        match &mut self.data {
            ColumnData::Utf8(col) => Ok(col.intern(s)),
            other => Err(Error::Invalid(format!(
                "cannot intern a string into a non-empty column typed {other:?}"
            ))),
        }
    }

    /// Append a position holding the pre-interned string `id` (from
    /// [`Column::intern_utf8`]).
    pub fn push_utf8_id(&mut self, id: u32) -> Result<()> {
        match &mut self.data {
            ColumnData::Utf8(col) => {
                col.push_id(id);
                self.len += 1;
                Ok(())
            }
            other => Err(Error::Invalid(format!(
                "cannot push an interned id into a column typed {other:?}"
            ))),
        }
    }

    /// Typed-push slow path: append to an existing `Mixed` store, (re)type
    /// an empty or untyped column (backfilling placeholder slots for any
    /// leading nulls), or demote a genuinely mismatched non-empty column to
    /// `Mixed`.  Does not bump `len` — the typed-push callers do.
    fn push_slow(&mut self, v: Value) {
        if self.len == 0 {
            // Empty columns retype freely — before the Mixed fast path, so
            // a pool-recycled buffer last demoted by a heterogeneous
            // Discrete stream recovers a typed buffer instead of staying
            // boxed forever.  (Capacity of the discarded buffer is lost;
            // same-type reuse — the common case — keeps it.)
            self.data = ColumnData::Untyped;
        }
        if let ColumnData::Mixed(vals) = &mut self.data {
            // Already demoted mid-column: a plain push, never a
            // re-collection — mixed cells must stay O(1) amortized.
            vals.push(v);
            return;
        }
        if matches!(self.data, ColumnData::Untyped) {
            self.data = match &v {
                Value::Int64(_) => ColumnData::Int64(vec![0; self.len]),
                Value::Float64(_) => ColumnData::Float64(vec![0.0; self.len]),
                Value::Bool(_) => ColumnData::Bool(vec![false; self.len]),
                Value::Utf8(_) => {
                    let mut col = Utf8Column::default();
                    if self.len > 0 {
                        let id = col.intern("");
                        for _ in 0..self.len {
                            col.push_id(id);
                        }
                    }
                    ColumnData::Utf8(col)
                }
                // push_value handled Null before reaching here.
                Value::Null => unreachable!("null goes through push_null"),
            };
            // Retry on the freshly typed buffer.
            match (&mut self.data, v) {
                (ColumnData::Int64(buf), Value::Int64(x)) => buf.push(x),
                (ColumnData::Float64(buf), Value::Float64(x)) => buf.push(x),
                (ColumnData::Bool(buf), Value::Bool(x)) => buf.push(x),
                (ColumnData::Utf8(col), Value::Utf8(s)) => {
                    let id = col.intern(&s);
                    col.push_id(id);
                }
                _ => unreachable!("variant chosen from the value"),
            }
        } else {
            // Type clash: demote to the boxed row store, preserving every
            // existing value (and nulls) exactly.
            let mut boxed: Vec<Value> = (0..self.len).map(|i| self.value_at(i)).collect();
            boxed.push(v);
            self.data = ColumnData::Mixed(boxed);
        }
    }

    /// Placeholder slot for a null position, keeping typed buffers aligned
    /// with the bitmap.  Untyped columns store nothing until they type.
    fn push_placeholder(&mut self) {
        match &mut self.data {
            ColumnData::Untyped => {}
            ColumnData::Int64(v) => v.push(0),
            ColumnData::Float64(v) => v.push(0.0),
            ColumnData::Bool(v) => v.push(false),
            ColumnData::Utf8(col) => {
                let id = col.intern("");
                col.push_id(id);
            }
            ColumnData::Mixed(v) => v.push(Value::Null),
        }
    }

    /// The boxed value at position `idx` (a refcount bump for strings, a
    /// copy for scalars).
    pub fn value_at(&self, idx: usize) -> Value {
        if self.nulls.get(idx) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Untyped => Value::Null,
            ColumnData::Int64(v) => Value::Int64(v[idx]),
            ColumnData::Float64(v) => Value::Float64(v[idx]),
            ColumnData::Bool(v) => Value::Bool(v[idx]),
            ColumnData::Utf8(col) => Value::Utf8(Arc::clone(col.handle_at(idx))),
            ColumnData::Mixed(v) => v[idx].clone(),
        }
    }

    /// Materialize the whole column as boxed values — the bundle-set
    /// boundary, and the only place a full `Vec<Value>` is built.
    pub fn values_out(&self) -> Vec<Value> {
        if self.nulls.any() {
            return (0..self.len).map(|i| self.value_at(i)).collect();
        }
        match &self.data {
            ColumnData::Untyped => vec![Value::Null; self.len],
            ColumnData::Int64(v) => v.iter().map(|&x| Value::Int64(x)).collect(),
            ColumnData::Float64(v) => v.iter().map(|&x| Value::Float64(x)).collect(),
            ColumnData::Bool(v) => v.iter().map(|&x| Value::Bool(x)).collect(),
            ColumnData::Utf8(col) => (0..self.len)
                .map(|i| Value::Utf8(Arc::clone(col.handle_at(i))))
                .collect(),
            ColumnData::Mixed(v) => v.clone(),
        }
    }

    /// The raw `f64` slice, when the column is typed `Float64` and null-free.
    pub fn f64_slice(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float64(v) if !self.nulls.any() => Some(v),
            _ => None,
        }
    }

    /// The raw `i64` slice, when the column is typed `Int64` and null-free.
    pub fn i64_slice(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int64(v) if !self.nulls.any() => Some(v),
            _ => None,
        }
    }

    /// The raw `Float64` buffer regardless of nulls — null positions hold
    /// the `0.0` placeholder slot.  Kernel callers must consult
    /// [`Column::null_mask`] before trusting those lanes.
    pub fn f64_raw(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float64(v) => Some(v),
            _ => None,
        }
    }

    /// The raw `Int64` buffer regardless of nulls (see [`Column::f64_raw`]).
    pub fn i64_raw(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int64(v) => Some(v),
            _ => None,
        }
    }

    /// The raw `Bool` buffer regardless of nulls (see [`Column::f64_raw`]).
    pub fn bool_raw(&self) -> Option<&[bool]> {
        match &self.data {
            ColumnData::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The packed null mask over this column's positions, with the
    /// trailing-word bits beyond `len` masked off (see
    /// [`NullBitmap::to_mask`]).
    pub fn null_mask(&self) -> Mask {
        self.nulls.to_mask(self.len)
    }

    /// Append `n` `Float64` positions initialized to `0.0` and return the
    /// appended slice for in-place batch writes — the two-pass batched VG
    /// kernels fill it with uniforms, then transform it in place.
    ///
    /// An empty column retypes itself to `Float64` (a pool-recycled buffer
    /// last used by the same stream keeps its capacity; one last used by a
    /// string stream retypes and starts cold, exactly like the push path).
    /// Returns `None` when the column already holds non-`Float64` data, in
    /// which case the caller falls back to per-value pushes.
    pub fn extend_f64_zeroed(&mut self, n: usize) -> Option<&mut [f64]> {
        if self.len == 0 && !matches!(self.data, ColumnData::Float64(_)) {
            self.data = ColumnData::Float64(Vec::new());
        }
        match &mut self.data {
            ColumnData::Float64(v) => {
                let start = v.len();
                v.resize(start + n, 0.0);
                self.len += n;
                Some(&mut v[start..])
            }
            _ => None,
        }
    }

    /// Append the `Float64` positions yielded by `values` and return the
    /// appended slice — the single-write analogue of
    /// [`Column::extend_f64_zeroed`] for batched kernels whose first pass
    /// produces every slot value anyway (no zero-fill that is immediately
    /// overwritten).  Same retyping rules; returns `None`, with the column
    /// untouched, when it already holds non-`Float64` data.
    pub fn extend_f64_values(
        &mut self,
        values: impl ExactSizeIterator<Item = f64>,
    ) -> Option<&mut [f64]> {
        if self.len == 0 && !matches!(self.data, ColumnData::Float64(_)) {
            self.data = ColumnData::Float64(Vec::new());
        }
        match &mut self.data {
            ColumnData::Float64(v) => {
                let start = v.len();
                v.extend(values);
                self.len += v.len() - start;
                Some(&mut v[start..])
            }
            _ => None,
        }
    }

    /// Logical bytes held by the column's buffers.
    pub fn data_bytes(&self) -> usize {
        let data = match &self.data {
            ColumnData::Untyped => 0,
            ColumnData::Int64(v) => v.len() * 8,
            ColumnData::Float64(v) => v.len() * 8,
            ColumnData::Bool(v) => v.len(),
            ColumnData::Utf8(col) => col.data_bytes(),
            ColumnData::Mixed(v) => v.len() * std::mem::size_of::<Value>(),
        };
        data + self.nulls.data_bytes()
    }

    /// Reserve room for `additional` more positions.
    pub fn reserve(&mut self, additional: usize) {
        match &mut self.data {
            ColumnData::Untyped => {}
            ColumnData::Int64(v) => v.reserve(additional),
            ColumnData::Float64(v) => v.reserve(additional),
            ColumnData::Bool(v) => v.reserve(additional),
            ColumnData::Utf8(col) => col.indices.reserve(additional),
            ColumnData::Mixed(v) => v.reserve(additional),
        }
    }

    /// Clear all positions, keeping the typed buffer (and its capacity) for
    /// reuse.  The Utf8 dictionary is emptied too: pooled buffers must not
    /// leak one block's strings into the next.
    pub fn clear(&mut self) {
        self.len = 0;
        self.nulls.clear();
        match &mut self.data {
            ColumnData::Untyped => {}
            ColumnData::Int64(v) => v.clear(),
            ColumnData::Float64(v) => v.clear(),
            ColumnData::Bool(v) => v.clear(),
            ColumnData::Utf8(col) => col.clear(),
            ColumnData::Mixed(v) => v.clear(),
        }
    }

    /// Append this column's wire encoding to `out`: the typed buffer (raw
    /// little-endian scalars; dictionary indices + offsets + byte arena for
    /// Utf8; tagged values for Mixed) preceded by the packed null-bitmap
    /// words.  Floats travel as raw bits, so the round trip is bit-exact.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len as u32).to_le_bytes());
        out.extend_from_slice(&(self.nulls.words.len() as u32).to_le_bytes());
        for word in &self.nulls.words {
            out.extend_from_slice(&word.to_le_bytes());
        }
        match &self.data {
            ColumnData::Untyped => out.push(0),
            ColumnData::Int64(v) => {
                out.push(1);
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Float64(v) => {
                out.push(2);
                for x in v {
                    out.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            ColumnData::Bool(v) => {
                out.push(3);
                out.extend(v.iter().map(|&b| u8::from(b)));
            }
            ColumnData::Utf8(col) => {
                out.push(4);
                for idx in &col.indices {
                    out.extend_from_slice(&idx.to_le_bytes());
                }
                out.extend_from_slice(&(col.dict.len() as u32).to_le_bytes());
                for offset in &col.offsets {
                    out.extend_from_slice(&offset.to_le_bytes());
                }
                out.extend_from_slice(&(col.arena.len() as u32).to_le_bytes());
                out.extend_from_slice(&col.arena);
            }
            ColumnData::Mixed(v) => {
                out.push(5);
                for value in v {
                    value.encode_wire(out);
                }
            }
        }
    }

    /// Decode a column from `buf` at `*pos`, advancing `*pos`.  Truncated
    /// or corrupt input (unknown type tag, out-of-range dictionary data,
    /// invalid UTF-8) returns a typed [`Error::Invalid`]; a successful
    /// decode reconstructs every position — and the Utf8 intern dictionary —
    /// exactly.
    pub fn decode_wire(buf: &[u8], pos: &mut usize) -> Result<Column> {
        fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
            let bytes = buf
                .get(*pos..*pos + n)
                .ok_or_else(|| Error::Invalid("truncated column encoding".into()))?;
            *pos += n;
            Ok(bytes)
        }
        fn take_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
            Ok(u32::from_le_bytes(
                take(buf, pos, 4)?.try_into().expect("4 bytes"),
            ))
        }
        // Length headers are untrusted: pre-allocations are clamped by the
        // bytes actually remaining, so a corrupt count fails on a bounds
        // check instead of reserving gigabytes first.
        let cap = |claimed: usize, elem: usize, pos: usize| {
            claimed.min(buf.len().saturating_sub(pos) / elem.max(1) + 1)
        };
        let len = take_u32(buf, pos)? as usize;
        let num_words = take_u32(buf, pos)? as usize;
        let mut words = Vec::with_capacity(cap(num_words, 8, *pos));
        for _ in 0..num_words {
            words.push(u64::from_le_bytes(
                take(buf, pos, 8)?.try_into().expect("8 bytes"),
            ));
        }
        let any = words.iter().any(|&w| w != 0);
        let nulls = NullBitmap { words, any };
        let tag = take(buf, pos, 1)?[0];
        let data = match tag {
            0 => {
                // An Untyped column carries no buffer, so nothing below
                // vouches for `len`.  Untyped positions only ever come from
                // pushes of NULL, so a genuine encoding's bitmap words cover
                // every position — use that to reject a corrupt length.
                if len > num_words * 64 {
                    return Err(Error::Invalid(
                        "corrupt column encoding: untyped length exceeds its null bitmap".into(),
                    ));
                }
                ColumnData::Untyped
            }
            1 => {
                let mut v = Vec::with_capacity(cap(len, 8, *pos));
                for _ in 0..len {
                    v.push(i64::from_le_bytes(
                        take(buf, pos, 8)?.try_into().expect("8 bytes"),
                    ));
                }
                ColumnData::Int64(v)
            }
            2 => {
                let mut v = Vec::with_capacity(cap(len, 8, *pos));
                for _ in 0..len {
                    v.push(f64::from_bits(u64::from_le_bytes(
                        take(buf, pos, 8)?.try_into().expect("8 bytes"),
                    )));
                }
                ColumnData::Float64(v)
            }
            3 => {
                let bytes = take(buf, pos, len)?;
                ColumnData::Bool(bytes.iter().map(|&b| b != 0).collect())
            }
            4 => {
                let mut indices = Vec::with_capacity(cap(len, 4, *pos));
                for _ in 0..len {
                    indices.push(take_u32(buf, pos)?);
                }
                let dict_len = take_u32(buf, pos)? as usize;
                let mut offsets = Vec::with_capacity(cap(dict_len + 1, 4, *pos));
                for _ in 0..dict_len + 1 {
                    offsets.push(take_u32(buf, pos)?);
                }
                let arena_len = take_u32(buf, pos)? as usize;
                let arena = take(buf, pos, arena_len)?.to_vec();
                // Rebuild the dictionary handles (and the intern lookup)
                // from the offsets, validating every range on the way.
                if offsets.first() != Some(&0)
                    || offsets.windows(2).any(|w| w[0] > w[1])
                    || offsets.last().copied().unwrap_or(0) as usize != arena.len()
                {
                    return Err(Error::Invalid(
                        "corrupt Utf8 column encoding: bad dictionary offsets".into(),
                    ));
                }
                if indices.iter().any(|&i| i as usize >= dict_len) {
                    return Err(Error::Invalid(
                        "corrupt Utf8 column encoding: index outside dictionary".into(),
                    ));
                }
                // dict_len is trustworthy here: offsets decoded 1-per-entry
                // above, so a huge claimed count has already failed.
                let mut dict = Vec::with_capacity(dict_len);
                let mut lookup = HashMap::with_capacity(dict_len);
                for i in 0..dict_len {
                    let bytes = &arena[offsets[i] as usize..offsets[i + 1] as usize];
                    let s = std::str::from_utf8(bytes).map_err(|_| {
                        Error::Invalid("corrupt Utf8 column encoding: invalid UTF-8".into())
                    })?;
                    let handle: Arc<str> = Arc::from(s);
                    dict.push(Arc::clone(&handle));
                    lookup.insert(handle, i as u32);
                }
                ColumnData::Utf8(Utf8Column {
                    indices,
                    offsets,
                    arena,
                    dict,
                    lookup,
                })
            }
            5 => {
                let mut v = Vec::with_capacity(cap(len, 1, *pos));
                for _ in 0..len {
                    v.push(Value::decode_wire(buf, pos)?);
                }
                ColumnData::Mixed(v)
            }
            other => {
                return Err(Error::Invalid(format!(
                    "unknown column encoding tag {other}"
                )))
            }
        };
        let column = Column { len, data, nulls };
        let stored = match &column.data {
            ColumnData::Untyped => column.len,
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Utf8(col) => col.len(),
            ColumnData::Mixed(v) => v.len(),
        };
        if stored != column.len {
            return Err(Error::Invalid(
                "corrupt column encoding: buffer length disagrees with header".into(),
            ));
        }
        Ok(column)
    }
}

/// A columnar block of VG outputs for one stream: `rows × cols` typed
/// [`Column`]s (row-major), each holding one VG output cell's value at every
/// materialized stream position.
///
/// Blocks are designed to be pooled: [`ColumnBlock::clear`] drops the data
/// but keeps every buffer's capacity (and column typing), so a reused block
/// materializes with zero heap allocation once warm.
#[derive(Debug, Clone, Default)]
pub struct ColumnBlock {
    rows: usize,
    cols: usize,
    shaped: bool,
    columns: Vec<Column>,
}

impl ColumnBlock {
    /// An empty, unshaped block.
    pub fn new() -> Self {
        ColumnBlock::default()
    }

    /// Shape the block for a VG with `rows × cols` output cells, clearing
    /// any previous data while keeping buffer capacity, and reserving room
    /// for `capacity` positions per column.  Batched VG implementations call
    /// this before writing; the generic fallback shapes implicitly from the
    /// first generated position.
    pub fn reset(&mut self, rows: usize, cols: usize, capacity: usize) {
        self.rows = rows;
        self.cols = cols;
        self.shaped = true;
        let needed = rows * cols;
        self.columns.truncate(needed);
        for col in &mut self.columns {
            col.clear();
            col.reserve(capacity);
        }
        while self.columns.len() < needed {
            let mut col = Column::default();
            col.reserve(capacity);
            self.columns.push(col);
        }
    }

    /// VG output rows per position (0 until shaped).
    pub fn rows_per_pos(&self) -> usize {
        self.rows
    }

    /// VG output columns per row (0 until shaped).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the block has been shaped (by [`ColumnBlock::reset`] or a
    /// first [`ColumnBlock::push_position`]).
    pub fn is_shaped(&self) -> bool {
        self.shaped
    }

    /// Number of materialized positions (taken from the first column; use
    /// [`ColumnBlock::validate`] to guarantee all columns agree).
    pub fn num_positions(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// The column for VG output cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is outside the block's shape.
    pub fn column(&self, row: usize, col: usize) -> &Column {
        assert!(row < self.rows && col < self.cols, "cell outside VG shape");
        &self.columns[row * self.cols + col]
    }

    /// Mutable access to the column for VG output cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is outside the block's shape.
    pub fn column_mut(&mut self, row: usize, col: usize) -> &mut Column {
        assert!(row < self.rows && col < self.cols, "cell outside VG shape");
        &mut self.columns[row * self.cols + col]
    }

    /// Append one position from a row-wise VG output table (the generic
    /// fallback path for VG functions without a native batched
    /// implementation).  The first push shapes the block; later pushes must
    /// match that shape — a VG whose output row count varies across
    /// positions is a contract violation and errors here.
    pub fn push_position(&mut self, tuples: &[Tuple]) -> Result<()> {
        if !self.shaped {
            let cols = tuples.first().map_or(0, Tuple::arity);
            if tuples.iter().any(|t| t.arity() != cols) {
                return Err(Error::Invalid(
                    "VG output rows have differing arity within one invocation".into(),
                ));
            }
            self.reset(tuples.len(), cols, 0);
        } else if tuples.len() != self.rows {
            return Err(Error::Invalid(format!(
                "VG invocation produced {} output rows at a later block position but {} at \
                 the start of the block; the executor requires a fixed, seed-independent row \
                 count per parameter row",
                tuples.len(),
                self.rows
            )));
        }
        for (r, tuple) in tuples.iter().enumerate() {
            if tuple.arity() != self.cols {
                return Err(Error::Invalid(format!(
                    "VG output row has {} columns but the block is shaped for {}",
                    tuple.arity(),
                    self.cols
                )));
            }
            for (c, value) in tuple.values().iter().enumerate() {
                self.columns[r * self.cols + c].push_value(value);
            }
        }
        Ok(())
    }

    /// Validate the block holds exactly `num_values` positions in every
    /// column — the once-per-block shape check that replaced the row path's
    /// per-position validation.
    pub fn validate(&self, num_values: usize) -> Result<()> {
        if !self.shaped {
            if num_values == 0 {
                return Ok(());
            }
            return Err(Error::Invalid(format!(
                "batched VG generation left the block unshaped ({num_values} positions \
                 requested)"
            )));
        }
        for (i, col) in self.columns.iter().enumerate() {
            if col.len() != num_values {
                return Err(Error::Invalid(format!(
                    "columnar block cell ({}, {}) holds {} positions, expected {num_values}; \
                     the batched VG implementation wrote ragged columns",
                    i / self.cols.max(1),
                    i % self.cols.max(1),
                    col.len()
                )));
            }
        }
        Ok(())
    }

    /// The boxed value of cell `(row, col)` at block position `pos`.
    pub fn value_at(&self, row: usize, col: usize, pos: usize) -> Result<Value> {
        self.check_cell(row, col)?;
        Ok(self.columns[row * self.cols + col].value_at(pos))
    }

    /// Materialize cell `(row, col)` across all positions as boxed values —
    /// the bundle-set boundary.
    pub fn values_out(&self, row: usize, col: usize) -> Result<Vec<Value>> {
        self.check_cell(row, col)?;
        Ok(self.columns[row * self.cols + col].values_out())
    }

    fn check_cell(&self, row: usize, col: usize) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(Error::Invalid(format!(
                "VG output cell ({row}, {col}) outside the block shape {}x{}",
                self.rows, self.cols
            )));
        }
        Ok(())
    }

    /// Logical bytes materialized into the block's buffers.
    pub fn data_bytes(&self) -> usize {
        self.columns.iter().map(Column::data_bytes).sum()
    }

    /// Clear all data and the shape, keeping column buffers (and their
    /// capacity) for reuse by the next block.
    pub fn clear(&mut self) {
        self.rows = 0;
        self.cols = 0;
        self.shaped = false;
        for col in &mut self.columns {
            col.clear();
        }
    }

    /// Append this block's wire encoding to `out`: the shape header
    /// followed by every cell's [`Column::encode_wire`] (typed buffers,
    /// dictionary arenas, null bitmaps) in row-major order.  Only the
    /// shaped `rows × cols` cells travel; surplus cleared pool columns do
    /// not.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        out.push(u8::from(self.shaped));
        out.extend_from_slice(&(self.rows as u32).to_le_bytes());
        out.extend_from_slice(&(self.cols as u32).to_le_bytes());
        for column in &self.columns[..self.rows * self.cols] {
            column.encode_wire(out);
        }
    }

    /// Decode a block from `buf` at `*pos`, advancing `*pos`.  Truncated or
    /// corrupt input returns a typed [`Error::Invalid`].
    pub fn decode_wire(buf: &[u8], pos: &mut usize) -> Result<ColumnBlock> {
        let header = buf
            .get(*pos..*pos + 9)
            .ok_or_else(|| Error::Invalid("truncated column-block encoding".into()))?;
        let shaped = match header[0] {
            0 => false,
            1 => true,
            other => {
                return Err(Error::Invalid(format!(
                    "corrupt column-block encoding: shape flag {other}"
                )))
            }
        };
        let rows = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes")) as usize;
        let cols = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes")) as usize;
        *pos += 9;
        // Every encoded column costs at least 9 bytes (length, word count,
        // type tag), so a shape claiming more cells than the remaining
        // bytes could possibly hold is corrupt — rejected before any
        // per-cell allocation.
        let cells = rows
            .checked_mul(cols)
            .filter(|&n| n <= buf.len().saturating_sub(*pos) / 9 + 1)
            .ok_or_else(|| {
                Error::Invalid("corrupt column-block encoding: shape overflow".into())
            })?;
        let mut columns = Vec::with_capacity(cells);
        for _ in 0..cells {
            columns.push(Column::decode_wire(buf, pos)?);
        }
        Ok(ColumnBlock {
            rows,
            cols,
            shaped,
            columns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_columns_round_trip() {
        let mut col = Column::default();
        col.push_f64(1.5);
        col.push_f64(-0.0);
        col.push_f64(f64::NAN);
        assert_eq!(col.len(), 3);
        assert_eq!(col.data_type(), Some(DataType::Float64));
        assert_eq!(col.value_at(0), Value::Float64(1.5));
        // Bit-exact storage: -0.0 and NaN survive untouched.
        match col.value_at(1) {
            Value::Float64(x) => assert_eq!(x.to_bits(), (-0.0f64).to_bits()),
            other => panic!("{other:?}"),
        }
        match col.value_at(2) {
            Value::Float64(x) => assert!(x.is_nan()),
            other => panic!("{other:?}"),
        }
        assert_eq!(col.f64_slice().unwrap().len(), 3);
        assert_eq!(col.data_bytes(), 24);
    }

    #[test]
    fn utf8_columns_intern_per_distinct_string() {
        let mut col = Column::default();
        for s in ["ship", "truck", "ship", "air", "ship"] {
            col.push_str(s);
        }
        match col.data() {
            ColumnData::Utf8(u) => {
                assert_eq!(u.distinct(), 3, "equal strings share one arena entry");
                assert_eq!(u.len(), 5);
                assert_eq!(u.str_at(0), "ship");
                assert_eq!(u.str_at(2), "ship");
                assert_eq!(u.str_at(3), "air");
                // Boundary clones are refcount bumps on the same handle.
                assert!(Arc::ptr_eq(u.handle_at(0), u.handle_at(2)));
            }
            other => panic!("{other:?}"),
        }
        let out = col.values_out();
        assert_eq!(out[1], Value::str("truck"));
        assert_eq!(out[4], Value::str("ship"));
    }

    #[test]
    fn null_bitmap_tracks_positions() {
        let mut col = Column::default();
        col.push_null();
        col.push_i64(7);
        col.push_null();
        assert!(col.nulls().any());
        assert_eq!(col.value_at(0), Value::Null);
        assert_eq!(col.value_at(1), Value::Int64(7));
        assert_eq!(col.value_at(2), Value::Null);
        assert_eq!(
            col.values_out(),
            vec![Value::Null, Value::Int64(7), Value::Null]
        );
        assert!(
            col.i64_slice().is_none(),
            "nullable columns have no raw slice"
        );

        // A bitmap past one word still reads correctly.
        let mut bm = NullBitmap::default();
        bm.set(70);
        assert!(bm.get(70));
        assert!(!bm.get(69));
        assert!(!bm.get(1000));
    }

    #[test]
    fn mixed_cells_demote_to_boxed_values() {
        let mut col = Column::default();
        col.push_i64(1);
        col.push_value(&Value::str("two"));
        col.push_null();
        assert_eq!(col.data_type(), None);
        assert_eq!(
            col.values_out(),
            vec![Value::Int64(1), Value::str("two"), Value::Null]
        );
        // Later pushes append to the existing Mixed store (no per-push
        // re-collection); typed fast-path pushes land there too.
        col.push_f64(4.5);
        col.push_bool(true);
        assert!(matches!(col.data(), ColumnData::Mixed(v) if v.len() == 5));
        assert_eq!(col.value_at(3), Value::Float64(4.5));
        assert_eq!(col.value_at(4), Value::Bool(true));
    }

    #[test]
    fn cleared_columns_retype_for_the_next_blocks_value_type() {
        // The pool-recycling contract: clear() keeps a column's type for
        // capacity reuse, but an *empty* column must accept whatever type
        // the next stream holds — a buffer last used by a Float64 stream
        // may be handed to a string-category Discrete stream, and vice
        // versa.
        let mut col = Column::default();
        col.push_f64(1.0);
        col.clear();
        let id = col
            .intern_utf8("ship")
            .expect("empty column retypes to Utf8");
        col.push_utf8_id(id).unwrap();
        col.push_str("air");
        assert_eq!(col.data_type(), Some(DataType::Utf8));
        assert_eq!(
            col.values_out(),
            vec![Value::str("ship"), Value::str("air")]
        );

        // And back: Utf8 -> empty -> numeric stays a typed buffer, never
        // Mixed.
        col.clear();
        col.push_f64(2.5);
        col.push_f64(3.5);
        assert_eq!(col.data_type(), Some(DataType::Float64));
        assert_eq!(col.f64_slice(), Some(&[2.5, 3.5][..]));

        // Non-empty columns still refuse cross-type interning.
        assert!(col.intern_utf8("nope").is_err());

        // A buffer demoted to Mixed by a heterogeneous stream also recovers
        // a typed buffer once cleared — Mixed is never sticky across blocks.
        col.clear();
        col.push_i64(1);
        col.push_str("mix");
        assert!(matches!(col.data(), ColumnData::Mixed(_)));
        col.clear();
        col.push_f64(9.0);
        assert_eq!(col.data_type(), Some(DataType::Float64));
        assert_eq!(col.f64_slice(), Some(&[9.0][..]));
    }

    #[test]
    fn blocks_shape_from_the_first_row_push_and_reject_ragged_shapes() {
        let mut block = ColumnBlock::new();
        assert!(!block.is_shaped());
        block
            .push_position(&[
                Tuple::from_iter_values([Value::Int64(0), Value::Float64(1.0)]),
                Tuple::from_iter_values([Value::Int64(1), Value::Float64(2.0)]),
            ])
            .unwrap();
        assert!(block.is_shaped());
        assert_eq!((block.rows_per_pos(), block.cols()), (2, 2));
        block
            .push_position(&[
                Tuple::from_iter_values([Value::Int64(0), Value::Float64(3.0)]),
                Tuple::from_iter_values([Value::Int64(1), Value::Float64(4.0)]),
            ])
            .unwrap();
        block.validate(2).unwrap();
        assert_eq!(block.value_at(1, 1, 0).unwrap(), Value::Float64(2.0));
        assert_eq!(
            block.values_out(0, 1).unwrap(),
            vec![Value::Float64(1.0), Value::Float64(3.0)]
        );
        assert!(block.value_at(2, 0, 0).is_err(), "cell outside shape");

        // A position with a different row count is the VG-contract violation.
        let err = block
            .push_position(&[Tuple::from_iter_values([
                Value::Int64(0),
                Value::Float64(9.0),
            ])])
            .unwrap_err();
        assert!(err
            .to_string()
            .contains("fixed, seed-independent row count"));
    }

    #[test]
    fn validate_checks_uniform_lengths() {
        let mut block = ColumnBlock::new();
        block.reset(1, 2, 4);
        block.column_mut(0, 0).push_f64(1.0);
        block.column_mut(0, 1).push_f64(2.0);
        block.column_mut(0, 0).push_f64(3.0);
        assert!(block.validate(2).is_err(), "ragged columns must be caught");
        block.column_mut(0, 1).push_f64(4.0);
        block.validate(2).unwrap();
        assert!(block.validate(3).is_err());

        // Unshaped blocks validate only at zero positions.
        let empty = ColumnBlock::new();
        empty.validate(0).unwrap();
        assert!(empty.validate(1).is_err());
    }

    #[test]
    fn wire_codec_round_trips_every_column_type_bit_exactly() {
        let mut block = ColumnBlock::new();
        block.reset(2, 3, 4);
        for pos in 0..4 {
            block.column_mut(0, 0).push_i64(pos as i64 - 2);
            block.column_mut(0, 1).push_f64(f64::from_bits(
                0x7ff8_0000_0000_0001u64.wrapping_add(pos as u64), // NaN payloads
            ));
            block.column_mut(0, 2).push_bool(pos % 2 == 0);
            block
                .column_mut(1, 0)
                .push_str(["ship", "truck", "ship", "air"][pos]);
            if pos == 1 {
                block.column_mut(1, 1).push_null();
            } else {
                block.column_mut(1, 1).push_f64(-0.0);
            }
            // A heterogeneous (Mixed) cell.
            block.column_mut(1, 2).push_value(
                &[
                    Value::Int64(7),
                    Value::str("x"),
                    Value::Null,
                    Value::Float64(2.5),
                ][pos],
            );
        }
        block.validate(4).unwrap();

        let mut buf = Vec::new();
        block.encode_wire(&mut buf);
        let mut pos = 0;
        let decoded = ColumnBlock::decode_wire(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len(), "decode must consume the whole encoding");
        assert_eq!(
            (decoded.rows_per_pos(), decoded.cols(), decoded.is_shaped()),
            (2, 3, true)
        );
        decoded.validate(4).unwrap();
        for r in 0..2 {
            for c in 0..3 {
                let a = block.column(r, c);
                let b = decoded.column(r, c);
                assert_eq!(a.data_type(), b.data_type(), "cell ({r},{c})");
                for i in 0..4 {
                    match (a.value_at(i), b.value_at(i)) {
                        (Value::Float64(x), Value::Float64(y)) => {
                            assert_eq!(x.to_bits(), y.to_bits(), "cell ({r},{c}) pos {i}")
                        }
                        (x, y) => assert_eq!(x, y, "cell ({r},{c}) pos {i}"),
                    }
                }
            }
        }
        // The intern dictionary survives: distinct counts match.
        match (block.column(1, 0).data(), decoded.column(1, 0).data()) {
            (ColumnData::Utf8(a), ColumnData::Utf8(b)) => assert_eq!(a.distinct(), b.distinct()),
            other => panic!("expected Utf8 cells, got {other:?}"),
        }

        // Truncation anywhere is a typed error, never a panic.
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(ColumnBlock::decode_wire(&buf[..cut], &mut pos).is_err());
        }
        // Corrupt type tags and shape flags are rejected.
        let mut corrupt = buf.clone();
        corrupt[0] = 9;
        assert!(ColumnBlock::decode_wire(&corrupt, &mut 0).is_err());
    }

    #[test]
    fn wire_codec_handles_empty_and_unshaped_blocks() {
        let empty = ColumnBlock::new();
        let mut buf = Vec::new();
        empty.encode_wire(&mut buf);
        let mut pos = 0;
        let decoded = ColumnBlock::decode_wire(&buf, &mut pos).unwrap();
        assert!(!decoded.is_shaped());
        assert_eq!(decoded.num_positions(), 0);

        // A cleared pool buffer with surplus columns encodes only its shape.
        let mut pooled = ColumnBlock::new();
        pooled.reset(2, 2, 4);
        pooled.clear();
        pooled.reset(1, 1, 0);
        pooled.column_mut(0, 0).push_i64(5);
        let mut buf = Vec::new();
        pooled.encode_wire(&mut buf);
        let decoded = ColumnBlock::decode_wire(&buf, &mut 0).unwrap();
        assert_eq!((decoded.rows_per_pos(), decoded.cols()), (1, 1));
        assert_eq!(decoded.value_at(0, 0, 0).unwrap(), Value::Int64(5));
    }

    #[test]
    fn clear_keeps_shape_capacity_but_no_data() {
        let mut block = ColumnBlock::new();
        block.reset(1, 1, 8);
        for i in 0..8 {
            block.column_mut(0, 0).push_i64(i);
        }
        block.column_mut(0, 0).push_value(&Value::str("bleed?"));
        assert!(block.data_bytes() > 0);
        block.clear();
        assert!(!block.is_shaped());
        assert_eq!(block.num_positions(), 0);
        assert_eq!(block.data_bytes(), 0);
        // Reshaping reuses the cleared column; no stale values appear.
        block.reset(1, 1, 4);
        block.column_mut(0, 0).push_i64(42);
        block.validate(1).unwrap();
        assert_eq!(block.values_out(0, 0).unwrap(), vec![Value::Int64(42)]);
    }
}

#[cfg(test)]
mod null_mask_tests {
    use super::*;

    /// Satellite check: the sparse bitmap's packed view must be exact for
    /// block lengths that are not a multiple of 64.
    #[test]
    fn null_mask_handles_non_multiple_of_64_lengths() {
        let mut col = Column::default();
        for i in 0..70 {
            if i % 7 == 0 {
                col.push_null();
            } else {
                col.push_f64(i as f64);
            }
        }
        let mask = col.null_mask();
        assert_eq!(mask.len(), 70);
        for i in 0..70 {
            assert_eq!(mask.get(i), i % 7 == 0, "lane {i}");
        }
        assert_eq!(mask.count(), 10);
    }

    #[test]
    fn null_mask_zero_pads_words_the_sparse_bitmap_never_allocated() {
        // Nulls only in the first 64 positions: the bitmap stores one word,
        // but a 130-position mask needs three.
        let mut bm = NullBitmap::default();
        bm.set(3);
        let mask = bm.to_mask(130);
        assert_eq!(mask.words().len(), 3);
        assert!(mask.get(3));
        assert_eq!(mask.count(), 1);
        assert!((0..130).filter(|&i| mask.get(i)).eq(std::iter::once(3)));
    }

    #[test]
    fn null_mask_drops_stray_bits_beyond_the_logical_length() {
        // A bitmap that once covered 100 positions, reused for a 65-position
        // view: bits at 65..100 must not leak into the trailing word.
        let mut bm = NullBitmap::default();
        bm.set(64);
        bm.set(70);
        bm.set(99);
        let mask = bm.to_mask(65);
        assert_eq!(mask.len(), 65);
        assert_eq!(mask.count(), 1, "only position 64 is inside the view");
        assert!(mask.get(64));
        let empty = bm.to_mask(64);
        assert_eq!(empty.count(), 0, "single-word view holds no set bits");
    }

    #[test]
    fn extend_f64_zeroed_appends_writable_slots() {
        let mut col = Column::default();
        {
            let slots = col.extend_f64_zeroed(3).expect("fresh column retypes");
            assert_eq!(slots, &[0.0, 0.0, 0.0]);
            slots[1] = 2.5;
        }
        assert_eq!(col.len(), 3);
        assert_eq!(col.value_at(1), Value::Float64(2.5));
        // Appending extends, not overwrites.
        col.extend_f64_zeroed(2).unwrap();
        assert_eq!(col.len(), 5);
        // A non-Float64 column refuses and keeps its data intact.
        let mut s = Column::default();
        s.push_str("a");
        assert!(s.extend_f64_zeroed(4).is_none());
        assert_eq!(s.len(), 1);
    }
}
