//! Durable heap files: checksummed, slot-aligned page records on disk.
//!
//! A [`HeapFile`] is the persistence unit under the pager: an append-only
//! file of page records, each independently validated by a FNV-1a checksum
//! so a torn or truncated write is *detected*, never silently decoded.
//! Layout (all integers little-endian):
//!
//! ```text
//! offset 0        magic "MCDH" | u16 version | u16 reserved | u64 page_count
//!                 (padded with zeros to SLOT_ALIGN)
//! slot i          u32 len | u64 fnv1a(payload) | payload bytes
//!                 (padded with zeros to the next SLOT_ALIGN boundary)
//! ```
//!
//! The header's `page_count` is written *after* a record's bytes land, so a
//! crash mid-append leaves a file whose committed prefix is still fully
//! valid — the torn tail sits past the counted slots and is ignored on
//! reopen.  [`HeapFile::open`] re-validates every counted record (bounds,
//! length, checksum) before serving any of them; a failure surfaces as a
//! typed [`Error::CorruptPage`] and the caller treats the file as absent.
//!
//! Because page payloads are hashed with the same FNV-1a the [`Page`]
//! content hash uses, a record's stored checksum *is* the page's content
//! hash — one number names the bytes on disk, in memory, and on the wire.
//!
//! [`Page`]: crate::page::Page

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::error::{Error, Result};
use crate::page::{fnv1a, FNV_OFFSET};
use crate::pager::DiskCounters;

/// The four bytes every heap file leads with.
pub const HEAP_MAGIC: [u8; 4] = *b"MCDH";
/// On-disk format version; bumped on any incompatible layout change.
pub const HEAP_VERSION: u16 = 1;
/// Records (and the header) start on this boundary.  4 KiB matches the
/// common filesystem block size, so a torn sector write damages at most
/// one record.
pub const SLOT_ALIGN: u64 = 4096;

/// Bytes of the fixed header fields (magic, version, reserved, page count).
const HEADER_LEN: usize = 4 + 2 + 2 + 8;
/// Bytes of a record's prefix (length, checksum).
const RECORD_PREFIX: usize = 4 + 8;

/// Round `offset` up to the next [`SLOT_ALIGN`] boundary.
fn align_up(offset: u64) -> u64 {
    offset.div_ceil(SLOT_ALIGN) * SLOT_ALIGN
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Io(format!("{what} {}: {e}", path.display()))
}

/// One committed record's location.
#[derive(Debug, Clone, Copy)]
struct Slot {
    offset: u64,
    len: u32,
}

struct FileState {
    file: File,
    slots: Vec<Slot>,
    /// Next append offset (always slot-aligned).
    end: u64,
}

/// An open heap file.  Shared behind an `Arc` by every disk-backed page it
/// holds; spill files delete themselves when the last reference drops,
/// store files persist.  All access goes through an internal lock — reads
/// seek, so they cannot interleave with appends.
pub struct HeapFile {
    path: PathBuf,
    state: Mutex<FileState>,
    counters: Arc<DiskCounters>,
    delete_on_drop: bool,
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("path", &self.path)
            .field("pages", &self.page_count())
            .field("ephemeral", &self.delete_on_drop)
            .finish()
    }
}

impl HeapFile {
    /// Create a fresh heap file at `path` (truncating any previous file),
    /// writing the empty header.  `ephemeral` files remove themselves from
    /// disk when dropped — the spill tier's lifetime contract.
    pub fn create(
        path: impl Into<PathBuf>,
        counters: Arc<DiskCounters>,
        ephemeral: bool,
    ) -> Result<HeapFile> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("create heap file", &path, e))?;
        let mut header = [0u8; SLOT_ALIGN as usize];
        header[..4].copy_from_slice(&HEAP_MAGIC);
        header[4..6].copy_from_slice(&HEAP_VERSION.to_le_bytes());
        // reserved = 0, page_count = 0.
        file.write_all(&header)
            .map_err(|e| io_err("write heap header", &path, e))?;
        Ok(HeapFile {
            state: Mutex::new(FileState {
                file,
                slots: Vec::new(),
                end: SLOT_ALIGN,
            }),
            path,
            counters,
            delete_on_drop: ephemeral,
        })
    }

    /// Open an existing heap file, validating the header and *every*
    /// committed record (bounds, stored length, checksum) before any page
    /// is served.  A truncated, torn, or bit-flipped file fails here with
    /// [`Error::CorruptPage`]; callers treat it as absent and re-fetch.
    pub fn open(path: impl Into<PathBuf>, counters: Arc<DiskCounters>) -> Result<HeapFile> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("open heap file", &path, e))?;
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header)
            .map_err(|_| Error::CorruptPage(format!("{}: truncated header", path.display())))?;
        if header[..4] != HEAP_MAGIC {
            return Err(Error::CorruptPage(format!(
                "{}: bad magic {:02x?}",
                path.display(),
                &header[..4]
            )));
        }
        let version = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes"));
        if version != HEAP_VERSION {
            return Err(Error::CorruptPage(format!(
                "{}: heap version {version}, this build speaks {HEAP_VERSION}",
                path.display()
            )));
        }
        let page_count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let file_len = file
            .metadata()
            .map_err(|e| io_err("stat heap file", &path, e))?
            .len();
        let mut slots = Vec::with_capacity(page_count.min(1 << 20) as usize);
        let mut offset = SLOT_ALIGN;
        for i in 0..page_count {
            let mut prefix = [0u8; RECORD_PREFIX];
            if offset + RECORD_PREFIX as u64 > file_len {
                return Err(Error::CorruptPage(format!(
                    "{}: record {i} starts past end of file",
                    path.display()
                )));
            }
            file.seek(SeekFrom::Start(offset))
                .and_then(|_| file.read_exact(&mut prefix))
                .map_err(|_| {
                    Error::CorruptPage(format!("{}: truncated record {i} prefix", path.display()))
                })?;
            let len = u32::from_le_bytes(prefix[..4].try_into().expect("4 bytes"));
            let checksum = u64::from_le_bytes(prefix[4..12].try_into().expect("8 bytes"));
            if offset + (RECORD_PREFIX as u64) + u64::from(len) > file_len {
                return Err(Error::CorruptPage(format!(
                    "{}: record {i} payload ({len} bytes) runs past end of file",
                    path.display()
                )));
            }
            let mut payload = vec![0u8; len as usize];
            file.read_exact(&mut payload).map_err(|_| {
                Error::CorruptPage(format!("{}: truncated record {i} payload", path.display()))
            })?;
            if fnv1a(FNV_OFFSET, &payload) != checksum {
                return Err(Error::CorruptPage(format!(
                    "{}: record {i} checksum mismatch (torn write?)",
                    path.display()
                )));
            }
            slots.push(Slot { offset, len });
            offset = align_up(offset + (RECORD_PREFIX as u64) + u64::from(len));
        }
        Ok(HeapFile {
            state: Mutex::new(FileState {
                file,
                slots,
                end: offset,
            }),
            path,
            counters,
            delete_on_drop: false,
        })
    }

    /// Append a page payload, returning its slot index.  The record bytes
    /// land before the header's page count moves, so a crash between the
    /// two leaves the committed prefix valid and the torn tail uncounted.
    pub fn append_page(&self, payload: &[u8]) -> Result<usize> {
        let mut state = self.state.lock().expect("heap file poisoned");
        let offset = state.end;
        let len = u32::try_from(payload.len())
            .map_err(|_| Error::Invalid("page payload exceeds u32 bytes".into()))?;
        let checksum = fnv1a(FNV_OFFSET, payload);
        let mut record = Vec::with_capacity(RECORD_PREFIX + payload.len());
        record.extend_from_slice(&len.to_le_bytes());
        record.extend_from_slice(&checksum.to_le_bytes());
        record.extend_from_slice(payload);
        state
            .file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| state.file.write_all(&record))
            .map_err(|e| io_err("append page to", &self.path, e))?;
        let slot = state.slots.len();
        state.slots.push(Slot { offset, len });
        state.end = align_up(offset + record.len() as u64);
        let count = state.slots.len() as u64;
        state
            .file
            .seek(SeekFrom::Start(8))
            .and_then(|_| state.file.write_all(&count.to_le_bytes()))
            .map_err(|e| io_err("update header of", &self.path, e))?;
        Ok(slot)
    }

    /// Read slot `slot` back, re-validating its checksum.  Counts one
    /// `disk_reads` (and the elapsed `disk_read_ns`) on the shared
    /// [`DiskCounters`].
    pub fn read_page(&self, slot: usize) -> Result<Vec<u8>> {
        let started = Instant::now();
        let mut state = self.state.lock().expect("heap file poisoned");
        let Slot { offset, len } = *state.slots.get(slot).ok_or_else(|| {
            Error::Invalid(format!(
                "heap file {} has no slot {slot}",
                self.path.display()
            ))
        })?;
        let mut record = vec![0u8; RECORD_PREFIX + len as usize];
        state
            .file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| state.file.read_exact(&mut record))
            .map_err(|e| io_err("read page from", &self.path, e))?;
        drop(state);
        let stored = u64::from_le_bytes(record[4..12].try_into().expect("8 bytes"));
        let payload = record.split_off(RECORD_PREFIX);
        if fnv1a(FNV_OFFSET, &payload) != stored {
            return Err(Error::CorruptPage(format!(
                "{}: slot {slot} checksum mismatch on read",
                self.path.display()
            )));
        }
        self.counters
            .count_read(started.elapsed().as_nanos() as u64);
        Ok(payload)
    }

    /// Flush file contents to stable storage (`fsync`).  The store tier
    /// syncs before renaming a table heap into place.
    pub fn sync(&self) -> Result<()> {
        let state = self.state.lock().expect("heap file poisoned");
        state
            .file
            .sync_all()
            .map_err(|e| io_err("sync", &self.path, e))
    }

    /// Number of committed page records.
    pub fn page_count(&self) -> usize {
        self.state.lock().expect("heap file poisoned").slots.len()
    }

    /// The length in bytes of slot `slot`'s payload.
    pub fn slot_len(&self, slot: usize) -> Option<usize> {
        self.state
            .lock()
            .expect("heap file poisoned")
            .slots
            .get(slot)
            .map(|s| s.len as usize)
    }

    /// Where this heap file lives.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for HeapFile {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Convenience for tests and the worker store tier: the self-describing
/// heap under `dir` for content hash `hash` (`<hash:016x>.heap`).
pub fn store_path(dir: &Path, hash: u64) -> PathBuf {
    dir.join(format!("{hash:016x}.heap"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> Arc<DiskCounters> {
        Arc::new(DiskCounters::default())
    }

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "mcdbr-heap-test-{}-{tag}-{n}.heap",
            std::process::id()
        ))
    }

    #[test]
    fn append_read_round_trip() {
        let path = temp_path("roundtrip");
        let stats = counters();
        let heap = HeapFile::create(&path, Arc::clone(&stats), true).unwrap();
        let a: Vec<u8> = (0..200u8).collect();
        let b = vec![7u8; SLOT_ALIGN as usize + 100]; // spans multiple slots
        assert_eq!(heap.append_page(&a).unwrap(), 0);
        assert_eq!(heap.append_page(&b).unwrap(), 1);
        assert_eq!(heap.read_page(0).unwrap(), a);
        assert_eq!(heap.read_page(1).unwrap(), b);
        assert_eq!(heap.page_count(), 2);
        assert_eq!(stats.snapshot().disk_reads, 2);
        assert!(heap.read_page(2).is_err(), "missing slot is typed");
    }

    #[test]
    fn reopen_revalidates_and_serves() {
        let path = temp_path("reopen");
        let payloads: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8 + 1; 64 * (i + 1)]).collect();
        {
            let heap = HeapFile::create(&path, counters(), false).unwrap();
            for p in &payloads {
                heap.append_page(p).unwrap();
            }
            heap.sync().unwrap();
        }
        let heap = HeapFile::open(&path, counters()).unwrap();
        assert_eq!(heap.page_count(), 5);
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(&heap.read_page(i).unwrap(), p);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ephemeral_files_vanish_on_drop() {
        let path = temp_path("ephemeral");
        {
            let heap = HeapFile::create(&path, counters(), true).unwrap();
            heap.append_page(&[1, 2, 3]).unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists(), "ephemeral heap must delete itself");
    }

    #[test]
    fn truncation_is_detected_on_open() {
        let path = temp_path("truncate");
        {
            let heap = HeapFile::create(&path, counters(), false).unwrap();
            heap.append_page(&vec![9u8; 500]).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Cut the file mid-payload: open must report a torn page.
        std::fs::write(&path, &full[..SLOT_ALIGN as usize + 40]).unwrap();
        match HeapFile::open(&path, counters()) {
            Err(Error::CorruptPage(msg)) => assert!(msg.contains("end of file"), "{msg}"),
            other => panic!("expected CorruptPage, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flips_are_detected_on_open() {
        let path = temp_path("bitflip");
        {
            let heap = HeapFile::create(&path, counters(), false).unwrap();
            heap.append_page(&vec![3u8; 300]).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = SLOT_ALIGN as usize + RECORD_PREFIX + 17; // inside the payload
        bytes[flip] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match HeapFile::open(&path, counters()) {
            Err(Error::CorruptPage(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected CorruptPage, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let path = temp_path("magic");
        {
            HeapFile::create(&path, counters(), false).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            HeapFile::open(&path, counters()),
            Err(Error::CorruptPage(_))
        ));
        bytes[0] = b'M';
        bytes[4] = HEAP_VERSION as u8 + 1;
        std::fs::write(&path, &bytes).unwrap();
        match HeapFile::open(&path, counters()) {
            Err(Error::CorruptPage(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("expected CorruptPage, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn uncounted_tail_is_ignored() {
        // A record written but not yet counted (crash between the two
        // header writes) must not poison reopen.
        let path = temp_path("tail");
        {
            let heap = HeapFile::create(&path, counters(), false).unwrap();
            heap.append_page(&[1u8; 100]).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Rewind the committed count to 0: the valid record becomes an
        // uncounted tail.
        bytes[8..16].copy_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let heap = HeapFile::open(&path, counters()).unwrap();
        assert_eq!(heap.page_count(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
