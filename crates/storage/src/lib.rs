//! Relational substrate for the MCDB-R reproduction.
//!
//! MCDB-R (Arumugam et al., VLDB 2010) is built on top of an ordinary
//! relational engine: parameter tables are plain SQL tables, uncertain tables
//! are *schemas plus a generation recipe*, and query plans consume and
//! produce streams of tuples (or tuple bundles).  This crate provides the
//! deterministic building blocks everything else stands on:
//!
//! * [`Value`] / [`DataType`] — the dynamically-typed cell values used by the
//!   engine (64-bit integers, 64-bit floats, booleans, strings, and NULL).
//! * [`Field`] / [`Schema`] — named, typed columns.
//! * [`Tuple`] — a row of values.
//! * [`Table`] — a paged relation: a schema plus sealed heap [`Page`]s and
//!   an open row tail, with the small amount of relational algebra (filter,
//!   project, sort, group) that the deterministic parts of an MCDB-R plan
//!   need.
//! * [`Page`] / [`BufferPool`] — the fixed-budget storage unit and the
//!   bounded LRU cache of decoded frames that scans pin pages through, so
//!   the resident working set is capped by `MCDBR_PAGE_CACHE` rather than
//!   by data size.
//! * [`HeapFile`] / [`Pager`] — the on-disk tier (`MCDBR_DATA_DIR`):
//!   sealed pages spill to checksummed, 4 KiB-aligned heap-file slots and
//!   the pool re-reads (and re-validates) them on miss, so the disk tier
//!   is as budget-transparent as the pool itself; a persistent
//!   content-addressed `store/` tier lets dispatch workers survive
//!   restarts with their table stores warm.
//! * [`Catalog`] — a named collection of tables (parameter tables and
//!   materialized intermediate results).
//!
//! Uncertainty never lives in this crate: random attributes are handled by
//! the `mcdbr-exec` tuple bundles and the `mcdbr-core` Gibbs tuples.  This
//! separation mirrors the paper's architecture, where the deterministic parts
//! of a plan are ordinary relational operators whose results can be
//! materialized and reused during replenishment runs (paper §9).

pub mod bufpool;
pub mod catalog;
pub mod column;
pub mod error;
pub mod heapfile;
pub mod page;
pub mod pager;
pub mod schema;
pub mod selvec;
pub mod table;
pub mod tuple;
pub mod value;

pub use bufpool::{BufferPool, PageCacheStats, PageGuard, DEFAULT_FRAME_BUDGET};
pub use catalog::Catalog;
pub use column::{Column, ColumnBlock, ColumnData, NullBitmap, Utf8Column};
pub use error::{Error, Result};
pub use heapfile::HeapFile;
pub use page::{Page, PAGE_BYTES};
pub use pager::{DiskCounters, Pager, PagerStats};
pub use schema::{Field, Schema};
pub use selvec::{CmpOp, Mask, SelVec};
pub use table::{Table, TableBuilder, TableIter};
pub use tuple::Tuple;
pub use value::{DataType, Value};
