//! Fixed-budget heap pages: the sealed, immutable unit of table storage.
//!
//! A [`Page`] holds a contiguous run of a table's rows encoded
//! columnar-within-page: a small header, a slot directory of per-column
//! payload offsets, then each column's [`Column::encode_wire`] bytes.  Pages
//! are sealed once and never mutated; a table is a vector of sealed pages
//! plus an open row tail (see `Table`).  Scans decode a page's rows through
//! the [`crate::bufpool::BufferPool`], which caches decoded frames under an
//! LRU budget, so the resident set stays bounded even when the table set is
//! not.
//!
//! Every page carries two identities:
//!
//! * a process-unique `page_id` (allocation order) — the buffer-pool frame
//!   key, never serialized;
//! * a FNV-1a `content_hash` over the encoded bytes — stable across
//!   encode/decode round trips and across processes, the unit the
//!   content-addressed dispatch protocol sums into per-table hashes.
//!
//! Encoded layout (all integers little-endian):
//!
//! ```text
//! u32 num_cols | u32 num_rows | u32 end_offset[num_cols] | column payloads
//! ```
//!
//! `end_offset[i]` is the byte offset one past column `i`'s payload,
//! relative to the start of the payload region — a slot directory that lets
//! a reader validate (or skip to) any column without decoding its
//! predecessors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::column::Column;
use crate::error::{Error, Result};
use crate::heapfile::HeapFile;
use crate::tuple::Tuple;
use crate::value::Value;

/// Target encoded payload size of a sealed page, in bytes.
///
/// Sealing is greedy: rows accumulate until their estimated encoded size
/// ([`estimate_row_bytes`]) reaches the budget, so a page holds at least one
/// row no matter how wide.  8 KiB keeps a few thousand pages under the
/// default frame budget while still amortizing per-page overhead.
pub const PAGE_BYTES: usize = 8 * 1024;

/// FNV-1a 64-bit offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into a running FNV-1a 64-bit hash.
pub(crate) fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Process-unique page id allocator.  Ids are frame keys, not identities:
/// they are never serialized, and two pages with equal bytes but different
/// ids are equal pages occupying distinct buffer-pool frames.
static NEXT_PAGE_ID: AtomicU64 = AtomicU64::new(1);

/// Rough encoded size of one value, used by the greedy sealer.  Slightly
/// over-counts (dictionary-encoded strings share arena bytes) which only
/// makes pages smaller than the budget, never larger than intended.
pub fn value_cost(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Int64(_) | Value::Float64(_) => 9,
        Value::Bool(_) => 2,
        Value::Utf8(s) => 5 + s.len(),
    }
}

/// Rough encoded size of one row: the sum of its value costs.
pub fn estimate_row_bytes(row: &Tuple) -> usize {
    row.values().iter().map(value_cost).sum()
}

/// Encode `rows` (each of arity `num_cols`) into the page byte layout.
/// Shared by [`Page::seal`] and the table-tail content hash, so a tail
/// sealed later hashes identically to the page it becomes.
pub(crate) fn encode_page_bytes(num_cols: usize, rows: &[Tuple]) -> Vec<u8> {
    let mut columns: Vec<Column> = (0..num_cols).map(|_| Column::default()).collect();
    for row in rows {
        for (col, value) in columns.iter_mut().zip(row.values()) {
            col.push_value(value);
        }
    }
    let mut payload = Vec::new();
    let mut ends = Vec::with_capacity(num_cols);
    for col in &columns {
        col.encode_wire(&mut payload);
        ends.push(payload.len() as u32);
    }
    let mut out = Vec::with_capacity(8 + num_cols * 4 + payload.len());
    out.extend_from_slice(&(num_cols as u32).to_le_bytes());
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for end in ends {
        out.extend_from_slice(&end.to_le_bytes());
    }
    out.extend_from_slice(&payload);
    out
}

/// Where a sealed page's bytes wait between decodes.
#[derive(Debug, Clone)]
enum PageBytes {
    /// Resident: the default, and the only mode without a data dir.
    Memory(Arc<[u8]>),
    /// Spilled: the bytes live in a checksummed [`HeapFile`] record and
    /// are read back (and re-validated) on demand.  The heap file is kept
    /// alive by this reference, so a disk page can always load.
    Disk {
        file: Arc<HeapFile>,
        slot: usize,
        len: usize,
    },
}

/// One sealed, immutable page of table rows.
///
/// Cloning is cheap (the bytes are behind an [`Arc`], or on disk) and
/// preserves the page id, so catalog snapshots share buffer-pool frames
/// with the table they were cloned from.
#[derive(Debug, Clone)]
pub struct Page {
    id: u64,
    hash: u64,
    num_cols: u32,
    num_rows: u32,
    bytes: PageBytes,
}

impl PartialEq for Page {
    /// Content equality: ids are frame bookkeeping, not identity.  The
    /// 64-bit content hash (plus the byte length) stands in for the bytes
    /// themselves so disk-backed pages compare without I/O.
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.byte_len() == other.byte_len()
    }
}

impl Page {
    /// Seal `rows` (each of arity `num_cols`) into an immutable page with a
    /// fresh id.  The caller (the table layer) has already validated arity.
    pub fn seal(num_cols: usize, rows: &[Tuple]) -> Page {
        Page::adopt(
            num_cols as u32,
            rows.len() as u32,
            encode_page_bytes(num_cols, rows).into(),
        )
    }

    /// Rebuild a page from wire bytes, fully validating the encoding: the
    /// header, the slot directory, and every column payload are decoded
    /// once here, so later [`Page::decode_rows`] calls on an adopted page
    /// cannot fail.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Page> {
        let (num_cols, num_rows) = decode_header(&bytes)?;
        let page = Page::adopt(num_cols, num_rows, bytes.into());
        page.decode_rows()?;
        Ok(page)
    }

    fn adopt(num_cols: u32, num_rows: u32, bytes: Arc<[u8]>) -> Page {
        Page {
            id: NEXT_PAGE_ID.fetch_add(1, Ordering::Relaxed),
            hash: fnv1a(FNV_OFFSET, &bytes),
            num_cols,
            num_rows,
            bytes: PageBytes::Memory(bytes),
        }
    }

    /// The disk-backed twin of this page: same id, hash, and shape, bytes
    /// waiting in `file` at `slot`.  Only the pager calls this, *after*
    /// appending the identical bytes.
    pub(crate) fn spilled(&self, file: Arc<HeapFile>, slot: usize, len: usize) -> Page {
        Page {
            id: self.id,
            hash: self.hash,
            num_cols: self.num_cols,
            num_rows: self.num_rows,
            bytes: PageBytes::Disk { file, slot, len },
        }
    }

    /// The process-unique frame key.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// FNV-1a hash of the encoded bytes — the cross-process content identity.
    pub fn content_hash(&self) -> u64 {
        self.hash
    }

    /// Number of rows sealed into this page.
    pub fn num_rows(&self) -> usize {
        self.num_rows as usize
    }

    /// Arity of the sealed rows.
    pub fn num_cols(&self) -> usize {
        self.num_cols as usize
    }

    /// True when the bytes wait on disk rather than in memory.
    pub fn is_disk_backed(&self) -> bool {
        matches!(self.bytes, PageBytes::Disk { .. })
    }

    /// Encoded length in bytes (known without I/O in either mode).
    pub fn byte_len(&self) -> usize {
        match &self.bytes {
            PageBytes::Memory(b) => b.len(),
            PageBytes::Disk { len, .. } => *len,
        }
    }

    /// The encoded bytes, as shipped verbatim by `TableData` frames.  A
    /// memory page hands out its resident `Arc`; a disk page reads its
    /// heap record back (counting a disk read) and re-validates both the
    /// record checksum and this page's content hash, so a torn or stale
    /// record surfaces as [`Error::CorruptPage`] instead of wrong rows.
    pub fn load_bytes(&self) -> Result<Arc<[u8]>> {
        match &self.bytes {
            PageBytes::Memory(b) => Ok(Arc::clone(b)),
            PageBytes::Disk { file, slot, .. } => {
                let bytes = file.read_page(*slot)?;
                if fnv1a(FNV_OFFSET, &bytes) != self.hash {
                    return Err(Error::CorruptPage(format!(
                        "{}: slot {slot} bytes no longer match page hash",
                        file.path().display()
                    )));
                }
                Ok(bytes.into())
            }
        }
    }

    /// Decode every row of the page.  Pages built by [`Page::seal`] or
    /// validated by [`Page::from_bytes`] always decode; the error branch
    /// fires on bytes that skipped both constructors, or on a disk page
    /// whose heap record fails to load or validate.
    pub fn decode_rows(&self) -> Result<Vec<Tuple>> {
        let bytes = self.load_bytes()?;
        self.decode_rows_from(&bytes)
    }

    fn decode_rows_from(&self, bytes: &[u8]) -> Result<Vec<Tuple>> {
        let (num_cols, num_rows) = decode_header(bytes)?;
        if num_cols != self.num_cols || num_rows != self.num_rows {
            return Err(Error::Invalid(
                "corrupt page: header disagrees with page metadata".into(),
            ));
        }
        let num_cols = num_cols as usize;
        let dir_start = 8;
        let payload_start = dir_start + num_cols * 4;
        let mut columns = Vec::with_capacity(num_cols);
        let mut pos = payload_start;
        for i in 0..num_cols {
            let column = Column::decode_wire(bytes, &mut pos)?;
            if column.len() != self.num_rows as usize {
                return Err(Error::Invalid(
                    "corrupt page: column length disagrees with header".into(),
                ));
            }
            let end = dir_start + i * 4;
            let slot = u32::from_le_bytes(
                bytes[end..end + 4]
                    .try_into()
                    .expect("slot directory bounds checked by decode_header"),
            ) as usize;
            if pos - payload_start != slot {
                return Err(Error::Invalid(
                    "corrupt page: slot directory disagrees with column payload".into(),
                ));
            }
            columns.push(column);
        }
        if pos != bytes.len() {
            return Err(Error::Invalid("corrupt page: trailing bytes".into()));
        }
        let mut rows = Vec::with_capacity(self.num_rows as usize);
        for r in 0..self.num_rows as usize {
            rows.push(Tuple::new(columns.iter().map(|c| c.value_at(r)).collect()));
        }
        Ok(rows)
    }
}

/// Parse and bounds-check a page header, returning `(num_cols, num_rows)`.
fn decode_header(bytes: &[u8]) -> Result<(u32, u32)> {
    if bytes.len() < 8 {
        return Err(Error::Invalid("truncated page: missing header".into()));
    }
    let num_cols = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    let num_rows = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let dir_end = 8usize
        .checked_add(
            (num_cols as usize)
                .checked_mul(4)
                .ok_or_else(|| Error::Invalid("corrupt page: column count overflows".into()))?,
        )
        .ok_or_else(|| Error::Invalid("corrupt page: column count overflows".into()))?;
    if bytes.len() < dir_end {
        return Err(Error::Invalid(
            "truncated page: slot directory out of bounds".into(),
        ));
    }
    Ok((num_cols, num_rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::from_iter_values([
                    Value::Int64(i as i64),
                    Value::Float64(i as f64 * 0.5),
                    Value::str(format!("row-{i}")),
                ])
            })
            .collect()
    }

    #[test]
    fn seal_decode_identity() {
        let original = rows(37);
        let page = Page::seal(3, &original);
        assert_eq!(page.num_rows(), 37);
        assert_eq!(page.num_cols(), 3);
        assert_eq!(page.decode_rows().unwrap(), original);
    }

    #[test]
    fn empty_page_round_trips() {
        let page = Page::seal(2, &[]);
        assert_eq!(page.num_rows(), 0);
        assert_eq!(page.decode_rows().unwrap(), Vec::<Tuple>::new());
    }

    #[test]
    fn from_bytes_round_trip_preserves_hash() {
        let page = Page::seal(3, &rows(10));
        let rebuilt = Page::from_bytes(page.load_bytes().unwrap().to_vec()).unwrap();
        assert_eq!(rebuilt.content_hash(), page.content_hash());
        assert_ne!(
            rebuilt.id(),
            page.id(),
            "rebuilt page gets a fresh frame key"
        );
        assert_eq!(rebuilt, page, "equality is by content, not id");
        assert_eq!(rebuilt.decode_rows().unwrap(), page.decode_rows().unwrap());
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let page = Page::seal(3, &rows(4));
        let sealed = page.load_bytes().unwrap();
        assert!(Page::from_bytes(Vec::new()).is_err());
        assert!(Page::from_bytes(sealed[..6].to_vec()).is_err());
        // Flip a slot-directory byte: decode must notice the disagreement.
        let mut bytes = sealed.to_vec();
        bytes[9] ^= 0x5a;
        assert!(Page::from_bytes(bytes).is_err());
        // Truncate the payload mid-column.
        let mut bytes = sealed.to_vec();
        bytes.truncate(bytes.len() - 3);
        assert!(Page::from_bytes(bytes).is_err());
    }

    #[test]
    fn hash_ignores_id_and_tracks_content() {
        let a = Page::seal(3, &rows(5));
        let b = Page::seal(3, &rows(5));
        assert_ne!(a.id(), b.id());
        assert_eq!(a.content_hash(), b.content_hash());
        let c = Page::seal(3, &rows(6));
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn null_and_bool_values_round_trip() {
        let original = vec![
            Tuple::from_iter_values([Value::Null, Value::Bool(true)]),
            Tuple::from_iter_values([Value::Int64(7), Value::Null]),
        ];
        let page = Page::seal(2, &original);
        assert_eq!(page.decode_rows().unwrap(), original);
    }
}
