//! Paged relations: a schema plus sealed heap pages and an open row tail,
//! with the relational helpers the deterministic parts of an MCDB-R plan
//! need (filter, project, sort, group).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::bufpool::{BufferPool, PageGuard};
use crate::error::{Error, Result};
use crate::heapfile::HeapFile;
use crate::page::{encode_page_bytes, estimate_row_bytes, fnv1a, Page, FNV_OFFSET, PAGE_BYTES};
use crate::pager::Pager;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// A paged in-memory table.
///
/// Rows live in two places: a vector of sealed, immutable [`Page`]s (the
/// heap) and an open `tail` of rows not yet big enough to seal.  Scans read
/// page-at-a-time through a [`BufferPool`], so the decoded working set is
/// bounded by the pool's frame budget rather than by table size.  Cloning a
/// table is cheap — pages are `Arc`-backed and keep their ids, so catalog
/// snapshots share buffer-pool frames with their source.
///
/// Parameter tables (paper §2: `means(CID, m)`; Appendix D: `orders`,
/// `lineitem`) are `Table`s, as are materialized deterministic intermediate
/// results that the replenishment machinery (paper §9) re-reads instead of
/// recomputing.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    pages: Vec<Page>,
    paged_len: usize,
    tail: Vec<Tuple>,
    tail_bytes: usize,
    page_budget: usize,
    /// The spill heap this table's sealed pages land in when the global
    /// pager is active (`MCDBR_DATA_DIR`); created lazily on first seal.
    /// Pages keep their own `Arc` to the file, so clones and snapshots
    /// stay readable even after this table drops.
    heap: Option<Arc<HeapFile>>,
}

impl PartialEq for Table {
    /// Logical equality: same schema, same rows in order.  Physical layout
    /// (page boundaries, sealed-vs-tail split) does not participate.
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.len() == other.len()
            && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

/// Spill `page` through the global pager when disk mode is on, creating
/// the table's spill heap in `heap` lazily.  Any disk trouble (full disk,
/// unwritable dir) degrades to keeping the page in memory — spilling
/// changes where bytes wait, never whether a seal succeeds.
fn maybe_spill(page: Page, heap: &mut Option<Arc<HeapFile>>) -> Page {
    let Some(pager) = Pager::global() else {
        return page;
    };
    if page.is_disk_backed() {
        return page;
    }
    let file = match heap {
        Some(file) => Arc::clone(file),
        None => match pager.create_spill_heap() {
            Ok(file) => {
                *heap = Some(Arc::clone(&file));
                file
            }
            Err(_) => return page,
        },
    };
    pager.spill_page(&page, &file).unwrap_or(page)
}

/// Greedily seal `rows` into pages of at most ~`budget` estimated bytes,
/// spilling each sealed page to `heap` when the global pager is active.
fn seal_rows(
    num_cols: usize,
    rows: &[Tuple],
    budget: usize,
    heap: &mut Option<Arc<HeapFile>>,
) -> Vec<Page> {
    let mut pages = Vec::new();
    let mut start = 0;
    let mut bytes = 0usize;
    for (i, row) in rows.iter().enumerate() {
        let cost = estimate_row_bytes(row);
        if i > start && bytes + cost > budget {
            pages.push(maybe_spill(Page::seal(num_cols, &rows[start..i]), heap));
            start = i;
            bytes = 0;
        }
        bytes += cost;
    }
    if start < rows.len() {
        pages.push(maybe_spill(Page::seal(num_cols, &rows[start..]), heap));
    }
    pages
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Table {
            schema,
            pages: Vec::new(),
            paged_len: 0,
            tail: Vec::new(),
            tail_bytes: 0,
            page_budget: PAGE_BYTES,
            heap: None,
        }
    }

    /// Create a table from a schema and rows, validating arity.  Every row
    /// is sealed into pages (the default [`PAGE_BYTES`] budget), including
    /// the final partial page, so the layout is a pure function of the rows.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Result<Self> {
        Table::with_page_budget(schema, rows, PAGE_BYTES)
    }

    /// Like [`Table::new`] with an explicit page byte budget.  Tests and
    /// benches use tiny budgets to force many pages (and pool eviction)
    /// from small row counts.
    pub fn with_page_budget(schema: Schema, rows: Vec<Tuple>, budget: usize) -> Result<Self> {
        for row in &rows {
            if row.arity() != schema.len() {
                return Err(Error::ArityMismatch {
                    expected: schema.len(),
                    found: row.arity(),
                });
            }
        }
        let budget = budget.max(1);
        let mut heap = None;
        let pages = seal_rows(schema.len(), &rows, budget, &mut heap);
        Ok(Table {
            paged_len: rows.len(),
            schema,
            pages,
            tail: Vec::new(),
            tail_bytes: 0,
            page_budget: budget,
            heap,
        })
    }

    /// Reassemble a table from shipped parts: sealed pages (already
    /// validated by [`Page::from_bytes`]) plus tail rows.  The wire layer's
    /// table decode lands here, keeping page bytes — and therefore content
    /// hashes — identical on both ends.
    pub fn from_parts(schema: Schema, pages: Vec<Page>, tail: Vec<Tuple>) -> Result<Self> {
        for page in &pages {
            if page.num_cols() != schema.len() {
                return Err(Error::ArityMismatch {
                    expected: schema.len(),
                    found: page.num_cols(),
                });
            }
        }
        for row in &tail {
            if row.arity() != schema.len() {
                return Err(Error::ArityMismatch {
                    expected: schema.len(),
                    found: row.arity(),
                });
            }
        }
        // Wire-received pages arrive memory-backed; in disk mode they
        // spill like locally sealed ones, so a shipped table's resident
        // bytes are bounded the same way a local table's are.
        let mut heap = None;
        let pages = pages
            .into_iter()
            .map(|p| maybe_spill(p, &mut heap))
            .collect::<Vec<_>>();
        Ok(Table {
            paged_len: pages.iter().map(Page::num_rows).sum(),
            tail_bytes: tail.iter().map(estimate_row_bytes).sum(),
            schema,
            pages,
            tail,
            page_budget: PAGE_BYTES,
            heap,
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The sealed pages of the heap, in row order.
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// Rows appended since the last page was sealed.
    pub fn tail_rows(&self) -> &[Tuple] {
        &self.tail
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.paged_len + self.tail.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// FNV-1a hash identifying this table's content *as laid out*: schema,
    /// sealed page hashes in order, then the tail's page encoding.  Two
    /// tables holding equal rows in different page layouts hash differently
    /// — the hash names a physical table version for content-addressed
    /// shipping (the receiver rebuilds from the same page bytes, so hashes
    /// always agree across the wire), not a logical relation.
    pub fn content_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for field in self.schema.fields() {
            h = fnv1a(h, field.name.as_bytes());
            h = fnv1a(h, format!("{:?}", field.data_type).as_bytes());
        }
        for page in &self.pages {
            h = fnv1a(h, &page.content_hash().to_le_bytes());
        }
        if !self.tail.is_empty() {
            h = fnv1a(h, &encode_page_bytes(self.schema.len(), &self.tail));
        }
        h
    }

    /// Append a row after checking its arity.  The row lands in the open
    /// tail; once the tail's estimated bytes reach the page budget it is
    /// sealed into a fresh page.
    pub fn push(&mut self, row: Tuple) -> Result<()> {
        if row.arity() != self.schema.len() {
            return Err(Error::ArityMismatch {
                expected: self.schema.len(),
                found: row.arity(),
            });
        }
        self.tail_bytes += estimate_row_bytes(&row);
        self.tail.push(row);
        if self.tail_bytes >= self.page_budget {
            let page = maybe_spill(Page::seal(self.schema.len(), &self.tail), &mut self.heap);
            self.pages.push(page);
            self.paged_len += self.tail.len();
            self.tail.clear();
            self.tail_bytes = 0;
        }
        Ok(())
    }

    /// Spill every memory-backed sealed page through `pager` into a fresh
    /// heap file, returning how many pages moved.  The env-driven path
    /// does this automatically at seal time; this explicit form lets
    /// tests and benches run disk-backed tables against a private pager
    /// without touching the process environment.
    pub fn spill_with(&mut self, pager: &Pager) -> Result<usize> {
        if self.pages.iter().all(Page::is_disk_backed) {
            return Ok(0);
        }
        let heap = pager.create_spill_heap()?;
        let mut moved = 0;
        for page in &mut self.pages {
            if !page.is_disk_backed() {
                *page = pager.spill_page(page, &heap)?;
                moved += 1;
            }
        }
        self.heap = Some(heap);
        Ok(moved)
    }

    /// Bytes of sealed pages currently resident in memory.  Disk-backed
    /// pages contribute zero: their only resident form is the decoded
    /// buffer-pool frame, which the frame budget bounds.
    pub fn resident_sealed_bytes(&self) -> usize {
        self.pages
            .iter()
            .filter(|p| !p.is_disk_backed())
            .map(Page::byte_len)
            .sum()
    }

    /// Append many rows.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Tuple>) -> Result<()> {
        for row in rows {
            self.push(row)?;
        }
        Ok(())
    }

    /// Iterate over rows (owned), scanning page-at-a-time through the
    /// process-wide [`BufferPool::global`].
    pub fn iter(&self) -> TableIter<'_> {
        self.iter_with(BufferPool::global())
    }

    /// Like [`Table::iter`], but through an explicit pool — how tests pin
    /// eviction behaviour to a private pool with exact accounting.
    pub fn iter_with<'a>(&'a self, pool: &'a BufferPool) -> TableIter<'a> {
        TableIter {
            table: self,
            pool,
            next_page: 0,
            guard: None,
            row_idx: 0,
            tail_idx: 0,
        }
    }

    /// Materialize every row.  Helpers that inherently need the full
    /// relation (sort, group) go through this.
    fn collect_rows(&self) -> Vec<Tuple> {
        self.iter().collect()
    }

    /// The column at `name` as a vector of values.
    pub fn column(&self, name: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of(name)?;
        Ok(self.iter().map(|r| r.value(idx).clone()).collect())
    }

    /// The column at `name` as a vector of f64 (errors on non-numeric values).
    pub fn column_f64(&self, name: &str) -> Result<Vec<f64>> {
        let idx = self.schema.index_of(name)?;
        self.iter().map(|r| r.value(idx).as_f64()).collect()
    }

    /// Keep only the rows for which `pred` returns true.
    pub fn filter(&self, pred: impl Fn(&Tuple) -> bool) -> Table {
        let rows: Vec<Tuple> = self.iter().filter(|r| pred(r)).collect();
        Table::with_page_budget(self.schema.clone(), rows, self.page_budget)
            .expect("filtered rows keep their arity")
    }

    /// Project onto the named columns.
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let indices: Vec<usize> = names
            .iter()
            .map(|n| self.schema.index_of(n))
            .collect::<Result<_>>()?;
        let schema = self.schema.project(names)?;
        let rows = self.iter().map(|r| r.project(&indices)).collect();
        Table::with_page_budget(schema, rows, self.page_budget)
    }

    /// Sort rows by the named column, ascending, using the total value order.
    pub fn sort_by_column(&self, name: &str) -> Result<Table> {
        let idx = self.schema.index_of(name)?;
        let mut rows = self.collect_rows();
        rows.sort_by(|a, b| a.value(idx).cmp_total(b.value(idx)));
        Table::with_page_budget(self.schema.clone(), rows, self.page_budget)
    }

    /// Group rows by the named key column, returning `(key, rows)` pairs in
    /// key order.  Keys are compared with the total value order.
    pub fn group_by(&self, key: &str) -> Result<Vec<(Value, Vec<Tuple>)>> {
        let idx = self.schema.index_of(key)?;
        let mut groups: BTreeMap<OrdValue, Vec<Tuple>> = BTreeMap::new();
        for row in self.iter() {
            groups
                .entry(OrdValue(row.value(idx).clone()))
                .or_default()
                .push(row);
        }
        Ok(groups.into_iter().map(|(k, v)| (k.0, v)).collect())
    }

    /// Sum of a numeric column.
    pub fn sum(&self, name: &str) -> Result<f64> {
        Ok(self.column_f64(name)?.iter().sum())
    }

    /// Minimum of a numeric column.  Errors on an empty table.
    pub fn min(&self, name: &str) -> Result<f64> {
        let col = self.column_f64(name)?;
        col.into_iter()
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
            .ok_or_else(|| Error::InvalidOperation(format!("MIN over empty column {name}")))
    }

    /// Maximum of a numeric column.  Errors on an empty table.
    pub fn max(&self, name: &str) -> Result<f64> {
        let col = self.column_f64(name)?;
        col.into_iter()
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
            .ok_or_else(|| Error::InvalidOperation(format!("MAX over empty column {name}")))
    }

    /// Average of a numeric column.  Errors on an empty table.
    pub fn avg(&self, name: &str) -> Result<f64> {
        if self.is_empty() {
            return Err(Error::InvalidOperation(format!(
                "AVG over empty column {name}"
            )));
        }
        Ok(self.sum(name)? / self.len() as f64)
    }
}

impl<'a> IntoIterator for &'a Table {
    type Item = Tuple;
    type IntoIter = TableIter<'a>;

    fn into_iter(self) -> TableIter<'a> {
        self.iter()
    }
}

/// Row iterator over a table: pins one page at a time (the guard keeps the
/// current frame unevictable), then drains the open tail.  Rows come out
/// owned — page frames are shared cache entries, so handing out references
/// across pin boundaries is not possible.
pub struct TableIter<'a> {
    table: &'a Table,
    pool: &'a BufferPool,
    next_page: usize,
    guard: Option<PageGuard<'a>>,
    row_idx: usize,
    tail_idx: usize,
}

impl Iterator for TableIter<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some(guard) = &self.guard {
                if self.row_idx < guard.rows().len() {
                    let row = guard.rows()[self.row_idx].clone();
                    self.row_idx += 1;
                    return Some(row);
                }
                self.guard = None;
            }
            if self.next_page < self.table.pages.len() {
                let page = &self.table.pages[self.next_page];
                self.next_page += 1;
                self.row_idx = 0;
                // Sealed (or wire-validated) pages always decode; see
                // `Page::decode_rows`.
                self.guard = Some(self.pool.pin(page).expect("sealed page decodes"));
                continue;
            }
            if self.tail_idx < self.table.tail.len() {
                let row = self.table.tail[self.tail_idx].clone();
                self.tail_idx += 1;
                return Some(row);
            }
            return None;
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let consumed_pages: usize = self.table.pages[..self.next_page]
            .iter()
            .map(Page::num_rows)
            .sum();
        let remaining = self.table.len() - consumed_pages - self.tail_idx + {
            // Rows still unread in the currently pinned page.
            self.guard
                .as_ref()
                .map_or(0, |g| g.rows().len() - self.row_idx)
        };
        (remaining, Some(remaining))
    }
}

impl std::fmt::Debug for TableIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableIter")
            .field("next_page", &self.next_page)
            .field("row_idx", &self.row_idx)
            .field("tail_idx", &self.tail_idx)
            .finish()
    }
}

/// Wrapper giving [`Value`] the `Ord` needed for BTreeMap keys.
#[derive(Debug, Clone, PartialEq)]
struct OrdValue(Value);

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp_total(&other.0)
    }
}

/// Builder for constructing tables row by row with arity checking deferred
/// until `build()`.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl TableBuilder {
    /// Start a builder for the given schema.
    pub fn new(schema: Schema) -> Self {
        TableBuilder {
            schema,
            rows: Vec::new(),
        }
    }

    /// Add a row.
    pub fn row<I, V>(mut self, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        self.rows.push(Tuple::from_iter_values(values));
        self
    }

    /// Add a pre-built tuple.
    pub fn tuple(mut self, tuple: Tuple) -> Self {
        self.rows.push(tuple);
        self
    }

    /// Finish, validating every row's arity against the schema.
    pub fn build(self) -> Result<Table> {
        Table::new(self.schema, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn means_table() -> Table {
        // The §4.2 example: three customers with mean losses 3.0, 4.0, 5.0.
        TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
            .row([Value::Int64(1), Value::Float64(3.0)])
            .row([Value::Int64(2), Value::Float64(4.0)])
            .row([Value::Int64(3), Value::Float64(5.0)])
            .build()
            .unwrap()
    }

    fn wide_rows(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::from_iter_values([Value::Int64(i as i64), Value::Float64(i as f64)]))
            .collect()
    }

    #[test]
    fn build_and_len() {
        let t = means_table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.schema().names(), vec!["cid", "m"]);
        assert!(!t.is_empty());
    }

    #[test]
    fn arity_is_checked() {
        let schema = Schema::new(vec![Field::int64("a")]);
        let err = Table::new(schema.clone(), vec![Tuple::from_iter_values([1i64, 2i64])]);
        assert!(matches!(
            err,
            Err(Error::ArityMismatch {
                expected: 1,
                found: 2
            })
        ));
        let mut t = Table::empty(schema);
        assert!(t.push(Tuple::from_iter_values([1i64])).is_ok());
        assert!(t.push(Tuple::from_iter_values([1i64, 2i64])).is_err());
    }

    #[test]
    fn column_extraction() {
        let t = means_table();
        assert_eq!(t.column_f64("m").unwrap(), vec![3.0, 4.0, 5.0]);
        assert_eq!(t.column("cid").unwrap().len(), 3);
        assert!(t.column("nope").is_err());
    }

    #[test]
    fn filter_and_project() {
        let t = means_table();
        let schema = t.schema().clone();
        let filtered = t.filter(|row| row.get(&schema, "m").unwrap().as_f64().unwrap() > 3.5);
        assert_eq!(filtered.len(), 2);
        let projected = filtered.project(&["m"]).unwrap();
        assert_eq!(projected.schema().names(), vec!["m"]);
        assert_eq!(projected.column_f64("m").unwrap(), vec![4.0, 5.0]);
    }

    #[test]
    fn aggregates() {
        let t = means_table();
        assert_eq!(t.sum("m").unwrap(), 12.0);
        assert_eq!(t.min("m").unwrap(), 3.0);
        assert_eq!(t.max("m").unwrap(), 5.0);
        assert_eq!(t.avg("m").unwrap(), 4.0);
        let empty = Table::empty(Schema::new(vec![Field::float64("x")]));
        assert!(empty.min("x").is_err());
        assert!(empty.avg("x").is_err());
        assert_eq!(empty.sum("x").unwrap(), 0.0);
    }

    #[test]
    fn sorting() {
        let t = TableBuilder::new(Schema::new(vec![Field::float64("v")]))
            .row([Value::Float64(5.0)])
            .row([Value::Float64(1.0)])
            .row([Value::Float64(3.0)])
            .build()
            .unwrap();
        let sorted = t.sort_by_column("v").unwrap();
        assert_eq!(sorted.column_f64("v").unwrap(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn group_by_key_order() {
        let t = TableBuilder::new(Schema::new(vec![Field::utf8("grp"), Field::int64("v")]))
            .row([Value::str("b"), Value::Int64(1)])
            .row([Value::str("a"), Value::Int64(2)])
            .row([Value::str("b"), Value::Int64(3)])
            .build()
            .unwrap();
        let groups = t.group_by("grp").unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, Value::str("a"));
        assert_eq!(groups[0].1.len(), 1);
        assert_eq!(groups[1].0, Value::str("b"));
        assert_eq!(groups[1].1.len(), 2);
    }

    #[test]
    fn extend_rows() {
        let mut t = Table::empty(Schema::new(vec![Field::int64("x")]));
        t.extend((0..5).map(|i| Tuple::from_iter_values([i as i64])))
            .unwrap();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn tiny_budget_spans_many_pages() {
        let schema = Schema::new(vec![Field::int64("a"), Field::float64("b")]);
        let rows = wide_rows(100);
        let t = Table::with_page_budget(schema, rows.clone(), 64).unwrap();
        assert!(t.pages().len() > 10, "64-byte budget must split 100 rows");
        assert_eq!(t.len(), 100);
        assert_eq!(t.iter().collect::<Vec<_>>(), rows);
    }

    #[test]
    fn push_seals_pages_at_budget() {
        let schema = Schema::new(vec![Field::int64("a"), Field::float64("b")]);
        let mut t = Table::with_page_budget(schema, Vec::new(), 64).unwrap();
        for row in wide_rows(50) {
            t.push(row).unwrap();
        }
        assert!(!t.pages().is_empty(), "pushes past the budget seal pages");
        assert_eq!(t.len(), 50);
        assert_eq!(t.iter().collect::<Vec<_>>(), wide_rows(50));
    }

    #[test]
    fn logical_equality_ignores_layout() {
        let schema = Schema::new(vec![Field::int64("a"), Field::float64("b")]);
        let coarse = Table::new(schema.clone(), wide_rows(40)).unwrap();
        let fine = Table::with_page_budget(schema.clone(), wide_rows(40), 32).unwrap();
        assert_ne!(coarse.pages().len(), fine.pages().len());
        assert_eq!(coarse, fine, "equality is logical, not physical");
        assert_ne!(
            coarse.content_hash(),
            fine.content_hash(),
            "content hash names the physical layout"
        );
        let same = Table::new(schema, wide_rows(40)).unwrap();
        assert_eq!(coarse.content_hash(), same.content_hash());
    }

    #[test]
    fn from_parts_round_trips() {
        let schema = Schema::new(vec![Field::int64("a"), Field::float64("b")]);
        let mut t = Table::with_page_budget(schema.clone(), wide_rows(30), 64).unwrap();
        t.push(Tuple::from_iter_values([
            Value::Int64(99),
            Value::Float64(9.9),
        ]))
        .unwrap();
        let rebuilt = Table::from_parts(
            schema,
            t.pages()
                .iter()
                .map(|p| Page::from_bytes(p.load_bytes().unwrap().to_vec()).unwrap())
                .collect(),
            t.tail_rows().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, t);
        assert_eq!(rebuilt.content_hash(), t.content_hash());
    }

    #[test]
    fn explicit_spill_keeps_scans_bit_identical() {
        let root = std::env::temp_dir().join(format!("mcdbr-table-spill-{}", std::process::id()));
        let pager = Pager::new(&root).unwrap();
        let schema = Schema::new(vec![Field::int64("a"), Field::float64("b")]);
        let mut t = Table::with_page_budget(schema, wide_rows(100), 64).unwrap();
        let before: Vec<Tuple> = t.iter_with(&BufferPool::new(usize::MAX)).collect();
        let resident_before = t.resident_sealed_bytes();
        let moved = t.spill_with(&pager).unwrap();
        if resident_before > 0 {
            // Without MCDBR_DATA_DIR the pages started resident and all
            // moved; under a global pager they were already on disk.
            assert_eq!(moved, t.pages().len());
        }
        assert_eq!(t.resident_sealed_bytes(), 0, "spilled pages hold no bytes");
        assert!(t.pages().iter().all(Page::is_disk_backed));
        assert_eq!(t.spill_with(&pager).unwrap(), 0, "second spill is a no-op");
        let after: Vec<Tuple> = t.iter_with(&BufferPool::new(2)).collect();
        assert_eq!(before, after, "spilling must not change scan results");
        if moved > 0 {
            // Pages went through *this* pager (under a global pager they
            // were already on disk elsewhere, counted there instead).
            assert!(pager.stats().disk_reads > 0, "tiny pool re-read from disk");
        }
        assert_eq!(t.content_hash(), {
            let fresh = Table::with_page_budget(
                Schema::new(vec![Field::int64("a"), Field::float64("b")]),
                wide_rows(100),
                64,
            )
            .unwrap();
            fresh.content_hash()
        });
        drop(t);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn scans_through_private_pool_under_eviction() {
        let schema = Schema::new(vec![Field::int64("a"), Field::float64("b")]);
        let t = Table::with_page_budget(schema, wide_rows(100), 64).unwrap();
        let unbounded = BufferPool::new(usize::MAX);
        let tiny = BufferPool::new(2);
        let full: Vec<Tuple> = t.iter_with(&unbounded).collect();
        let evicting: Vec<Tuple> = t.iter_with(&tiny).collect();
        assert_eq!(full, evicting, "eviction must not change scan results");
        assert!(tiny.stats().pool_evictions > 0, "tiny pool must evict");
    }
}
