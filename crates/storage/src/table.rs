//! In-memory relations: a schema plus rows, with the relational helpers the
//! deterministic parts of an MCDB-R plan need (filter, project, sort, group).

use std::collections::BTreeMap;

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// An in-memory table.
///
/// Parameter tables (paper §2: `means(CID, m)`; Appendix D: `orders`,
/// `lineitem`) are `Table`s, as are materialized deterministic intermediate
/// results that the replenishment machinery (paper §9) re-reads instead of
/// recomputing.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Create a table from a schema and rows, validating arity.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Result<Self> {
        for row in &rows {
            if row.arity() != schema.len() {
                return Err(Error::ArityMismatch {
                    expected: schema.len(),
                    found: row.arity(),
                });
            }
        }
        Ok(Table { schema, rows })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row after checking its arity.
    pub fn push(&mut self, row: Tuple) -> Result<()> {
        if row.arity() != self.schema.len() {
            return Err(Error::ArityMismatch {
                expected: self.schema.len(),
                found: row.arity(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Append many rows.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Tuple>) -> Result<()> {
        for row in rows {
            self.push(row)?;
        }
        Ok(())
    }

    /// Iterate over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.rows.iter()
    }

    /// The column at `name` as a vector of values.
    pub fn column(&self, name: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of(name)?;
        Ok(self.rows.iter().map(|r| r.value(idx).clone()).collect())
    }

    /// The column at `name` as a vector of f64 (errors on non-numeric values).
    pub fn column_f64(&self, name: &str) -> Result<Vec<f64>> {
        let idx = self.schema.index_of(name)?;
        self.rows.iter().map(|r| r.value(idx).as_f64()).collect()
    }

    /// Keep only the rows for which `pred` returns true.
    pub fn filter(&self, pred: impl Fn(&Tuple) -> bool) -> Table {
        Table {
            schema: self.schema.clone(),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// Project onto the named columns.
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let indices: Vec<usize> = names
            .iter()
            .map(|n| self.schema.index_of(n))
            .collect::<Result<_>>()?;
        let schema = self.schema.project(names)?;
        let rows = self.rows.iter().map(|r| r.project(&indices)).collect();
        Ok(Table { schema, rows })
    }

    /// Sort rows by the named column, ascending, using the total value order.
    pub fn sort_by_column(&self, name: &str) -> Result<Table> {
        let idx = self.schema.index_of(name)?;
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| a.value(idx).cmp_total(b.value(idx)));
        Ok(Table {
            schema: self.schema.clone(),
            rows,
        })
    }

    /// Group rows by the named key column, returning `(key, rows)` pairs in
    /// key order.  Keys are compared with the total value order.
    pub fn group_by(&self, key: &str) -> Result<Vec<(Value, Vec<Tuple>)>> {
        let idx = self.schema.index_of(key)?;
        let mut groups: BTreeMap<OrdValue, Vec<Tuple>> = BTreeMap::new();
        for row in &self.rows {
            groups
                .entry(OrdValue(row.value(idx).clone()))
                .or_default()
                .push(row.clone());
        }
        Ok(groups.into_iter().map(|(k, v)| (k.0, v)).collect())
    }

    /// Sum of a numeric column.
    pub fn sum(&self, name: &str) -> Result<f64> {
        Ok(self.column_f64(name)?.iter().sum())
    }

    /// Minimum of a numeric column.  Errors on an empty table.
    pub fn min(&self, name: &str) -> Result<f64> {
        let col = self.column_f64(name)?;
        col.into_iter()
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
            .ok_or_else(|| Error::InvalidOperation(format!("MIN over empty column {name}")))
    }

    /// Maximum of a numeric column.  Errors on an empty table.
    pub fn max(&self, name: &str) -> Result<f64> {
        let col = self.column_f64(name)?;
        col.into_iter()
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
            .ok_or_else(|| Error::InvalidOperation(format!("MAX over empty column {name}")))
    }

    /// Average of a numeric column.  Errors on an empty table.
    pub fn avg(&self, name: &str) -> Result<f64> {
        if self.rows.is_empty() {
            return Err(Error::InvalidOperation(format!(
                "AVG over empty column {name}"
            )));
        }
        Ok(self.sum(name)? / self.rows.len() as f64)
    }
}

/// Wrapper giving [`Value`] the `Ord` needed for BTreeMap keys.
#[derive(Debug, Clone, PartialEq)]
struct OrdValue(Value);

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp_total(&other.0)
    }
}

/// Builder for constructing tables row by row with arity checking deferred
/// until `build()`.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl TableBuilder {
    /// Start a builder for the given schema.
    pub fn new(schema: Schema) -> Self {
        TableBuilder {
            schema,
            rows: Vec::new(),
        }
    }

    /// Add a row.
    pub fn row<I, V>(mut self, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        self.rows.push(Tuple::from_iter_values(values));
        self
    }

    /// Add a pre-built tuple.
    pub fn tuple(mut self, tuple: Tuple) -> Self {
        self.rows.push(tuple);
        self
    }

    /// Finish, validating every row's arity against the schema.
    pub fn build(self) -> Result<Table> {
        Table::new(self.schema, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn means_table() -> Table {
        // The §4.2 example: three customers with mean losses 3.0, 4.0, 5.0.
        TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
            .row([Value::Int64(1), Value::Float64(3.0)])
            .row([Value::Int64(2), Value::Float64(4.0)])
            .row([Value::Int64(3), Value::Float64(5.0)])
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_len() {
        let t = means_table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.schema().names(), vec!["cid", "m"]);
        assert!(!t.is_empty());
    }

    #[test]
    fn arity_is_checked() {
        let schema = Schema::new(vec![Field::int64("a")]);
        let err = Table::new(schema.clone(), vec![Tuple::from_iter_values([1i64, 2i64])]);
        assert!(matches!(
            err,
            Err(Error::ArityMismatch {
                expected: 1,
                found: 2
            })
        ));
        let mut t = Table::empty(schema);
        assert!(t.push(Tuple::from_iter_values([1i64])).is_ok());
        assert!(t.push(Tuple::from_iter_values([1i64, 2i64])).is_err());
    }

    #[test]
    fn column_extraction() {
        let t = means_table();
        assert_eq!(t.column_f64("m").unwrap(), vec![3.0, 4.0, 5.0]);
        assert_eq!(t.column("cid").unwrap().len(), 3);
        assert!(t.column("nope").is_err());
    }

    #[test]
    fn filter_and_project() {
        let t = means_table();
        let schema = t.schema().clone();
        let filtered = t.filter(|row| row.get(&schema, "m").unwrap().as_f64().unwrap() > 3.5);
        assert_eq!(filtered.len(), 2);
        let projected = filtered.project(&["m"]).unwrap();
        assert_eq!(projected.schema().names(), vec!["m"]);
        assert_eq!(projected.column_f64("m").unwrap(), vec![4.0, 5.0]);
    }

    #[test]
    fn aggregates() {
        let t = means_table();
        assert_eq!(t.sum("m").unwrap(), 12.0);
        assert_eq!(t.min("m").unwrap(), 3.0);
        assert_eq!(t.max("m").unwrap(), 5.0);
        assert_eq!(t.avg("m").unwrap(), 4.0);
        let empty = Table::empty(Schema::new(vec![Field::float64("x")]));
        assert!(empty.min("x").is_err());
        assert!(empty.avg("x").is_err());
        assert_eq!(empty.sum("x").unwrap(), 0.0);
    }

    #[test]
    fn sorting() {
        let t = TableBuilder::new(Schema::new(vec![Field::float64("v")]))
            .row([Value::Float64(5.0)])
            .row([Value::Float64(1.0)])
            .row([Value::Float64(3.0)])
            .build()
            .unwrap();
        let sorted = t.sort_by_column("v").unwrap();
        assert_eq!(sorted.column_f64("v").unwrap(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn group_by_key_order() {
        let t = TableBuilder::new(Schema::new(vec![Field::utf8("grp"), Field::int64("v")]))
            .row([Value::str("b"), Value::Int64(1)])
            .row([Value::str("a"), Value::Int64(2)])
            .row([Value::str("b"), Value::Int64(3)])
            .build()
            .unwrap();
        let groups = t.group_by("grp").unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, Value::str("a"));
        assert_eq!(groups[0].1.len(), 1);
        assert_eq!(groups[1].0, Value::str("b"));
        assert_eq!(groups[1].1.len(), 2);
    }

    #[test]
    fn extend_rows() {
        let mut t = Table::empty(Schema::new(vec![Field::int64("x")]));
        t.extend((0..5).map(|i| Tuple::from_iter_values([i as i64])))
            .unwrap();
        assert_eq!(t.len(), 5);
    }
}
