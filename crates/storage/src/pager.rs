//! The pager: disk-backed mode for sealed pages.
//!
//! When `MCDBR_DATA_DIR` names a directory, [`Pager::global`] returns a
//! process-wide pager rooted there and every page a table seals is
//! *spilled*: its bytes are appended to a per-table [`HeapFile`] under
//! `<root>/spill/` and the in-memory [`Page`] keeps only `(file, slot,
//! len)` plus its content hash.  The buffer pool's decoded frame is then
//! the only resident copy — evicting it really frees the memory, and a
//! later pin reads the bytes back through the checksummed heap record.
//! Without the variable the pager is absent and pages keep their sealed
//! bytes in memory, exactly as before.
//!
//! Spill heaps are ephemeral (deleted when the last page referencing them
//! drops); the dispatch worker's persistent table store writes *named*
//! heaps under `<root>/store/` via [`Pager::store_dir`] and survives
//! process restarts.
//!
//! Budget transparency is the invariant that makes all of this safe to
//! flip on in CI: any combination of `MCDBR_PAGE_CACHE` and
//! `MCDBR_DATA_DIR` produces bit-identical query results — the pager
//! changes where bytes wait, never what they decode to.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::error::{Error, Result};
use crate::heapfile::HeapFile;
use crate::page::Page;

/// A monotone snapshot of the pager's counters, windowed by subtraction
/// like every other counter family ([`PagerStats::since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Page records appended to heap files (spill + store tiers).
    pub pages_written: u64,
    /// Page payloads read back from disk.
    pub disk_reads: u64,
    /// Wall-clock nanoseconds spent in those reads.
    pub disk_read_ns: u64,
    /// Sealed bytes moved out of memory by spilling.
    pub spilled_bytes: u64,
}

impl PagerStats {
    /// The counter deltas accumulated since `baseline` was snapped.
    pub fn since(&self, baseline: &PagerStats) -> PagerStats {
        PagerStats {
            pages_written: self.pages_written - baseline.pages_written,
            disk_reads: self.disk_reads - baseline.disk_reads,
            disk_read_ns: self.disk_read_ns - baseline.disk_read_ns,
            spilled_bytes: self.spilled_bytes - baseline.spilled_bytes,
        }
    }
}

/// The atomic counters behind [`PagerStats`], shared (via `Arc`) between a
/// pager and every heap file it opens so reads count no matter which layer
/// triggers them.
#[derive(Debug, Default)]
pub struct DiskCounters {
    pages_written: AtomicU64,
    disk_reads: AtomicU64,
    disk_read_ns: AtomicU64,
    spilled_bytes: AtomicU64,
}

impl DiskCounters {
    /// Record one disk read taking `ns` nanoseconds.
    pub fn count_read(&self, ns: u64) {
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        self.disk_read_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record one page written, `spilled` of whose bytes left memory.
    pub fn count_write(&self, spilled: u64) {
        self.pages_written.fetch_add(1, Ordering::Relaxed);
        self.spilled_bytes.fetch_add(spilled, Ordering::Relaxed);
    }

    /// Snapshot the monotone counters.
    pub fn snapshot(&self) -> PagerStats {
        PagerStats {
            pages_written: self.pages_written.load(Ordering::Relaxed),
            disk_reads: self.disk_reads.load(Ordering::Relaxed),
            disk_read_ns: self.disk_read_ns.load(Ordering::Relaxed),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Disk-backed page storage rooted at a data directory.  See the module
/// docs for the global/spill/store split.
pub struct Pager {
    root: PathBuf,
    counters: Arc<DiskCounters>,
    next_spill: AtomicU64,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("root", &self.root)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Pager {
    /// A pager rooted at `root`, creating `root`, `root/spill`, and
    /// `root/store` as needed.  Multiple processes may share one root —
    /// spill file names embed the pid, and store files are content-named.
    pub fn new(root: impl Into<PathBuf>) -> Result<Pager> {
        let root = root.into();
        for dir in [root.clone(), root.join("spill"), root.join("store")] {
            std::fs::create_dir_all(&dir)
                .map_err(|e| Error::Io(format!("create data dir {}: {e}", dir.display())))?;
        }
        Ok(Pager {
            root,
            counters: Arc::new(DiskCounters::default()),
            next_spill: AtomicU64::new(0),
        })
    }

    /// The process-wide pager, present iff `MCDBR_DATA_DIR` names a usable
    /// directory (consulted once; an unusable directory logs to stderr and
    /// degrades to in-memory mode rather than failing every seal).
    pub fn global() -> Option<&'static Pager> {
        static PAGER: OnceLock<Option<Pager>> = OnceLock::new();
        PAGER
            .get_or_init(|| {
                let dir = std::env::var("MCDBR_DATA_DIR").ok()?;
                let dir = dir.trim();
                if dir.is_empty() {
                    return None;
                }
                match Pager::new(dir) {
                    Ok(pager) => Some(pager),
                    Err(e) => {
                        eprintln!("mcdbr: MCDBR_DATA_DIR={dir} unusable ({e}); staying in-memory");
                        None
                    }
                }
            })
            .as_ref()
    }

    /// The global pager's counters, or zeros when disk mode is off — the
    /// one-liner the exec backends use to fill `ShardStats`.
    pub fn global_stats() -> PagerStats {
        Pager::global().map(Pager::stats).unwrap_or_default()
    }

    /// Snapshot this pager's counters.
    pub fn stats(&self) -> PagerStats {
        self.counters.snapshot()
    }

    /// The root data directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where the persistent (content-named) store tier lives.
    pub fn store_dir(&self) -> PathBuf {
        self.root.join("store")
    }

    /// The counters heap files opened against this pager should share.
    pub fn counters(&self) -> Arc<DiskCounters> {
        Arc::clone(&self.counters)
    }

    /// A fresh ephemeral spill heap (deleted when the last page drops).
    /// One per table: pages of a table cluster in one file.
    pub fn create_spill_heap(&self) -> Result<Arc<HeapFile>> {
        let n = self.next_spill.fetch_add(1, Ordering::Relaxed);
        let path = self
            .root
            .join("spill")
            .join(format!("{}-{n}.heap", std::process::id()));
        Ok(Arc::new(HeapFile::create(path, self.counters(), true)?))
    }

    /// Spill `page` into `heap`: append its bytes, return the disk-backed
    /// twin (same id, hash, and row/column counts — only where the bytes
    /// wait changes).  Already-disk-backed pages come back unchanged.
    pub fn spill_page(&self, page: &Page, heap: &Arc<HeapFile>) -> Result<Page> {
        if page.is_disk_backed() {
            return Ok(page.clone());
        }
        let bytes = page.load_bytes()?;
        let slot = heap.append_page(&bytes)?;
        self.counters.count_write(bytes.len() as u64);
        Ok(page.spilled(Arc::clone(heap), slot, bytes.len()))
    }

    /// Where the store-tier heap for content hash `hash` lives.
    pub fn store_path(&self, hash: u64) -> PathBuf {
        crate::heapfile::store_path(&self.store_dir(), hash)
    }

    /// Persist one content-addressed blob to the store tier: a single-record
    /// heap file written to a pid-unique temp name, synced, then renamed
    /// into place — a crash mid-write leaves only temp litter, never a
    /// half-visible store file, and the rename is atomic so concurrent
    /// writers of the same hash race harmlessly (same content, same name).
    /// A no-op if the blob is already stored.
    pub fn persist_store_blob(&self, hash: u64, payload: &[u8]) -> Result<()> {
        let final_path = self.store_path(hash);
        if final_path.exists() {
            return Ok(());
        }
        let tmp_path = final_path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let heap = HeapFile::create(&tmp_path, self.counters(), false)?;
            heap.append_page(payload)?;
            self.counters.count_write(0); // the memory copy stays resident
            heap.sync()?;
        }
        std::fs::rename(&tmp_path, &final_path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp_path);
            Error::Io(format!("publish store blob {}: {e}", final_path.display()))
        })
    }

    /// Load a store-tier blob back, re-validating the record checksum.
    /// `Ok(None)` means the hash was never stored; `Err(CorruptPage)` means
    /// the file exists but is torn or corrupt — the caller should
    /// [`Pager::remove_store_blob`] it and treat the hash as missing.
    pub fn load_store_blob(&self, hash: u64) -> Result<Option<Vec<u8>>> {
        let path = self.store_path(hash);
        if !path.exists() {
            return Ok(None);
        }
        let heap = HeapFile::open(&path, self.counters())?;
        if heap.page_count() != 1 {
            return Err(Error::CorruptPage(format!(
                "{}: store heap holds {} records, expected exactly 1",
                path.display(),
                heap.page_count()
            )));
        }
        heap.read_page(0).map(Some)
    }

    /// Drop a store-tier blob (used after detecting corruption; a missing
    /// file is fine).
    pub fn remove_store_blob(&self, hash: u64) {
        let _ = std::fs::remove_file(self.store_path(hash));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use crate::value::Value;

    fn temp_root(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("mcdbr-pager-test-{}-{tag}-{n}", std::process::id()))
    }

    fn rows(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::from_iter_values([Value::Int64(i as i64), Value::str(format!("r{i}"))]))
            .collect()
    }

    #[test]
    fn spill_round_trips_and_counts() {
        let root = temp_root("spill");
        let pager = Pager::new(&root).unwrap();
        let page = Page::seal(2, &rows(20));
        let heap = pager.create_spill_heap().unwrap();
        let spilled = pager.spill_page(&page, &heap).unwrap();
        assert!(spilled.is_disk_backed());
        assert!(!page.is_disk_backed());
        assert_eq!(spilled.id(), page.id(), "spilling keeps the frame key");
        assert_eq!(spilled.content_hash(), page.content_hash());
        assert_eq!(spilled.decode_rows().unwrap(), page.decode_rows().unwrap());
        let stats = pager.stats();
        assert_eq!(stats.pages_written, 1);
        assert_eq!(stats.spilled_bytes, spilled.byte_len() as u64);
        assert!(stats.disk_reads >= 1, "decode_rows read the bytes back");
        assert!(stats.disk_read_ns > 0);
        // Re-spilling a disk page is a no-op.
        let again = pager.spill_page(&spilled, &heap).unwrap();
        assert_eq!(pager.stats().pages_written, 1);
        assert_eq!(again.content_hash(), page.content_hash());
        drop((page, spilled, again, heap));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn spill_heaps_are_ephemeral() {
        let root = temp_root("ephemeral");
        let pager = Pager::new(&root).unwrap();
        let heap = pager.create_spill_heap().unwrap();
        let path = heap.path().to_path_buf();
        assert!(path.exists());
        drop(heap);
        assert!(!path.exists(), "spill heap outlived its pages");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stats_window_by_subtraction() {
        let a = PagerStats {
            pages_written: 10,
            disk_reads: 7,
            disk_read_ns: 900,
            spilled_bytes: 4096,
        };
        let b = PagerStats {
            pages_written: 4,
            disk_reads: 2,
            disk_read_ns: 100,
            spilled_bytes: 1024,
        };
        let d = a.since(&b);
        assert_eq!(d.pages_written, 6);
        assert_eq!(d.disk_reads, 5);
        assert_eq!(d.disk_read_ns, 800);
        assert_eq!(d.spilled_bytes, 3072);
    }
}
