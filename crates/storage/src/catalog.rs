//! A named collection of tables.
//!
//! The catalog holds the ordinary relations a query plan reads: parameter
//! tables for VG functions (paper §2: `means`), deterministic base tables
//! (paper §5: `sup`), and materialized intermediate results cached for
//! replenishment runs (paper §9).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{Error, Result};
use crate::table::Table;

/// Global source of catalog version stamps.  Every mutation of any catalog
/// takes a fresh stamp, so two catalogs share an epoch only when one is an
/// unmodified clone of the other (i.e. their contents are identical).
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

fn next_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// A named collection of [`Table`]s.
///
/// The catalog carries a content *epoch* — a version stamp bumped (to a
/// globally fresh value) on every mutation.  Plan-level caches key on the
/// epoch: equal epochs guarantee identical contents (epochs are only ever
/// shared via `Clone`), so a cache entry keyed on `(plan, epoch)` can never
/// serve data from a catalog the plan was not prepared against.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    epoch: u64,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// The catalog's content epoch.  Bumped on every mutation ([`register`],
    /// [`register_or_replace`], [`remove`]); copied verbatim by `Clone`.
    /// Two catalogs with equal epochs have identical contents — the
    /// invalidation contract session caches rely on.
    ///
    /// [`register`]: Catalog::register
    /// [`register_or_replace`]: Catalog::register_or_replace
    /// [`remove`]: Catalog::remove
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Register a table; errors if a table with the same name already exists.
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(Error::TableAlreadyExists(name));
        }
        self.tables.insert(name, table);
        self.epoch = next_epoch();
        Ok(())
    }

    /// Register a table, replacing any existing table of the same name.
    /// Used for materialized intermediates which are recomputed per run.
    pub fn register_or_replace(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
        self.epoch = next_epoch();
    }

    /// Fetch a table by name.
    pub fn get(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::TableNotFound(name.to_string()))
    }

    /// Whether a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Remove a table, returning it if it existed.
    pub fn remove(&mut self, name: &str) -> Option<Table> {
        let removed = self.tables.remove(name);
        if removed.is_some() {
            self.epoch = next_epoch();
        }
        removed
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use crate::value::Value;

    fn sample_table() -> Table {
        TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
            .row([Value::Int64(1), Value::Float64(3.0)])
            .build()
            .unwrap()
    }

    #[test]
    fn register_and_get() {
        let mut cat = Catalog::new();
        cat.register("means", sample_table()).unwrap();
        assert!(cat.contains("means"));
        assert_eq!(cat.get("means").unwrap().len(), 1);
        assert_eq!(
            cat.get("missing"),
            Err(Error::TableNotFound("missing".into()))
        );
    }

    #[test]
    fn duplicate_registration_fails() {
        let mut cat = Catalog::new();
        cat.register("means", sample_table()).unwrap();
        assert_eq!(
            cat.register("means", sample_table()),
            Err(Error::TableAlreadyExists("means".into()))
        );
        // ...but register_or_replace silently overwrites.
        cat.register_or_replace("means", sample_table());
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn remove_and_names() {
        let mut cat = Catalog::new();
        cat.register("b", sample_table()).unwrap();
        cat.register("a", sample_table()).unwrap();
        assert_eq!(cat.table_names(), vec!["a", "b"]);
        assert!(cat.remove("a").is_some());
        assert!(cat.remove("a").is_none());
        assert_eq!(cat.len(), 1);
        assert!(!cat.is_empty());
    }

    #[test]
    fn epoch_changes_on_every_mutation_and_clones_verbatim() {
        let mut cat = Catalog::new();
        let e0 = cat.epoch();
        cat.register("means", sample_table()).unwrap();
        let e1 = cat.epoch();
        assert_ne!(e0, e1);

        // A clone shares the epoch (identical contents)...
        let mut other = cat.clone();
        assert_eq!(other.epoch(), e1);
        // ...until either side mutates: stamps are globally fresh, so two
        // independently mutated clones can never collide on an epoch.
        other.register_or_replace("means", sample_table());
        cat.register_or_replace("extra", sample_table());
        assert_ne!(other.epoch(), e1);
        assert_ne!(cat.epoch(), e1);
        assert_ne!(cat.epoch(), other.epoch());

        // Removing a present table bumps; removing a missing one does not.
        let e2 = cat.epoch();
        assert!(cat.remove("extra").is_some());
        assert_ne!(cat.epoch(), e2);
        let e3 = cat.epoch();
        assert!(cat.remove("extra").is_none());
        assert_eq!(cat.epoch(), e3);
    }
}
