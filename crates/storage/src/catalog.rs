//! A named collection of tables.
//!
//! The catalog holds the ordinary relations a query plan reads: parameter
//! tables for VG functions (paper §2: `means`), deterministic base tables
//! (paper §5: `sup`), and materialized intermediate results cached for
//! replenishment runs (paper §9).

use std::collections::BTreeMap;

use crate::error::{Error, Result};
use crate::table::Table;

/// A named collection of [`Table`]s.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table; errors if a table with the same name already exists.
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(Error::TableAlreadyExists(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Register a table, replacing any existing table of the same name.
    /// Used for materialized intermediates which are recomputed per run.
    pub fn register_or_replace(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Fetch a table by name.
    pub fn get(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::TableNotFound(name.to_string()))
    }

    /// Whether a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Remove a table, returning it if it existed.
    pub fn remove(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use crate::value::Value;

    fn sample_table() -> Table {
        TableBuilder::new(Schema::new(vec![Field::int64("cid"), Field::float64("m")]))
            .row([Value::Int64(1), Value::Float64(3.0)])
            .build()
            .unwrap()
    }

    #[test]
    fn register_and_get() {
        let mut cat = Catalog::new();
        cat.register("means", sample_table()).unwrap();
        assert!(cat.contains("means"));
        assert_eq!(cat.get("means").unwrap().len(), 1);
        assert_eq!(
            cat.get("missing"),
            Err(Error::TableNotFound("missing".into()))
        );
    }

    #[test]
    fn duplicate_registration_fails() {
        let mut cat = Catalog::new();
        cat.register("means", sample_table()).unwrap();
        assert_eq!(
            cat.register("means", sample_table()),
            Err(Error::TableAlreadyExists("means".into()))
        );
        // ...but register_or_replace silently overwrites.
        cat.register_or_replace("means", sample_table());
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn remove_and_names() {
        let mut cat = Catalog::new();
        cat.register("b", sample_table()).unwrap();
        cat.register("a", sample_table()).unwrap();
        assert_eq!(cat.table_names(), vec!["a", "b"]);
        assert!(cat.remove("a").is_some());
        assert!(cat.remove("a").is_none());
        assert_eq!(cat.len(), 1);
        assert!(!cat.is_empty());
    }
}
