//! The buffer pool: a bounded cache of decoded page frames.
//!
//! Scans never decode a [`Page`] directly — they [`BufferPool::pin`] it,
//! receiving a [`PageGuard`] over the decoded rows.  The pool keeps at most
//! `budget` decoded frames resident, evicting the least-recently-used
//! *unpinned* frame when a miss pushes it over; pinned frames are never
//! evicted, so the pool may transiently exceed its budget when every frame
//! is in use (classic STEAL-avoidance: correctness first, budget second).
//!
//! One process-wide pool ([`BufferPool::global`], sized by the
//! `MCDBR_PAGE_CACHE` environment variable in frames) backs all table scans,
//! so a resident server's sessions share frames exactly as they share the
//! session cache.  Private pools ([`BufferPool::new`]) exist for tests that
//! need exact hit/eviction accounting without cross-test interference.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::Result;
use crate::page::Page;
use crate::tuple::Tuple;

/// Default frame budget when `MCDBR_PAGE_CACHE` is unset: generous enough
/// that the test workloads never evict unless a test forces a tiny budget.
pub const DEFAULT_FRAME_BUDGET: usize = 1024;

/// A monotonically-consistent snapshot of the pool's counters.
///
/// Counters only ever grow; consumers window them by subtracting a baseline
/// snapshot (see [`PageCacheStats::since`]), the same delta pattern the
/// exec sessions use for buffer-reuse accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCacheStats {
    /// Pages decoded from their sealed bytes (pool misses).
    pub pages_read: u64,
    /// Pins satisfied by an already-resident frame.
    pub pool_hits: u64,
    /// Frames dropped to make room under the budget.
    pub pool_evictions: u64,
}

impl PageCacheStats {
    /// The counter deltas accumulated since `baseline` was snapped.
    pub fn since(&self, baseline: &PageCacheStats) -> PageCacheStats {
        PageCacheStats {
            pages_read: self.pages_read - baseline.pages_read,
            pool_hits: self.pool_hits - baseline.pool_hits,
            pool_evictions: self.pool_evictions - baseline.pool_evictions,
        }
    }
}

/// One resident decoded frame.
struct Frame {
    rows: Arc<Vec<Tuple>>,
    pins: usize,
}

struct PoolInner {
    budget: usize,
    frames: HashMap<u64, Frame>,
    /// LRU order: least-recently-used at the front.  Budgets are small
    /// (hundreds to low thousands of frames), so linear touch/evict scans
    /// cost less than the page decode they bracket.
    order: Vec<u64>,
    /// Counters live under the lock so they move atomically with the
    /// frame map: `pages_read` counts frames inserted, `pool_evictions`
    /// frames removed, and `resident == pages_read - pool_evictions`
    /// holds exactly even when scans race (a racing decoder that loses
    /// the insert adopts the winner's frame and counts a *hit*).
    stats: PageCacheStats,
}

impl PoolInner {
    fn touch(&mut self, page_id: u64) {
        if let Some(idx) = self.order.iter().position(|&id| id == page_id) {
            self.order.remove(idx);
        }
        self.order.push(page_id);
    }

    /// Evict least-recently-used unpinned frames until the pool is within
    /// budget (or only pinned frames remain).  Returns the eviction count.
    fn evict_to_budget(&mut self) -> u64 {
        let mut evicted = 0;
        while self.frames.len() > self.budget {
            let victim = self
                .order
                .iter()
                .position(|id| self.frames.get(id).is_some_and(|f| f.pins == 0));
            match victim {
                Some(idx) => {
                    let id = self.order.remove(idx);
                    self.frames.remove(&id);
                    evicted += 1;
                }
                None => break, // every frame pinned: over-budget is allowed
            }
        }
        evicted
    }
}

/// A bounded LRU cache of decoded page frames.  See the module docs.
pub struct BufferPool {
    inner: Mutex<PoolInner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("BufferPool")
            .field("budget", &self.budget())
            .field("stats", &stats)
            .finish()
    }
}

impl BufferPool {
    /// A private pool with the given frame budget (clamped to at least 1).
    pub fn new(budget: usize) -> BufferPool {
        BufferPool {
            inner: Mutex::new(PoolInner {
                budget: budget.max(1),
                frames: HashMap::new(),
                order: Vec::new(),
                stats: PageCacheStats::default(),
            }),
        }
    }

    /// The process-wide pool every table scan defaults to.  Sized once from
    /// `MCDBR_PAGE_CACHE` (a frame count; unset or unparsable falls back to
    /// [`DEFAULT_FRAME_BUDGET`]).
    pub fn global() -> &'static BufferPool {
        static POOL: OnceLock<BufferPool> = OnceLock::new();
        POOL.get_or_init(|| BufferPool::new(budget_from_env()))
    }

    /// The current frame budget.
    pub fn budget(&self) -> usize {
        self.inner.lock().expect("buffer pool poisoned").budget
    }

    /// Change the frame budget, evicting down if shrinking.  Tests use this
    /// to force eviction pressure on the global pool without re-execing.
    pub fn set_budget(&self, budget: usize) {
        let mut inner = self.inner.lock().expect("buffer pool poisoned");
        inner.budget = budget.max(1);
        let evicted = inner.evict_to_budget();
        inner.stats.pool_evictions += evicted;
    }

    /// Pin `page`, decoding it into a resident frame on a miss.  The guard
    /// keeps the frame unevictable (and its rows alive) until dropped.
    ///
    /// Counters are exact under concurrency: they mutate only under the
    /// pool lock, in the same critical section as the frame map, so
    /// `pages_read` is precisely the number of frames ever inserted and
    /// `pool_evictions` precisely the number removed.  Two scans racing a
    /// miss on the same page both decode (deliberately, outside the lock),
    /// but only the insert winner counts a read — the loser adopts the
    /// winner's frame and counts a hit.
    pub fn pin<'p>(&'p self, page: &Page) -> Result<PageGuard<'p>> {
        {
            let mut inner = self.inner.lock().expect("buffer pool poisoned");
            if let Some(frame) = inner.frames.get_mut(&page.id()) {
                frame.pins += 1;
                let rows = Arc::clone(&frame.rows);
                inner.touch(page.id());
                inner.stats.pool_hits += 1;
                return Ok(PageGuard {
                    pool: self,
                    page_id: page.id(),
                    rows,
                });
            }
        }
        // Miss: decode outside the lock so concurrent scans of different
        // pages don't serialize on the decode (which may be a disk read).
        let rows = Arc::new(page.decode_rows()?);
        let mut inner = self.inner.lock().expect("buffer pool poisoned");
        match inner.frames.entry(page.id()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                // A racing scan inserted while we decoded: adopt its frame.
                e.get_mut().pins += 1;
                inner.stats.pool_hits += 1;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Frame {
                    rows: Arc::clone(&rows),
                    pins: 1,
                });
                inner.stats.pages_read += 1;
            }
        }
        let rows = Arc::clone(&inner.frames[&page.id()].rows);
        inner.touch(page.id());
        let evicted = inner.evict_to_budget();
        inner.stats.pool_evictions += evicted;
        Ok(PageGuard {
            pool: self,
            page_id: page.id(),
            rows,
        })
    }

    fn unpin(&self, page_id: u64) {
        let mut inner = self.inner.lock().expect("buffer pool poisoned");
        if let Some(frame) = inner.frames.get_mut(&page_id) {
            frame.pins = frame.pins.saturating_sub(1);
        }
        // A pin released while the pool sat over budget (every frame
        // pinned at the time) is the moment the deferred eviction runs.
        let evicted = inner.evict_to_budget();
        inner.stats.pool_evictions += evicted;
    }

    /// Number of frames currently resident (pinned or not).
    pub fn resident_frames(&self) -> usize {
        self.inner
            .lock()
            .expect("buffer pool poisoned")
            .frames
            .len()
    }

    /// Snapshot the monotone counters.
    pub fn stats(&self) -> PageCacheStats {
        self.inner.lock().expect("buffer pool poisoned").stats
    }
}

fn budget_from_env() -> usize {
    std::env::var("MCDBR_PAGE_CACHE")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_FRAME_BUDGET)
}

/// A pinned page: dereferences to the decoded rows, unpins on drop.
pub struct PageGuard<'p> {
    pool: &'p BufferPool,
    page_id: u64,
    rows: Arc<Vec<Tuple>>,
}

impl PageGuard<'_> {
    /// The decoded rows of the pinned page.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }
}

impl Deref for PageGuard<'_> {
    type Target = [Tuple];

    fn deref(&self) -> &[Tuple] {
        &self.rows
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.page_id);
    }
}

impl std::fmt::Debug for PageGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuard")
            .field("page_id", &self.page_id)
            .field("rows", &self.rows.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn page(tag: i64, rows: usize) -> Page {
        let tuples: Vec<Tuple> = (0..rows)
            .map(|i| Tuple::from_iter_values([Value::Int64(tag), Value::Int64(i as i64)]))
            .collect();
        Page::seal(2, &tuples)
    }

    #[test]
    fn hit_miss_accounting() {
        let pool = BufferPool::new(4);
        let p = page(1, 3);
        {
            let g = pool.pin(&p).unwrap();
            assert_eq!(g.rows().len(), 3);
        }
        let _g = pool.pin(&p).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.pages_read, 1);
        assert_eq!(stats.pool_hits, 1);
        assert_eq!(stats.pool_evictions, 0);
    }

    #[test]
    fn lru_eviction_under_budget() {
        let pool = BufferPool::new(2);
        let pages: Vec<Page> = (0..3).map(|t| page(t, 2)).collect();
        for p in &pages {
            drop(pool.pin(p).unwrap());
        }
        // Budget 2, three distinct pages: the first (LRU) frame was evicted.
        assert_eq!(pool.resident_frames(), 2);
        assert_eq!(pool.stats().pool_evictions, 1);
        // Re-pinning the evicted page is a fresh read.
        drop(pool.pin(&pages[0]).unwrap());
        assert_eq!(pool.stats().pages_read, 4);
    }

    #[test]
    fn pinned_frames_survive_eviction() {
        let pool = BufferPool::new(1);
        let a = page(1, 2);
        let b = page(2, 2);
        let guard_a = pool.pin(&a).unwrap();
        // Pool is at budget with `a` pinned; pinning `b` must not evict `a`.
        let guard_b = pool.pin(&b).unwrap();
        assert_eq!(pool.resident_frames(), 2, "pinned frames are unevictable");
        drop(guard_b);
        // b unpinned: the deferred eviction brings the pool back to budget,
        // and the victim must be b (a is still pinned).
        assert_eq!(pool.resident_frames(), 1);
        drop(pool.pin(&a).unwrap());
        assert_eq!(
            pool.stats().pages_read,
            2,
            "a stayed resident through b's eviction"
        );
        drop(guard_a);
    }

    #[test]
    fn shrinking_budget_evicts() {
        let pool = BufferPool::new(8);
        let pages: Vec<Page> = (0..6).map(|t| page(t, 1)).collect();
        for p in &pages {
            drop(pool.pin(p).unwrap());
        }
        assert_eq!(pool.resident_frames(), 6);
        pool.set_budget(2);
        assert_eq!(pool.resident_frames(), 2);
        assert_eq!(pool.stats().pool_evictions, 4);
    }
}
