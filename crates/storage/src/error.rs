//! Error type shared by the storage layer and re-used by the crates above it.

use std::fmt;

/// Convenient alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the relational substrate.
///
/// The variants are deliberately coarse: the engine treats most of them as
/// programming errors in plan construction (e.g. referencing a column that
/// does not exist) rather than recoverable runtime conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A column name was not found in a schema.
    ColumnNotFound(String),
    /// A table name was not found in the catalog.
    TableNotFound(String),
    /// A table with the same name already exists in the catalog.
    TableAlreadyExists(String),
    /// A value had a different type than the operation required.
    TypeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it actually found.
        found: String,
    },
    /// A tuple's arity did not match the schema it was inserted under.
    ArityMismatch {
        /// Number of fields in the schema.
        expected: usize,
        /// Number of values in the offending tuple.
        found: usize,
    },
    /// An arithmetic or aggregation operation was applied to incompatible values.
    InvalidOperation(String),
    /// Catch-all for malformed input (e.g. an empty schema where one is required).
    Invalid(String),
    /// A deadline expired or the query was cancelled cooperatively.  Unlike
    /// the variants above this one *is* a recoverable runtime condition: the
    /// server maps it to a typed `Timeout` reply instead of `Internal`.
    Timeout(String),
    /// An operating-system I/O failure in the disk pager (open, read,
    /// write, rename).  Carries the rendered `std::io::Error` so the enum
    /// stays `Clone + Eq`.
    Io(String),
    /// On-disk page bytes failed validation: a torn write, a truncated
    /// record, a checksum mismatch, or a bad heap-file header.  Readers
    /// treat the page (or the whole heap file) as absent and re-fetch.
    CorruptPage(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            Error::TableNotFound(name) => write!(f, "table not found: {name}"),
            Error::TableAlreadyExists(name) => write!(f, "table already exists: {name}"),
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} fields, tuple has {found}"
                )
            }
            Error::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
            Error::Invalid(msg) => write!(f, "invalid input: {msg}"),
            Error::Timeout(msg) => write!(f, "deadline exceeded: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::CorruptPage(msg) => write!(f, "corrupt on-disk page: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found() {
        let e = Error::ColumnNotFound("loss".into());
        assert_eq!(e.to_string(), "column not found: loss");
    }

    #[test]
    fn display_type_mismatch() {
        let e = Error::TypeMismatch {
            expected: "Float64".into(),
            found: "Utf8".into(),
        };
        assert_eq!(e.to_string(), "type mismatch: expected Float64, found Utf8");
    }

    #[test]
    fn display_arity_mismatch() {
        let e = Error::ArityMismatch {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains("schema has 3 fields"));
    }

    #[test]
    fn display_timeout() {
        let e = Error::Timeout("query ran past 500ms".into());
        assert_eq!(e.to_string(), "deadline exceeded: query ran past 500ms");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            Error::TableNotFound("t".into()),
            Error::TableNotFound("t".into())
        );
        assert_ne!(
            Error::TableNotFound("t".into()),
            Error::TableNotFound("u".into())
        );
    }
}
