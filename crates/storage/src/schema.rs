//! Schemas: ordered lists of named, typed fields.

use std::fmt;

use crate::error::{Error, Result};
use crate::value::DataType;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, e.g. `"o_orderkey"` or `"totalLoss"`.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Create a new field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }

    /// Shorthand for a 64-bit integer field.
    pub fn int64(name: impl Into<String>) -> Self {
        Field::new(name, DataType::Int64)
    }

    /// Shorthand for a 64-bit float field.
    pub fn float64(name: impl Into<String>) -> Self {
        Field::new(name, DataType::Float64)
    }

    /// Shorthand for a string field.
    pub fn utf8(name: impl Into<String>) -> Self {
        Field::new(name, DataType::Utf8)
    }

    /// Shorthand for a boolean field.
    pub fn boolean(name: impl Into<String>) -> Self {
        Field::new(name, DataType::Bool)
    }
}

/// An ordered list of fields describing a relation.
///
/// Column lookup is by name; duplicate names are allowed only through
/// [`Schema::join`] which prefixes clashing names the way the engine's join
/// operator does (`left.name` stays, right-hand clash becomes `name_1`,
/// mirroring the `emp AS emp1, emp AS emp2` self-join of paper §5 where the
/// plan itself disambiguates).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The empty schema.
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// The field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Find the index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| Error::ColumnNotFound(name.to_string()))
    }

    /// Whether a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name == name)
    }

    /// All column names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Append a field, returning a new schema.
    pub fn with_field(&self, field: Field) -> Schema {
        let mut fields = self.fields.clone();
        fields.push(field);
        Schema { fields }
    }

    /// Project onto the named columns (in the given order).
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for name in names {
            let idx = self.index_of(name)?;
            fields.push(self.fields[idx].clone());
        }
        Ok(Schema { fields })
    }

    /// Concatenate two schemas (for joins).  Columns of `other` whose names
    /// clash with columns already present get a `_1` (or `_2`, ...) suffix.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            let mut name = f.name.clone();
            let mut suffix = 1usize;
            while fields.iter().any(|g| g.name == name) {
                name = format!("{}_{suffix}", f.name);
                suffix += 1;
            }
            fields.push(Field::new(name, f.data_type));
        }
        Schema { fields }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn losses_schema() -> Schema {
        Schema::new(vec![Field::int64("cid"), Field::float64("val")])
    }

    #[test]
    fn index_lookup() {
        let s = losses_schema();
        assert_eq!(s.index_of("cid").unwrap(), 0);
        assert_eq!(s.index_of("val").unwrap(), 1);
        assert_eq!(
            s.index_of("missing"),
            Err(Error::ColumnNotFound("missing".into()))
        );
    }

    #[test]
    fn contains_and_names() {
        let s = losses_schema();
        assert!(s.contains("val"));
        assert!(!s.contains("VAL"));
        assert_eq!(s.names(), vec!["cid", "val"]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Schema::empty().is_empty());
    }

    #[test]
    fn projection_reorders() {
        let s = losses_schema();
        let p = s.project(&["val", "cid"]).unwrap();
        assert_eq!(p.names(), vec!["val", "cid"]);
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn join_renames_clashes() {
        let emp = Schema::new(vec![Field::float64("sal"), Field::utf8("eid")]);
        let joined = emp.join(&emp);
        assert_eq!(joined.names(), vec!["sal", "eid", "sal_1", "eid_1"]);
        // Joining a third copy keeps generating fresh names.
        let triple = joined.join(&emp);
        assert_eq!(
            triple.names(),
            vec!["sal", "eid", "sal_1", "eid_1", "sal_2", "eid_2"]
        );
    }

    #[test]
    fn with_field_appends() {
        let s = losses_schema().with_field(Field::boolean("isPres"));
        assert_eq!(s.len(), 3);
        assert_eq!(s.field(2).name, "isPres");
        assert_eq!(s.field(2).data_type, DataType::Bool);
    }

    #[test]
    fn display() {
        assert_eq!(losses_schema().to_string(), "(cid: Int64, val: Float64)");
    }
}
