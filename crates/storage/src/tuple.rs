//! Tuples: rows of [`Value`]s.

use std::cmp::Ordering;
use std::fmt;

use crate::error::Result;
use crate::schema::Schema;
use crate::value::Value;

/// A row of values.  A `Tuple` carries no schema of its own; the schema lives
/// with the [`crate::Table`] or operator that produced it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Build a tuple from anything convertible to values.
    pub fn from_iter_values<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Tuple {
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of values in the tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// True if the tuple has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values, in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at position `idx`.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Mutable access to the value at position `idx`.
    pub fn value_mut(&mut self, idx: usize) -> &mut Value {
        &mut self.values[idx]
    }

    /// Replace the value at position `idx`.
    pub fn set(&mut self, idx: usize, value: Value) {
        self.values[idx] = value;
    }

    /// Append a value.
    pub fn push(&mut self, value: Value) {
        self.values.push(value);
    }

    /// Look a value up by column name using a schema.
    pub fn get(&self, schema: &Schema, name: &str) -> Result<&Value> {
        Ok(&self.values[schema.index_of(name)?])
    }

    /// Concatenate two tuples (used by join operators).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Project onto the given column indices, in order.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Consume the tuple and return its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Lexicographic total ordering on the values (using [`Value::cmp_total`]).
    pub fn cmp_total(&self, other: &Tuple) -> Ordering {
        for (a, b) in self.values.iter().zip(other.values.iter()) {
            match a.cmp_total(b) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        self.values.len().cmp(&other.values.len())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    #[test]
    fn construction_and_access() {
        let t =
            Tuple::from_iter_values([Value::Int64(1), Value::str("Sue"), Value::Float64(24_000.0)]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.value(1), &Value::str("Sue"));
        assert!(!t.is_empty());
    }

    #[test]
    fn schema_lookup() {
        let schema = Schema::new(vec![Field::utf8("eid"), Field::float64("sal")]);
        let t = Tuple::from_iter_values([Value::str("Joe"), Value::Float64(28_000.0)]);
        assert_eq!(t.get(&schema, "sal").unwrap(), &Value::Float64(28_000.0));
        assert!(t.get(&schema, "bonus").is_err());
    }

    #[test]
    fn mutation() {
        let mut t = Tuple::from_iter_values([1i64, 2i64]);
        t.set(0, Value::Int64(5));
        *t.value_mut(1) = Value::Int64(7);
        t.push(Value::Int64(9));
        assert_eq!(
            t.values(),
            &[Value::Int64(5), Value::Int64(7), Value::Int64(9)]
        );
    }

    #[test]
    fn concat_and_project() {
        let a = Tuple::from_iter_values([1i64, 2i64]);
        let b = Tuple::from_iter_values(["x", "y"]);
        let joined = a.concat(&b);
        assert_eq!(joined.arity(), 4);
        let projected = joined.project(&[3, 0]);
        assert_eq!(projected.values(), &[Value::str("y"), Value::Int64(1)]);
    }

    #[test]
    fn lexicographic_ordering() {
        let a = Tuple::from_iter_values([1i64, 5i64]);
        let b = Tuple::from_iter_values([1i64, 7i64]);
        let c = Tuple::from_iter_values([1i64]);
        assert_eq!(a.cmp_total(&b), Ordering::Less);
        assert_eq!(b.cmp_total(&a), Ordering::Greater);
        assert_eq!(a.cmp_total(&a.clone()), Ordering::Equal);
        // shorter prefix sorts first
        assert_eq!(c.cmp_total(&a), Ordering::Less);
    }

    #[test]
    fn display() {
        let t = Tuple::from_iter_values([Value::Int64(1), Value::str("Sue")]);
        assert_eq!(t.to_string(), "[1, Sue]");
    }
}
