//! Dynamically typed cell values.
//!
//! MCDB-R queries mix deterministic attributes (customer ids, order keys,
//! employee names) with uncertain numeric attributes whose instantiations are
//! produced by VG functions.  Both kinds flow through the engine as
//! [`Value`]s.  The type set is intentionally small — it covers everything
//! the paper's example queries (§2, §5, Appendix D) need.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};

/// The type of a [`Value`] / a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.  All VG functions produce `Float64` values.
    Float64,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Utf8,
    /// The type of SQL NULL; also used for columns whose type is not yet known.
    Null,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "Int64",
            DataType::Float64 => "Float64",
            DataType::Bool => "Bool",
            DataType::Utf8 => "Utf8",
            DataType::Null => "Null",
        };
        f.write_str(s)
    }
}

/// A single cell value.
///
/// `Value` implements a *total* ordering (`cmp_total`) so tuples can be
/// sorted and inserted into ordered containers: NULL sorts first, then
/// booleans, then numbers (integers and floats compare numerically against
/// each other), then strings.  NaN floats sort after all other numbers.
///
/// Strings are reference-counted (`Arc<str>`): values flow through the
/// engine by clone — per-repetition row materialization, bundle
/// concatenation, the columnar-block boundary — and a string clone must be
/// a refcount bump, not a heap copy, for categorical workloads to scale
/// like numeric ones.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int64(i64),
    /// 64-bit IEEE float.
    Float64(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string (shared; clones are refcount bumps).
    Utf8(Arc<str>),
}

impl Value {
    /// Construct a string value from anything string-like.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Utf8(s.into())
    }

    /// The [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Int64(_) => DataType::Int64,
            Value::Float64(_) => DataType::Float64,
            Value::Bool(_) => DataType::Bool,
            Value::Utf8(_) => DataType::Utf8,
        }
    }

    /// True iff this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret the value as an `f64` (integers are widened).
    ///
    /// This is the accessor the aggregation and Gibbs machinery uses for
    /// every numeric attribute: the paper's query results are all numeric
    /// aggregates (SUMs of losses, salary differences, ...).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int64(i) => Ok(*i as f64),
            Value::Float64(f) => Ok(*f),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            other => Err(Error::TypeMismatch {
                expected: "numeric".into(),
                found: other.data_type().to_string(),
            }),
        }
    }

    /// Interpret the value as an `i64`.  Floats are truncated toward zero.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int64(i) => Ok(*i),
            Value::Float64(f) => Ok(*f as i64),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(Error::TypeMismatch {
                expected: "integer".into(),
                found: other.data_type().to_string(),
            }),
        }
    }

    /// Interpret the value as a boolean.  NULL is *not* true.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Null => Ok(false),
            other => Err(Error::TypeMismatch {
                expected: "boolean".into(),
                found: other.data_type().to_string(),
            }),
        }
    }

    /// Interpret the value as a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Utf8(s) => Ok(s.as_ref()),
            other => Err(Error::TypeMismatch {
                expected: "string".into(),
                found: other.data_type().to_string(),
            }),
        }
    }

    /// Whether this value is numeric (integer, float, or bool).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int64(_) | Value::Float64(_) | Value::Bool(_))
    }

    /// Append this value's tagged wire encoding to `out`.  Floats travel as
    /// raw IEEE bits, so the round trip is bit-exact — the same contract the
    /// columnar buffers keep in memory.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int64(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float64(x) => {
                out.push(2);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            Value::Bool(b) => {
                out.push(3);
                out.push(u8::from(*b));
            }
            Value::Utf8(s) => {
                out.push(4);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }

    /// Decode a value from `buf` at `*pos`, advancing `*pos`.  Truncated or
    /// malformed input (unknown tag, invalid UTF-8) returns a typed
    /// [`Error::Invalid`].
    pub fn decode_wire(buf: &[u8], pos: &mut usize) -> Result<Value> {
        fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
            let bytes = buf
                .get(*pos..*pos + n)
                .ok_or_else(|| Error::Invalid("truncated value encoding".into()))?;
            *pos += n;
            Ok(bytes)
        }
        let tag = take(buf, pos, 1)?[0];
        Ok(match tag {
            0 => Value::Null,
            1 => Value::Int64(i64::from_le_bytes(
                take(buf, pos, 8)?.try_into().expect("8 bytes"),
            )),
            2 => Value::Float64(f64::from_bits(u64::from_le_bytes(
                take(buf, pos, 8)?.try_into().expect("8 bytes"),
            ))),
            3 => Value::Bool(take(buf, pos, 1)?[0] != 0),
            4 => {
                let len = u32::from_le_bytes(take(buf, pos, 4)?.try_into().expect("4 bytes"));
                let bytes = take(buf, pos, len as usize)?;
                Value::Utf8(Arc::from(std::str::from_utf8(bytes).map_err(|_| {
                    Error::Invalid("value encoding holds invalid UTF-8".into())
                })?))
            }
            other => {
                return Err(Error::Invalid(format!(
                    "unknown value encoding tag {other}"
                )))
            }
        })
    }

    /// Total ordering over values, suitable for sorting heterogeneous columns.
    ///
    /// NULL < Bool < numeric < Utf8; numerics compare by value with NaN last.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int64(_) | Float64(_) => 2,
                Utf8(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int64(a), Int64(b)) => a.cmp(b),
            (Utf8(a), Utf8(b)) => a.cmp(b),
            (Int64(a), Float64(b)) => total_f64_cmp(*a as f64, *b),
            (Float64(a), Int64(b)) => total_f64_cmp(*a, *b as f64),
            (Float64(a), Float64(b)) => total_f64_cmp(*a, *b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// SQL equality: NULL is not equal to anything (including NULL); integers
    /// and floats compare numerically.
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        if self.is_numeric() && other.is_numeric() {
            // both as_f64 calls cannot fail for numeric values
            return self.as_f64().unwrap() == other.as_f64().unwrap();
        }
        self == other
    }

    /// Numeric addition with integer preservation.
    pub fn add(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "+", |a, b| a + b, |a, b| a.checked_add(b))
    }

    /// Numeric subtraction with integer preservation.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "-", |a, b| a - b, |a, b| a.checked_sub(b))
    }

    /// Numeric multiplication with integer preservation.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "*", |a, b| a * b, |a, b| a.checked_mul(b))
    }

    /// Numeric division.  Always produces a float; division by zero is an error.
    pub fn div(&self, other: &Value) -> Result<Value> {
        let b = other.as_f64()?;
        if b == 0.0 {
            return Err(Error::InvalidOperation("division by zero".into()));
        }
        Ok(Value::Float64(self.as_f64()? / b))
    }

    /// Numeric negation.
    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Int64(i) => Ok(Value::Int64(-i)),
            Value::Float64(f) => Ok(Value::Float64(-f)),
            other => Err(Error::TypeMismatch {
                expected: "numeric".into(),
                found: other.data_type().to_string(),
            }),
        }
    }
}

/// Total ordering on f64 with NaN greater than everything.
fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    match a.partial_cmp(&b) {
        Some(o) => o,
        None => {
            if a.is_nan() && b.is_nan() {
                Ordering::Equal
            } else if a.is_nan() {
                Ordering::Greater
            } else {
                Ordering::Less
            }
        }
    }
}

fn numeric_binop(
    lhs: &Value,
    rhs: &Value,
    op: &str,
    ff: impl Fn(f64, f64) -> f64,
    fi: impl Fn(i64, i64) -> Option<i64>,
) -> Result<Value> {
    match (lhs, rhs) {
        (Value::Int64(a), Value::Int64(b)) => fi(*a, *b)
            .map(Value::Int64)
            .ok_or_else(|| Error::InvalidOperation(format!("integer overflow in {a} {op} {b}"))),
        (a, b) if a.is_numeric() && b.is_numeric() => {
            Ok(Value::Float64(ff(a.as_f64()?, b.as_f64()?)))
        }
        (a, b) => Err(Error::InvalidOperation(format!(
            "cannot apply {op} to {} and {}",
            a.data_type(),
            b.data_type()
        ))),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int64(i) => write!(f, "{i}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Utf8(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int64(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Utf8(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Utf8(Arc::from(v))
    }
}

impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Utf8(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_types() {
        assert_eq!(Value::Int64(3).data_type(), DataType::Int64);
        assert_eq!(Value::Float64(3.5).data_type(), DataType::Float64);
        assert_eq!(Value::Bool(true).data_type(), DataType::Bool);
        assert_eq!(Value::str("x").data_type(), DataType::Utf8);
        assert_eq!(Value::Null.data_type(), DataType::Null);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Int64(7).as_f64().unwrap(), 7.0);
        assert_eq!(Value::Float64(2.5).as_i64().unwrap(), 2);
        assert_eq!(Value::Bool(true).as_f64().unwrap(), 1.0);
        assert!(Value::str("x").as_f64().is_err());
    }

    #[test]
    fn arithmetic_preserves_integers() {
        let v = Value::Int64(4).add(&Value::Int64(5)).unwrap();
        assert_eq!(v, Value::Int64(9));
        let v = Value::Int64(4).mul(&Value::Float64(0.5)).unwrap();
        assert_eq!(v, Value::Float64(2.0));
    }

    #[test]
    fn arithmetic_errors() {
        assert!(Value::str("a").add(&Value::Int64(1)).is_err());
        assert!(Value::Int64(1).div(&Value::Int64(0)).is_err());
        assert!(Value::Int64(i64::MAX).add(&Value::Int64(1)).is_err());
    }

    #[test]
    fn subtraction_and_negation() {
        assert_eq!(
            Value::Int64(10).sub(&Value::Int64(4)).unwrap(),
            Value::Int64(6)
        );
        assert_eq!(Value::Float64(2.5).neg().unwrap(), Value::Float64(-2.5));
        assert_eq!(Value::Int64(3).neg().unwrap(), Value::Int64(-3));
    }

    #[test]
    fn total_ordering_ranks_types() {
        let mut vals = [
            Value::str("abc"),
            Value::Float64(1.5),
            Value::Null,
            Value::Bool(true),
            Value::Int64(-2),
        ];
        vals.sort_by(|a, b| a.cmp_total(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int64(-2));
        assert_eq!(vals[3], Value::Float64(1.5));
        assert_eq!(vals[4], Value::str("abc"));
    }

    #[test]
    fn mixed_numeric_ordering() {
        assert_eq!(
            Value::Int64(2).cmp_total(&Value::Float64(2.5)),
            Ordering::Less
        );
        assert_eq!(
            Value::Float64(3.0).cmp_total(&Value::Int64(3)),
            Ordering::Equal
        );
        // NaN sorts after ordinary numbers
        assert_eq!(
            Value::Float64(f64::NAN).cmp_total(&Value::Float64(1e300)),
            Ordering::Greater
        );
    }

    #[test]
    fn sql_equality_semantics() {
        assert!(Value::Int64(3).sql_eq(&Value::Float64(3.0)));
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int64(0)));
        assert!(Value::str("a").sql_eq(&Value::str("a")));
        assert!(!Value::str("a").sql_eq(&Value::str("b")));
    }

    #[test]
    fn conversions_from_rust_types() {
        assert_eq!(Value::from(3i32), Value::Int64(3));
        assert_eq!(Value::from(3i64), Value::Int64(3));
        assert_eq!(Value::from(2.5f64), Value::Float64(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::str("hi"));
    }

    #[test]
    fn string_clones_share_storage() {
        // The Arc<str> contract: cloning a string value is a refcount bump,
        // not a heap copy — what makes per-repetition row materialization of
        // categorical columns as cheap as numeric ones.
        let a = Value::str("shared");
        let b = a.clone();
        match (&a, &b) {
            (Value::Utf8(x), Value::Utf8(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => unreachable!(),
        }
        assert_eq!(a, b);
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int64(42).to_string(), "42");
        assert_eq!(Value::str("Sue").to_string(), "Sue");
    }
}
