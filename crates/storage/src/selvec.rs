//! Selection vectors and branchless predicate kernels over packed bitmasks.
//!
//! Vectorized filters evaluate predicates column-at-a-time into a packed
//! [`Mask`] (one bit per position, 64 positions per word) and then compress
//! the surviving positions into a [`SelVec`] — a sorted list of selected
//! indices.  Downstream operators iterate the selection vector instead of
//! materializing a filtered copy of every column, which is the classic
//! selection-vector design of batch-at-a-time query engines.
//!
//! The comparison kernels are *branchless in the lane*: every position is
//! evaluated with straight-line compare/convert instructions and the result
//! bit is OR-ed into the current word, so the loops autovectorize and never
//! depend on the selectivity of the data.  All kernels maintain the trailing
//! -word invariant documented on [`Mask`]: bits at positions `>= len` in the
//! last word are zero, so whole-word AND/OR/NOT and popcounts need no edge
//! handling for lengths that are not a multiple of 64.

/// Comparison operators shared by the predicate kernels.
///
/// The semantics mirror the scalar expression evaluator exactly, including
/// its NaN convention: `partial_cmp` returning `None` is treated as
/// `Ordering::Equal`, so a NaN lane satisfies `LtEq`/`GtEq` but not
/// `Lt`/`Gt`/`Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=` (SQL semantics at a higher layer: NULL never equal).
    Eq,
    /// `<>`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
}

impl CmpOp {
    /// The scalar lane function: one branchless boolean per pair.
    #[inline(always)]
    pub fn lane(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            // SQL `<>` over non-null numerics is the negation of `=`, so a
            // NaN operand satisfies it (`!(NaN == x)`), unlike Lt/Gt.
            CmpOp::NotEq => a != b,
            CmpOp::Lt => a < b,
            // partial_cmp(None) -> Equal, and Equal satisfies <= and >=.
            CmpOp::LtEq => (a <= b) | a.is_nan() | b.is_nan(),
            CmpOp::Gt => a > b,
            CmpOp::GtEq => (a >= b) | a.is_nan() | b.is_nan(),
        }
    }
}

/// Number of 64-bit words needed to cover `len` one-bit lanes.
#[inline]
pub fn words_for(len: usize) -> usize {
    len.div_ceil(64)
}

/// A fixed-length packed bitmask: bit `i` of word `i / 64` is position `i`.
///
/// Invariant: bits at positions `>= len` in the final word are always zero.
/// Every constructor and mutator re-establishes the invariant (see
/// [`Mask::not_assign`] for the case that needs explicit trailing-word
/// masking), so word-granular combinators and [`Mask::count`] are exact for
/// any length, including lengths that are not a multiple of 64.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Mask {
    len: usize,
    words: Vec<u64>,
}

impl Mask {
    /// An all-zero mask over `len` positions.
    pub fn zeros(len: usize) -> Mask {
        Mask {
            len,
            words: vec![0; words_for(len)],
        }
    }

    /// An all-one mask over `len` positions (trailing bits zero).
    pub fn ones(len: usize) -> Mask {
        let mut m = Mask {
            len,
            words: vec![u64::MAX; words_for(len)],
        };
        m.mask_tail();
        m
    }

    /// Build from pre-packed words covering `len` positions, masking any
    /// stray bits in the trailing word so the invariant holds.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly [`words_for`]`(len)` long.
    pub fn from_words(words: Vec<u64>, len: usize) -> Mask {
        assert_eq!(words.len(), words_for(len), "word count mismatch");
        let mut m = Mask { len, words };
        m.mask_tail();
        m
    }

    /// Build from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Mask {
        let mut m = Mask::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            m.words[i / 64] |= (b as u64) << (i % 64);
        }
        m
    }

    /// Expand to one `bool` per position.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Number of positions covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words (trailing bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The bit at position `idx`.
    pub fn get(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Set the bit at position `idx` to `bit`.
    pub fn set(&mut self, idx: usize, bit: bool) {
        debug_assert!(idx < self.len);
        let word = &mut self.words[idx / 64];
        *word = (*word & !(1 << (idx % 64))) | ((bit as u64) << (idx % 64));
    }

    /// Number of set bits.  Exact for any length thanks to the trailing-word
    /// invariant.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True when every one of the `len` bits is set.
    pub fn all(&self) -> bool {
        self.count() == self.len
    }

    /// `self &= other` word-at-a-time.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_assign(&mut self, other: &Mask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// `self |= other` word-at-a-time.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_assign(&mut self, other: &Mask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// `self = !self`, re-masking the trailing word so bits beyond `len`
    /// stay zero — the edge case for lengths not a multiple of 64.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// `self &= !other` word-at-a-time: clear every position set in `other`
    /// (used to null-out comparison lanes from a packed null bitmap).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_not_assign(&mut self, other: &Mask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Zero any bits at positions `>= len` in the final word.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Overwrite this mask with per-position results of `lane`, branchlessly
    /// packing 64 lanes per word.  The closure is monomorphized per call
    /// site, so comparison kernels compile to straight-line compare + shift
    /// loops.
    #[inline]
    pub fn fill_with(&mut self, len: usize, mut lane: impl FnMut(usize) -> bool) {
        self.len = len;
        self.words.clear();
        self.words.resize(words_for(len), 0);
        for (w, word) in self.words.iter_mut().enumerate() {
            let lo = w * 64;
            let hi = (lo + 64).min(len);
            let mut acc = 0u64;
            for i in lo..hi {
                acc |= (lane(i) as u64) << (i - lo);
            }
            *word = acc;
        }
    }
}

/// `out[i] = op(lhs[i], rhs)` for a column-vs-constant comparison.
pub fn cmp_f64_const(op: CmpOp, lhs: &[f64], rhs: f64, out: &mut Mask) {
    out.fill_with(lhs.len(), |i| op.lane(lhs[i], rhs));
}

/// `out[i] = op(lhs, rhs[i])` for a constant-vs-column comparison.
pub fn cmp_const_f64(op: CmpOp, lhs: f64, rhs: &[f64], out: &mut Mask) {
    out.fill_with(rhs.len(), |i| op.lane(lhs, rhs[i]));
}

/// `out[i] = op(lhs[i], rhs[i])` for a column-vs-column comparison.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn cmp_f64_f64(op: CmpOp, lhs: &[f64], rhs: &[f64], out: &mut Mask) {
    assert_eq!(lhs.len(), rhs.len(), "comparison kernel length mismatch");
    out.fill_with(lhs.len(), |i| op.lane(lhs[i], rhs[i]));
}

/// A selection vector: the sorted indices of the positions that survived a
/// filter.  Downstream kernels iterate these indices over the *unfiltered*
/// columns instead of materializing compacted copies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SelVec {
    sel: Vec<u32>,
}

impl SelVec {
    /// An empty selection vector.
    pub fn new() -> SelVec {
        SelVec::default()
    }

    /// Compress the set bits of `mask` into a selection vector using
    /// word-at-a-time bit iteration (`trailing_zeros` + clear-lowest-bit),
    /// which touches only the set bits — O(selected), not O(scanned).
    pub fn from_mask(mask: &Mask) -> SelVec {
        let mut sel = Vec::with_capacity(mask.count());
        for (w, &word) in mask.words().iter().enumerate() {
            let base = (w * 64) as u32;
            let mut bits = word;
            while bits != 0 {
                sel.push(base + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
        SelVec { sel }
    }

    /// Number of selected positions.
    pub fn len(&self) -> usize {
        self.sel.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.sel.is_empty()
    }

    /// The selected indices, ascending.
    pub fn indices(&self) -> &[u32] {
        &self.sel
    }

    /// Append an index.  Callers must keep the vector sorted.
    pub fn push(&mut self, idx: u32) {
        debug_assert!(self.sel.last().is_none_or(|&last| last < idx));
        self.sel.push(idx);
    }

    /// The selected indices restricted to `lo..hi` (by binary search; the
    /// vector is sorted).  Lets per-thread repetition ranges consume one
    /// shared selection vector without re-deriving it.
    pub fn slice_in_range(&self, lo: usize, hi: usize) -> &[u32] {
        let start = self.sel.partition_point(|&i| (i as usize) < lo);
        let end = self.sel.partition_point(|&i| (i as usize) < hi);
        &self.sel[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_and_not_respect_non_multiple_of_64_lengths() {
        for len in [0, 1, 63, 64, 65, 127, 128, 130] {
            let ones = Mask::ones(len);
            assert_eq!(ones.count(), len, "len {len}");
            assert!(ones.all(), "len {len}");
            let mut z = Mask::zeros(len);
            z.not_assign();
            assert_eq!(z, ones, "NOT of zeros must equal ones at len {len}");
            z.not_assign();
            assert!(z.none(), "double NOT must round-trip at len {len}");
        }
    }

    #[test]
    fn fill_with_masks_the_trailing_word() {
        let mut m = Mask::default();
        m.fill_with(70, |_| true);
        assert_eq!(m.count(), 70);
        assert_eq!(m.words().len(), 2);
        assert_eq!(m.words()[1], (1 << 6) - 1, "bits 70..128 must stay zero");
    }

    #[test]
    fn combinators_match_boolean_reference() {
        let a: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let b: Vec<bool> = (0..130).map(|i| i % 5 == 0).collect();
        let (ma, mb) = (Mask::from_bools(&a), Mask::from_bools(&b));

        let mut and = ma.clone();
        and.and_assign(&mb);
        let mut or = ma.clone();
        or.or_assign(&mb);
        let mut andnot = ma.clone();
        andnot.and_not_assign(&mb);
        let mut not = ma.clone();
        not.not_assign();

        for i in 0..130 {
            assert_eq!(and.get(i), a[i] && b[i], "AND lane {i}");
            assert_eq!(or.get(i), a[i] || b[i], "OR lane {i}");
            assert_eq!(andnot.get(i), a[i] && !b[i], "ANDNOT lane {i}");
            assert_eq!(not.get(i), !a[i], "NOT lane {i}");
        }
        assert_eq!(and.count(), (0..130).filter(|i| i % 15 == 0).count());
    }

    #[test]
    fn cmp_kernels_mirror_scalar_nan_conventions() {
        let vals = [1.0, f64::NAN, -3.5, 0.0, 7.25];
        let mut m = Mask::default();
        // The scalar engine's reference semantics: `=`/`<>` through IEEE
        // equality (SQL equality), orderings through partial_cmp with
        // None -> Equal.
        let scalar = |op: CmpOp, a: f64, b: f64| {
            let ord = a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal);
            match op {
                CmpOp::Eq => a == b,
                CmpOp::NotEq => a != b,
                CmpOp::Lt => ord.is_lt(),
                CmpOp::LtEq => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::GtEq => ord.is_ge(),
            }
        };
        for op in [
            CmpOp::Eq,
            CmpOp::NotEq,
            CmpOp::Lt,
            CmpOp::LtEq,
            CmpOp::Gt,
            CmpOp::GtEq,
        ] {
            cmp_f64_const(op, &vals, 0.5, &mut m);
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(m.get(i), scalar(op, v, 0.5), "{op:?} lane {i} vs const");
            }
            let rhs = [0.5, 0.5, f64::NAN, -0.0, 7.25];
            cmp_f64_f64(op, &vals, &rhs, &mut m);
            for i in 0..vals.len() {
                assert_eq!(m.get(i), scalar(op, vals[i], rhs[i]), "{op:?} lane {i}");
            }
            cmp_const_f64(op, 0.5, &vals, &mut m);
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(m.get(i), scalar(op, 0.5, v), "{op:?} lane {i} const-lhs");
            }
        }
    }

    #[test]
    fn selvec_compresses_only_set_bits() {
        let bits: Vec<bool> = (0..200).map(|i| i % 7 == 3).collect();
        let sel = SelVec::from_mask(&Mask::from_bools(&bits));
        let expect: Vec<u32> = (0..200u32).filter(|i| i % 7 == 3).collect();
        assert_eq!(sel.indices(), &expect[..]);
        assert_eq!(sel.len(), expect.len());
        assert!(SelVec::from_mask(&Mask::zeros(100)).is_empty());
    }

    #[test]
    fn selvec_range_slicing_uses_binary_search() {
        let bits: Vec<bool> = (0..300).map(|i| i % 2 == 0).collect();
        let sel = SelVec::from_mask(&Mask::from_bools(&bits));
        assert_eq!(sel.slice_in_range(0, 300).len(), 150);
        assert_eq!(sel.slice_in_range(10, 20), &[10, 12, 14, 16, 18]);
        assert_eq!(sel.slice_in_range(11, 12), &[] as &[u32]);
        assert_eq!(sel.slice_in_range(299, 300), &[] as &[u32]);
        assert_eq!(sel.slice_in_range(298, 300), &[298]);
    }
}
