//! Walker/Vose alias-table sampling for discrete distributions.
//!
//! The default [`crate::DiscreteVg`] samples with a subtractive scan over
//! the weights — O(k) per draw for k categories, and the scan's sequential
//! rounding is part of that VG's on-disk value contract, so it cannot be
//! replaced in place.  This module provides the O(1)-per-draw alternative as
//! an explicitly distinct VG configuration: an [`AliasTable`] built once per
//! block (O(k)), then one table lookup per position.  [`AliasDiscreteVg`]
//! carries its own cache token, so plans opt into the alias sampler
//! deliberately and its streams never alias (pun intended) the scan
//! sampler's streams in a plan-keyed cache.

use mcdbr_prng::{Pcg64, RandomStream, SeedId};
use mcdbr_storage::{ColumnBlock, Field, Result, Tuple, Value};

use crate::function::{categories_token, discrete_weights, VgFunction};

/// A Walker/Vose alias table over `k` weights: sampling draws one uniform,
/// splits it into a bucket index and an in-bucket fraction, and resolves to
/// either the bucket's own category or its alias — O(1) per draw regardless
/// of `k`, against the subtractive scan's O(k).
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance threshold per bucket, in `[0, 1]`.
    prob: Vec<f64>,
    /// The donor category for the bucket's rejected mass.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build the table from non-negative weights summing to `total`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty — callers validate weights first (see
    /// `discrete_weights`), which also rejects an all-zero total.
    pub fn new(weights: &[f64], total: f64) -> AliasTable {
        assert!(!weights.is_empty(), "alias table over zero categories");
        let n = weights.len();
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        // Vose's worklists: buckets under the uniform line borrow mass from
        // buckets over it.
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers on either list sit exactly on the line up to rounding.
        for &i in large.iter().chain(small.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table is empty (never constructed; see `new`).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Map one `[0,1)` uniform to a category index: the integer part picks
    /// the bucket, the fractional part decides bucket-vs-alias.
    pub fn sample(&self, u01: f64) -> usize {
        let n = self.prob.len();
        let x = u01 * n as f64;
        let k = (x as usize).min(n - 1);
        let frac = x - k as f64;
        if frac < self.prob[k] {
            k
        } else {
            self.alias[k] as usize
        }
    }
}

/// A discrete category sampler backed by an [`AliasTable`] — the batched
/// alias alternative to [`crate::DiscreteVg`]'s subtractive scan.
///
/// One uniform per draw, exactly like the scan sampler, but the
/// uniform-to-category mapping differs (bucket split vs. sequential
/// subtraction), so this is a distinct VG *configuration* with its own
/// cache token: swapping samplers changes the generated streams, and the
/// plan fingerprint must say so.  Within the variant, the batched block
/// path is bit-identical to the scalar path — same uniforms, same table,
/// same lookup — which the determinism tests pin.
#[derive(Debug, Clone)]
pub struct AliasDiscreteVg {
    categories: Vec<Value>,
}

impl AliasDiscreteVg {
    /// Create an alias-sampled discrete VG over the given category values.
    pub fn new(categories: Vec<Value>) -> Self {
        AliasDiscreteVg { categories }
    }

    /// The category values, in construction order.
    pub fn categories(&self) -> &[Value] {
        &self.categories
    }
}

impl VgFunction for AliasDiscreteVg {
    fn name(&self) -> &str {
        "DiscreteAlias"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn cache_token(&self) -> String {
        categories_token("DiscreteAlias", &self.categories)
    }

    fn output_fields(&self) -> Vec<Field> {
        let dt = self
            .categories
            .first()
            .map(|v| v.data_type())
            .unwrap_or(mcdbr_storage::DataType::Null);
        vec![Field::new("value", dt)]
    }

    fn generate(&self, params: &[Value], gen: &mut Pcg64) -> Result<Vec<Tuple>> {
        let (weights, total) = discrete_weights("DiscreteAlias", self.categories.len(), params)?;
        // The scalar path rebuilds the table per draw — O(k) like the scan,
        // and exactly what the ablation bench compares the batched path
        // against.  The batched path amortizes construction over the block.
        let table = AliasTable::new(&weights, total);
        let chosen = table.sample(gen.next_f64());
        Ok(vec![Tuple::new(vec![self.categories[chosen].clone()])])
    }

    fn generate_block_into(
        &self,
        params: &[Value],
        seed: SeedId,
        base_pos: u64,
        num_values: usize,
        out: &mut ColumnBlock,
    ) -> Result<()> {
        let (weights, total) = discrete_weights("DiscreteAlias", self.categories.len(), params)?;
        let table = AliasTable::new(&weights, total);
        out.reset(1, 1, num_values);
        let stream = RandomStream::new(seed);
        // Pass 1: raw uniforms, consumed exactly as the scalar path does.
        let uniforms: Vec<f64> = (0..num_values)
            .map(|i| stream.generator_at(base_pos + i as u64).next_f64())
            .collect();
        // Pass 2: O(1) table lookups into the column, with the same interned
        // fast path for string categories as the scan sampler.
        let col = out.column_mut(0, 0);
        let all_utf8 = self.categories.iter().all(|c| matches!(c, Value::Utf8(_)));
        if all_utf8 && !self.categories.is_empty() {
            let ids: Vec<u32> = self
                .categories
                .iter()
                .map(|c| col.intern_utf8(c.as_str().expect("checked Utf8")))
                .collect::<Result<_>>()?;
            for &u in &uniforms {
                col.push_utf8_id(ids[table.sample(u)])?;
            }
        } else {
            for &u in &uniforms {
                col.push_value(&self.categories[table.sample(u)]);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_construction_covers_all_mass() {
        // Every bucket must end with a valid threshold and alias.
        let weights = [0.1, 0.4, 0.2, 0.3];
        let table = AliasTable::new(&weights, 1.0);
        assert_eq!(table.len(), 4);
        for k in 0..4 {
            assert!((0.0..=1.0 + 1e-12).contains(&table.prob[k]), "bucket {k}");
            assert!((table.alias[k] as usize) < 4, "bucket {k}");
        }
    }

    #[test]
    fn sampling_frequencies_match_the_weights() {
        let weights = [1.0, 4.0, 2.0, 3.0];
        let total: f64 = weights.iter().sum();
        let table = AliasTable::new(&weights, total);
        let mut counts = [0usize; 4];
        let mut gen = Pcg64::new(42);
        let draws = 200_000;
        for _ in 0..draws {
            counts[table.sample(gen.next_f64())] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = counts[i] as f64 / draws as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "category {i}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn degenerate_single_and_point_mass_tables() {
        let one = AliasTable::new(&[5.0], 5.0);
        for u in [0.0, 0.5, 0.999_999] {
            assert_eq!(one.sample(u), 0);
        }
        // All mass on one category out of three.
        let point = AliasTable::new(&[0.0, 7.0, 0.0], 7.0);
        let mut gen = Pcg64::new(7);
        for _ in 0..10_000 {
            assert_eq!(point.sample(gen.next_f64()), 1);
        }
    }

    #[test]
    fn alias_vg_batched_is_bit_identical_to_its_scalar_path() {
        let vg = AliasDiscreteVg::new(vec![
            Value::str("red"),
            Value::str("green"),
            Value::str("blue"),
        ]);
        let params = [
            Value::Float64(0.5),
            Value::Float64(0.2),
            Value::Float64(0.3),
        ];
        let (seed, base, n) = (11u64, 5u64, 257);
        let mut block = ColumnBlock::new();
        vg.generate_block_into(&params, seed, base, n, &mut block)
            .unwrap();
        block.validate(n).unwrap();
        let stream = RandomStream::new(seed);
        for i in 0..n {
            let mut gen = stream.generator_at(base + i as u64);
            let rows = vg.generate(&params, &mut gen).unwrap();
            assert_eq!(
                block.value_at(0, 0, i).unwrap(),
                rows[0].value(0).clone(),
                "position {i}"
            );
        }
        // The interned fast path kept the dictionary to the three categories.
        assert_eq!(
            block.column(0, 0).data_type(),
            Some(mcdbr_storage::DataType::Utf8)
        );
    }

    #[test]
    fn alias_and_scan_samplers_have_distinct_cache_tokens() {
        let cats = vec![Value::str("a"), Value::str("b")];
        let alias = AliasDiscreteVg::new(cats.clone());
        let scan = crate::DiscreteVg::new(cats);
        assert_ne!(alias.cache_token(), scan.cache_token());
        assert_eq!(alias.cache_token(), "DiscreteAlias|s1:a|s1:b");
    }
}
