//! Scalar probability distributions: sampling, moments, and CDFs.
//!
//! [`Distribution`] is the palette the VG functions draw from, and it is also
//! used directly by the Gibbs rejection sampler in `mcdbr-core` (paper
//! Algorithm 2 repeatedly draws candidates "according to h_i" until one is
//! accepted) and by the applicability experiments of Appendix B, which
//! contrast light-tailed (Normal) with heavy-tailed (Lognormal, Pareto)
//! marginals.

use mcdbr_prng::Pcg64;

use crate::math::{gamma_cdf, inverse_gamma_cdf, normal_cdf, std_normal_quantile};

/// A scalar distribution.
///
/// Sampling is *inverse-CDF based wherever possible* so that a single stream
/// uniform maps monotonically to a sample.  Distributions that need more than
/// one uniform (Gamma, Poisson) simply consume more from the supplied
/// generator; MCDB-R's stream abstraction hands each stream position its own
/// sub-generator precisely so this is safe.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Degenerate distribution: always `value`.  Used to model deterministic
    /// attributes uniformly ("we treat each deterministic data value c as a
    /// random variable that is equal to c with probability 1", paper §3.3).
    Constant { value: f64 },
    /// Normal with the given mean and standard deviation.
    Normal { mean: f64, sd: f64 },
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given rate (mean `1/rate`).
    Exponential { rate: f64 },
    /// Lognormal: `exp(N(mu, sigma))`. Heavy-tailed (subexponential).
    Lognormal { mu: f64, sigma: f64 },
    /// Pareto with minimum `scale` and tail index `shape`.  Heavy-tailed.
    Pareto { scale: f64, shape: f64 },
    /// Gamma with the given shape and scale (mean `shape * scale`).
    Gamma { shape: f64, scale: f64 },
    /// Inverse gamma with the given shape and scale, as used for the
    /// Appendix D hyper-priors on per-order means and variances.
    InverseGamma { shape: f64, scale: f64 },
    /// Poisson with the given mean.
    Poisson { lambda: f64 },
    /// Bernoulli with success probability `p` (samples are 0.0 or 1.0).
    Bernoulli { p: f64 },
}

impl Distribution {
    /// Draw one sample using (and advancing) the supplied generator.
    pub fn sample(&self, gen: &mut Pcg64) -> f64 {
        match *self {
            Distribution::Constant { value } => value,
            Distribution::Normal { mean, sd } => {
                mean + sd * std_normal_quantile(gen.next_f64_open())
            }
            Distribution::Uniform { lo, hi } => lo + (hi - lo) * gen.next_f64(),
            Distribution::Exponential { rate } => -gen.next_f64_open().ln() / rate,
            Distribution::Lognormal { mu, sigma } => {
                (mu + sigma * std_normal_quantile(gen.next_f64_open())).exp()
            }
            Distribution::Pareto { scale, shape } => scale * gen.next_f64_open().powf(-1.0 / shape),
            Distribution::Gamma { shape, scale } => sample_gamma(gen, shape) * scale,
            Distribution::InverseGamma { shape, scale } => scale / sample_gamma(gen, shape),
            Distribution::Poisson { lambda } => sample_poisson(gen, lambda) as f64,
            Distribution::Bernoulli { p } => {
                if gen.next_f64() < p {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The distribution's mean, where it exists (`None` otherwise, e.g. a
    /// Pareto with shape ≤ 1).
    pub fn mean(&self) -> Option<f64> {
        match *self {
            Distribution::Constant { value } => Some(value),
            Distribution::Normal { mean, .. } => Some(mean),
            Distribution::Uniform { lo, hi } => Some(0.5 * (lo + hi)),
            Distribution::Exponential { rate } => Some(1.0 / rate),
            Distribution::Lognormal { mu, sigma } => Some((mu + sigma * sigma / 2.0).exp()),
            Distribution::Pareto { scale, shape } => {
                (shape > 1.0).then(|| shape * scale / (shape - 1.0))
            }
            Distribution::Gamma { shape, scale } => Some(shape * scale),
            Distribution::InverseGamma { shape, scale } => {
                (shape > 1.0).then(|| scale / (shape - 1.0))
            }
            Distribution::Poisson { lambda } => Some(lambda),
            Distribution::Bernoulli { p } => Some(p),
        }
    }

    /// The distribution's variance, where it exists.
    pub fn variance(&self) -> Option<f64> {
        match *self {
            Distribution::Constant { .. } => Some(0.0),
            Distribution::Normal { sd, .. } => Some(sd * sd),
            Distribution::Uniform { lo, hi } => Some((hi - lo) * (hi - lo) / 12.0),
            Distribution::Exponential { rate } => Some(1.0 / (rate * rate)),
            Distribution::Lognormal { mu, sigma } => {
                let s2 = sigma * sigma;
                Some((s2.exp() - 1.0) * (2.0 * mu + s2).exp())
            }
            Distribution::Pareto { scale, shape } => (shape > 2.0)
                .then(|| scale * scale * shape / ((shape - 1.0) * (shape - 1.0) * (shape - 2.0))),
            Distribution::Gamma { shape, scale } => Some(shape * scale * scale),
            Distribution::InverseGamma { shape, scale } => (shape > 2.0)
                .then(|| scale * scale / ((shape - 1.0) * (shape - 1.0) * (shape - 2.0))),
            Distribution::Poisson { lambda } => Some(lambda),
            Distribution::Bernoulli { p } => Some(p * (1.0 - p)),
        }
    }

    /// The CDF at `x`, where a closed(-ish) form is available.
    pub fn cdf(&self, x: f64) -> Option<f64> {
        match *self {
            Distribution::Constant { value } => Some(if x >= value { 1.0 } else { 0.0 }),
            Distribution::Normal { mean, sd } => Some(normal_cdf(x, mean, sd)),
            Distribution::Uniform { lo, hi } => Some(((x - lo) / (hi - lo)).clamp(0.0, 1.0)),
            Distribution::Exponential { rate } => Some(if x <= 0.0 {
                0.0
            } else {
                1.0 - (-rate * x).exp()
            }),
            Distribution::Lognormal { mu, sigma } => Some(if x <= 0.0 {
                0.0
            } else {
                normal_cdf(x.ln(), mu, sigma)
            }),
            Distribution::Pareto { scale, shape } => Some(if x < scale {
                0.0
            } else {
                1.0 - (scale / x).powf(shape)
            }),
            Distribution::Gamma { shape, scale } => Some(gamma_cdf(x, shape, scale)),
            Distribution::InverseGamma { shape, scale } => Some(inverse_gamma_cdf(x, shape, scale)),
            Distribution::Poisson { .. } | Distribution::Bernoulli { .. } => None,
        }
    }

    /// Whether this distribution is heavy-tailed (subexponential) in the
    /// sense of paper Appendix B — the regime where the Gibbs rejection
    /// sampler is expected to behave badly.
    pub fn is_heavy_tailed(&self) -> bool {
        matches!(
            self,
            Distribution::Lognormal { .. } | Distribution::Pareto { .. }
        )
    }
}

/// Marsaglia–Tsang squeeze method for Gamma(shape, 1).
///
/// For `shape < 1` the standard boost `Gamma(shape) = Gamma(shape + 1) * U^{1/shape}`
/// is applied.
fn sample_gamma(gen: &mut Pcg64, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive, got {shape}");
    if shape < 1.0 {
        let u = gen.next_f64_open();
        return sample_gamma(gen, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = std_normal_quantile(gen.next_f64_open());
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u = gen.next_f64_open();
        if u < 1.0 - 0.0331 * x * x * x * x {
            return d * v3;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// Poisson sampling: Knuth's product-of-uniforms method for small `lambda`,
/// and a Gamma–Poisson decomposition for large `lambda` that reduces the
/// problem to a small residual mean (exact, unlike a normal approximation).
fn sample_poisson(gen: &mut Pcg64, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0,
        "poisson mean must be non-negative, got {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Decompose: if X ~ Gamma(k, 1) for integer k <= lambda, then either
        // X > lambda (all remaining arrivals fall past the horizon, so the
        // count is < k and we recurse on a Binomial-style thinning), or the
        // count is k plus a Poisson(lambda - X).  This is the classic
        // Ahrens–Dieter reduction and stays exact for arbitrary lambda.
        let k = (lambda * 7.0 / 8.0).floor().max(1.0);
        let x = sample_gamma(gen, k);
        return if x > lambda {
            // Fewer than k arrivals by "time" lambda: binomial thinning.
            sample_binomial(gen, k as u64 - 1, lambda / x)
        } else {
            k as u64 + sample_poisson(gen, lambda - x)
        };
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= gen.next_f64_open();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Direct Binomial(n, p) sampling by counting Bernoulli successes (only used
/// by the Poisson reduction above, where n is small).
fn sample_binomial(gen: &mut Pcg64, n: u64, p: f64) -> u64 {
    (0..n).filter(|_| gen.next_f64() < p).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(dist: &Distribution, n: usize, seed: u64) -> (f64, f64) {
        let mut gen = Pcg64::new(seed);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = dist.sample(&mut gen);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        (mean, sumsq / n as f64 - mean * mean)
    }

    #[test]
    fn normal_moments() {
        let d = Distribution::Normal { mean: 3.0, sd: 2.0 };
        let (mean, var) = sample_stats(&d, 100_000, 1);
        assert!((mean - 3.0).abs() < 0.03, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.1, "var = {var}");
        assert_eq!(d.mean(), Some(3.0));
        assert_eq!(d.variance(), Some(4.0));
    }

    #[test]
    fn uniform_and_exponential_moments() {
        let u = Distribution::Uniform { lo: 2.0, hi: 6.0 };
        let (mean, var) = sample_stats(&u, 100_000, 2);
        assert!((mean - 4.0).abs() < 0.02);
        assert!((var - 16.0 / 12.0).abs() < 0.05);

        let e = Distribution::Exponential { rate: 0.5 };
        let (mean, var) = sample_stats(&e, 100_000, 3);
        assert!((mean - 2.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.3);
    }

    #[test]
    fn gamma_moments() {
        for &(shape, scale) in &[(0.5, 2.0), (3.0, 1.0), (3.0, 0.5), (9.0, 0.25)] {
            let d = Distribution::Gamma { shape, scale };
            let (mean, var) = sample_stats(&d, 120_000, 4);
            assert!(
                (mean - shape * scale).abs() < 0.05 * (1.0 + shape * scale),
                "gamma({shape},{scale}) mean = {mean}"
            );
            assert!(
                (var - shape * scale * scale).abs() < 0.12 * (1.0 + shape * scale * scale),
                "gamma({shape},{scale}) var = {var}"
            );
        }
    }

    #[test]
    fn inverse_gamma_matches_appendix_d_hyper_prior() {
        // Appendix D: means are InverseGamma(shape 3, scale 1) => mean 0.5,
        // variance 0.25; variances use InverseGamma(3, 0.5) => mean 0.25.
        let d = Distribution::InverseGamma {
            shape: 3.0,
            scale: 1.0,
        };
        let (mean, _) = sample_stats(&d, 200_000, 5);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
        assert_eq!(d.mean(), Some(0.5));
        let d2 = Distribution::InverseGamma {
            shape: 3.0,
            scale: 0.5,
        };
        assert_eq!(d2.mean(), Some(0.25));
    }

    #[test]
    fn poisson_moments_small_and_large_lambda() {
        for &lambda in &[0.5, 4.0, 30.0, 120.0] {
            let d = Distribution::Poisson { lambda };
            let (mean, var) = sample_stats(&d, 60_000, 6);
            assert!(
                (mean - lambda).abs() < 0.05 * lambda + 0.05,
                "λ={lambda}, mean={mean}"
            );
            assert!(
                (var - lambda).abs() < 0.12 * lambda + 0.2,
                "λ={lambda}, var={var}"
            );
        }
        let mut gen = Pcg64::new(1);
        assert_eq!(Distribution::Poisson { lambda: 0.0 }.sample(&mut gen), 0.0);
    }

    #[test]
    fn bernoulli_and_constant() {
        let d = Distribution::Bernoulli { p: 0.3 };
        let (mean, _) = sample_stats(&d, 100_000, 7);
        assert!((mean - 0.3).abs() < 0.01);
        let c = Distribution::Constant { value: 42.0 };
        let mut gen = Pcg64::new(1);
        assert_eq!(c.sample(&mut gen), 42.0);
        assert_eq!(c.variance(), Some(0.0));
    }

    #[test]
    fn lognormal_and_pareto_are_heavy_tailed() {
        let ln = Distribution::Lognormal {
            mu: 0.0,
            sigma: 1.0,
        };
        let pa = Distribution::Pareto {
            scale: 1.0,
            shape: 2.5,
        };
        assert!(ln.is_heavy_tailed());
        assert!(pa.is_heavy_tailed());
        assert!(!Distribution::Normal { mean: 0.0, sd: 1.0 }.is_heavy_tailed());

        let (mean, _) = sample_stats(&ln, 200_000, 8);
        assert!(
            (mean - (0.5f64).exp()).abs() < 0.05,
            "lognormal mean = {mean}"
        );
        let (mean, _) = sample_stats(&pa, 200_000, 9);
        assert!((mean - 2.5 / 1.5).abs() < 0.05, "pareto mean = {mean}");
        // Undefined moments are None.
        assert_eq!(
            Distribution::Pareto {
                scale: 1.0,
                shape: 0.5
            }
            .mean(),
            None
        );
        assert_eq!(
            Distribution::Pareto {
                scale: 1.0,
                shape: 1.5
            }
            .variance(),
            None
        );
    }

    #[test]
    fn cdf_agrees_with_empirical_fraction() {
        let cases = vec![
            (Distribution::Normal { mean: 1.0, sd: 2.0 }, 2.0),
            (Distribution::Exponential { rate: 1.5 }, 0.7),
            (
                Distribution::Gamma {
                    shape: 3.0,
                    scale: 0.5,
                },
                1.2,
            ),
            (
                Distribution::InverseGamma {
                    shape: 3.0,
                    scale: 1.0,
                },
                0.6,
            ),
            (
                Distribution::Lognormal {
                    mu: 0.0,
                    sigma: 0.5,
                },
                1.3,
            ),
            (
                Distribution::Pareto {
                    scale: 1.0,
                    shape: 3.0,
                },
                1.8,
            ),
            (Distribution::Uniform { lo: 0.0, hi: 4.0 }, 2.5),
        ];
        for (dist, x) in cases {
            let mut gen = Pcg64::new(10);
            let n = 60_000;
            let frac = (0..n).filter(|_| dist.sample(&mut gen) <= x).count() as f64 / n as f64;
            let cdf = dist.cdf(x).unwrap();
            assert!(
                (frac - cdf).abs() < 0.02,
                "{dist:?} at {x}: empirical {frac}, cdf {cdf}"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Distribution::Gamma {
            shape: 2.0,
            scale: 1.0,
        };
        let mut a = Pcg64::new(99);
        let mut b = Pcg64::new(99);
        for _ in 0..50 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    fn normal_sampling_is_monotone_in_the_uniform() {
        // Because Normal uses inverse-CDF sampling, a larger stream uniform
        // must give a larger sample.  This property is what makes the §4.2
        // worked example's "try the next stream value" stepping predictable.
        use crate::math::std_normal_quantile;
        let lo = 3.0 + 1.0 * std_normal_quantile(0.2);
        let hi = 3.0 + 1.0 * std_normal_quantile(0.8);
        assert!(lo < hi);
    }
}
