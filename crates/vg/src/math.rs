//! Special functions needed by the samplers and the analytic oracles.
//!
//! Everything here is implemented from scratch using standard, well-tested
//! numerical recipes (Abramowitz & Stegun, Numerical Recipes, Acklam's normal
//! quantile) so the repository has no external numerics dependency and so
//! the MCDB-R analytic validation (paper Appendix D, Fig. 5) controls its own
//! precision.

// Tabulated coefficients (Lanczos, Acklam) are kept at published precision.
#![allow(clippy::excessive_precision)]
/// The error function `erf(x)`, accurate to roughly 1.2e-7 (A&S 7.1.26-style
/// rational approximation with an exponential correction, as popularized in
/// Numerical Recipes).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.5 * x);
    // Numerical Recipes erfc approximation.
    let tau = t
        * (-x * x - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    sign * (1.0 - tau)
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// CDF of the standard normal distribution.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Density of the standard normal distribution.
pub fn std_normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// CDF of a `Normal(mean, sd)` distribution.
pub fn normal_cdf(x: f64, mean: f64, sd: f64) -> f64 {
    std_normal_cdf((x - mean) / sd)
}

/// Quantile (inverse CDF) of the standard normal distribution.
///
/// Acklam's algorithm: relative error below 1.15e-9 over the full open unit
/// interval, refined here with one Halley step to near machine precision.
/// This is the workhorse of the `Normal` VG function — every normal variate
/// in the system is `mean + sd * std_normal_quantile(u)` for a stream uniform
/// `u`, which makes values monotone in `u` and therefore easy to reason about
/// in tests.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");

    // Coefficients for Acklam's rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Quantile of a `Normal(mean, sd)` distribution.
pub fn normal_quantile(p: f64, mean: f64, sd: f64) -> f64 {
    mean + sd * std_normal_quantile(p)
}

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise (Numerical Recipes `gammp`).  Needed for the
/// Gamma / Inverse-Gamma CDFs used when validating the Appendix D hyper-prior
/// generator.
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && x >= 0.0,
        "invalid arguments to regularized_gamma_p: a={a}, x={x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a, x), then P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

/// CDF of a `Gamma(shape, scale)` distribution (scale parameterization:
/// mean = shape * scale).
pub fn gamma_cdf(x: f64, shape: f64, scale: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        regularized_gamma_p(shape, x / scale)
    }
}

/// CDF of an `InverseGamma(shape, scale)` distribution.
///
/// If `Y ~ Gamma(shape, 1/scale)` then `X = 1/Y ~ InverseGamma(shape, scale)`
/// and `P(X <= x) = Q(shape, scale / x) = 1 - P(shape, scale / x)`.
pub fn inverse_gamma_cdf(x: f64, shape: f64, scale: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        1.0 - regularized_gamma_p(shape, scale / x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn erf_known_values() {
        assert_close(erf(0.0), 0.0, 1e-6);
        assert_close(erf(1.0), 0.8427007929497149, 2e-7);
        assert_close(erf(-1.0), -0.8427007929497149, 2e-7);
        assert_close(erf(2.0), 0.9953222650189527, 2e-7);
        assert_close(erf(3.0), 0.9999779095030014, 2e-7);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert_close(std_normal_cdf(0.0), 0.5, 1e-6);
        assert_close(std_normal_cdf(1.0), 0.8413447460685429, 1e-6);
        assert_close(std_normal_cdf(-1.96), 0.024997895148220435, 1e-6);
        assert_close(std_normal_cdf(3.09), 0.9989991613579242, 1e-6);
        assert_close(
            normal_cdf(15.0e6, 10.0e6, 1.0e6),
            std_normal_cdf(5.0),
            1e-12,
        );
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.99902] {
            let x = std_normal_quantile(p);
            assert_close(std_normal_cdf(x), p, 1e-6);
        }
        // The paper's running value: the 0.999 quantile of a standard normal
        // is about 3.090 (Appendix C).
        assert_close(std_normal_quantile(0.999), 3.0902, 5e-4);
        assert_close(normal_quantile(0.5, 7.0, 2.0), 7.0, 1e-6);
    }

    #[test]
    #[should_panic(expected = "quantile requires p in (0,1)")]
    fn normal_quantile_rejects_out_of_range() {
        std_normal_quantile(1.0);
    }

    #[test]
    fn ln_gamma_known_values() {
        assert_close(ln_gamma(1.0), 0.0, 1e-10);
        assert_close(ln_gamma(2.0), 0.0, 1e-10);
        assert_close(ln_gamma(5.0), (24.0f64).ln(), 1e-10); // Γ(5) = 4! = 24
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
        assert_close(ln_gamma(10.5), 13.940625219403763, 1e-8);
    }

    #[test]
    fn regularized_gamma_known_values() {
        // P(1, x) = 1 - exp(-x)
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            assert_close(regularized_gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-10);
        }
        // P(a, a) tends to ~0.5-ish for moderate a; check a tabulated value.
        assert_close(regularized_gamma_p(3.0, 3.0), 0.5768099188731564, 1e-9);
        assert_eq!(regularized_gamma_p(2.0, 0.0), 0.0);
    }

    #[test]
    fn gamma_and_inverse_gamma_cdf() {
        // Gamma(1, scale) is Exponential(scale).
        assert_close(gamma_cdf(2.0, 1.0, 2.0), 1.0 - (-1.0f64).exp(), 1e-10);
        assert_eq!(gamma_cdf(-1.0, 2.0, 1.0), 0.0);
        // Inverse-gamma CDF is increasing and hits known quantile relationships:
        // P(X <= scale / q) where Gamma-Q... spot check monotonicity + median ordering.
        let c1 = inverse_gamma_cdf(0.3, 3.0, 1.0);
        let c2 = inverse_gamma_cdf(0.6, 3.0, 1.0);
        let c3 = inverse_gamma_cdf(1.2, 3.0, 1.0);
        assert!(c1 < c2 && c2 < c3);
        assert_eq!(inverse_gamma_cdf(0.0, 3.0, 1.0), 0.0);
        // Mean of InverseGamma(3, 1) is 1/2; CDF at the mean should be > CDF at median > 0.
        assert!(inverse_gamma_cdf(0.5, 3.0, 1.0) > 0.5);
    }

    #[test]
    fn cdf_quantile_roundtrip_nonstandard() {
        for &(mean, sd) in &[(10.0e6, 1.0e6), (0.0, 1.0), (-5.0, 0.25)] {
            for &p in &[0.01, 0.5, 0.975, 0.999] {
                let x = normal_quantile(p, mean, sd);
                assert_close(normal_cdf(x, mean, sd), p, 1e-6);
            }
        }
    }
}
