//! Variable-generation (VG) functions and the distribution machinery behind
//! them.
//!
//! In MCDB / MCDB-R an uncertain table is *defined* by a VG function: a
//! pseudorandom procedure that, given a row of parameters (from an ordinary
//! "parameter table") and a source of randomness, produces one or more
//! correlated data values (paper §1, §2).  The engine never stores the
//! uncertain values; it stores the parameters and a PRNG seed, and calls the
//! VG function whenever an instantiation is needed.
//!
//! This crate provides:
//!
//! * [`math`] — special functions implemented from scratch (error function,
//!   normal CDF and quantile, log-gamma, regularized incomplete gamma), used
//!   both by the samplers and by the analytic oracles in `mcdbr-risk`.
//! * [`dist`] — scalar distribution samplers and densities (Normal, Uniform,
//!   Exponential, Lognormal, Pareto, Gamma, Inverse-Gamma, Poisson,
//!   Bernoulli, Discrete), all driven by the repository's own
//!   [`mcdbr_prng::Pcg64`] so stream semantics stay deterministic.
//! * [`function`] — the [`VgFunction`] trait plus the built-in VG functions
//!   the paper uses or motivates: `Normal` (§2), the inverse-gamma
//!   hyper-prior generator of Appendix D, a Bayesian demand model, a
//!   correlated multivariate normal, and an Euler-discretized geometric
//!   Brownian motion for financial-asset scenarios (§1).

pub mod alias;
pub mod dist;
pub mod function;
pub mod math;

pub use alias::{AliasDiscreteVg, AliasTable};
pub use dist::Distribution;
pub use function::{
    BayesianDemandVg, BoxMullerNormalVg, DiscreteVg, GbmTerminalVg, MultiNormalVg, NormalVg,
    PoissonVg, UniformVg, VgFunction,
};
